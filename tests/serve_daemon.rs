//! Integration suite for the match daemon (DESIGN.md §9).
//!
//! The daemon's contract is the repository's, one network hop out: a
//! response must be **bit-identical** to the same operation run
//! in-process. The main test drives N concurrent clients over every
//! schema pair and compares each wire-decoded [`MatchSummary`] —
//! similarity `f64`s included — against a direct
//! [`cupid::core::MatchSession`] over the same corpus; top-k discovery
//! is compared against a direct [`Repository`]. Lifecycle tests cover
//! mutation-under-traffic, persistence across daemon restarts, error
//! responses, and the on-disk single-writer lock held while the daemon
//! runs.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use cupid::core::{CupidConfig, MatchSession, MatchSummary};
use cupid::io::parse_sdl;
use cupid::lexical::Thesaurus;
use cupid::model::Schema;
use cupid::prelude::{RepoError, Repository, ServeClient, ServeOptions, Server};

/// A unique, self-cleaning snapshot location per test.
struct TempSnap(PathBuf);

impl TempSnap {
    fn new() -> Self {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cupid-serve-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempSnap(dir.join("cupid.repo"))
    }
}

impl Drop for TempSnap {
    fn drop(&mut self) {
        if let Some(dir) = self.0.parent() {
            std::fs::remove_dir_all(dir).ok();
        }
    }
}

/// The corpus travels as SDL text — the same bytes the clients ship —
/// so daemon and in-process sides prepare literally identical schemas.
const CORPUS_SDL: &[&str] = &[
    "schema PO\n  element Item\n    attr Qty : int\n    attr Invoice : string\n",
    "schema Order\n  element Item\n    attr Quantity : int\n    attr Bill : string\n",
    "schema Sales\n  element Order\n    attr Quantity : int\n    attr OrderDate : date\n",
    "schema Customer\n  element Person\n    attr CustomerName : string\n    attr Phone : string\n",
    "schema Client\n  element Person\n    attr ClientName : string\n    attr Telephone : string\n",
    "schema Misc\n  element Thing\n    attr Unrelated : decimal\n",
];

fn thesaurus() -> Thesaurus {
    Thesaurus::parse(
        "abbrev Qty = quantity\n\
         syn invoice bill 1.0\n\
         syn phone telephone 1.0\n\
         syn customer client 0.9\n",
    )
    .unwrap()
}

fn corpus() -> Vec<Schema> {
    CORPUS_SDL.iter().map(|sdl| parse_sdl(sdl).unwrap()).collect()
}

/// Expected summaries from a direct in-process session: name pair →
/// summary, both orientations executed exactly as the daemon would.
fn expected_pairs(config: &CupidConfig, th: &Thesaurus) -> Vec<((String, String), MatchSummary)> {
    let corpus = corpus();
    let mut session = MatchSession::new(config, th);
    let ids = session.add_corpus(&corpus).unwrap();
    let mut out = Vec::new();
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            let summary = session.match_pair(ids[i], ids[j]);
            out.push(((corpus[i].name().to_string(), corpus[j].name().to_string()), summary));
        }
    }
    out
}

#[test]
fn concurrent_clients_get_bit_identical_responses() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();

    // In-process ground truth.
    let want_pairs = expected_pairs(&config, &th);
    let want_topk = {
        let other = TempSnap::new();
        let mut repo = Repository::open_or_create(&other.0, &config, &th).unwrap();
        repo.add_corpus(&corpus()).unwrap();
        repo.top_k_pairs(2)
    };

    let server =
        Server::bind("127.0.0.1:0", &tmp.0, &config, &th, ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());

        // One client populates the corpus.
        let mut setup = ServeClient::connect(addr).unwrap();
        for sdl in CORPUS_SDL {
            setup.add_sdl(sdl).unwrap();
        }

        // Three concurrent clients each run the full pair worklist and
        // a top-k, in different orders so cached and uncached serves
        // interleave across the read/write split.
        let handles: Vec<_> = (0..3)
            .map(|c| {
                let want_pairs = &want_pairs;
                let want_topk = &want_topk;
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).unwrap();
                    let mut order: Vec<usize> = (0..want_pairs.len()).collect();
                    if c % 2 == 1 {
                        order.reverse();
                    }
                    for idx in order {
                        let ((source, target), want) = &want_pairs[idx];
                        let got = client.match_pair(source, target).unwrap();
                        assert_eq!(
                            &got, want,
                            "client {c}: daemon summary for {source}~{target} diverged"
                        );
                    }
                    let listing = client.top_k(2).unwrap();
                    assert_eq!(listing.summaries, *want_topk, "client {c}: top-k diverged");
                    assert_eq!(
                        listing.names,
                        CORPUS_SDL
                            .iter()
                            .map(|s| parse_sdl(s).unwrap().name().to_string())
                            .collect::<Vec<_>>()
                    );
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();

        // Counters: 45 match requests across the clients collapse to
        // ~15 executions. Two clients racing on the same uncached pair
        // may both execute it before either absorbs (benign: identical
        // summaries), so the exact count is bounded, not fixed.
        let stats = setup.stats().unwrap();
        assert_eq!(stats.schemas, 6);
        assert!(
            (15..=45).contains(&stats.pairs_executed),
            "expected ~15 executions, got {}",
            stats.pairs_executed
        );
        let saved = setup.save().unwrap();
        assert!(saved > 0);
        setup.shutdown().unwrap();
        drop(setup);
        for r in results {
            r.unwrap();
        }
    });

    // The daemon released the repository lock and persisted its state:
    // a direct reopen serves every pair from the snapshot cache.
    let mut warm = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
    assert!(warm.was_loaded());
    for ((source, target), want) in &want_pairs {
        assert_eq!(&warm.match_pair(source, target).unwrap(), want);
    }
    assert_eq!(warm.pairs_executed(), 0, "daemon snapshot already covers all pairs");
}

#[test]
fn daemon_holds_the_single_writer_lock() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();
    let server =
        Server::bind("127.0.0.1:0", &tmp.0, &config, &th, ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        // While the daemon runs, a second writer is refused loudly.
        match Repository::open_or_create(&tmp.0, &config, &th) {
            Err(RepoError::Locked { pid, .. }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked while the daemon runs, got {other:?}"),
        }
        ServeClient::connect(addr).unwrap().shutdown().unwrap();
    });
    // After shutdown the lock is released.
    assert!(Repository::open_or_create(&tmp.0, &config, &th).is_ok());
}

#[test]
fn mutations_errors_and_restart() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();

    // Expected state after the replace: PO edited to carry a Total.
    let edited_po = "schema PO\n  element Item\n    attr Qty : int\n    attr Total : decimal\n";
    let want_after_replace = {
        let mut fresh = corpus();
        fresh[0] = parse_sdl(edited_po).unwrap();
        let mut session = MatchSession::new(&config, &th);
        let ids = session.add_corpus(&fresh).unwrap();
        session.match_pair(ids[0], ids[1])
    };

    let server =
        Server::bind("127.0.0.1:0", &tmp.0, &config, &th, ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let mut client = ServeClient::connect(addr).unwrap();
        for sdl in CORPUS_SDL {
            client.add_sdl(sdl).unwrap();
        }

        // Error responses keep the connection usable.
        assert!(matches!(
            client.match_pair("PO", "Nope"),
            Err(cupid::serve::ServeError::Remote(m)) if m.contains("Nope")
        ));
        assert!(matches!(
            client.add_sdl(CORPUS_SDL[0]),
            Err(cupid::serve::ServeError::Remote(m)) if m.contains("already")
        ));
        assert!(matches!(
            client.replace_sdl("schema Ghost\n  element X\n    attr Y : int\n"),
            Err(cupid::serve::ServeError::Remote(_))
        ));
        assert!(client.match_pair("PO", "Order").is_ok(), "connection survives errors");

        // Replace re-matches incrementally; the response equals a cold
        // in-process rebuild with the edited corpus.
        client.replace_sdl(edited_po).unwrap();
        assert_eq!(client.match_pair("PO", "Order").unwrap(), want_after_replace);

        // Remove shrinks the corpus.
        client.remove("Misc").unwrap();
        assert_eq!(client.stats().unwrap().schemas, 5);
        assert!(matches!(
            client.match_pair("PO", "Misc"),
            Err(cupid::serve::ServeError::Remote(_))
        ));

        client.shutdown().unwrap();
    });

    // Restart the daemon over the saved snapshot: state survives.
    let server =
        Server::bind("127.0.0.1:0", &tmp.0, &config, &th, ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let mut client = ServeClient::connect(addr).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.schemas, 5, "restarted daemon loads the saved corpus");
        assert_eq!(stats.pairs_executed, 0);
        assert_eq!(
            client.match_pair("PO", "Order").unwrap(),
            want_after_replace,
            "cached pair served across daemon restarts, bit-identical"
        );
        assert_eq!(client.stats().unwrap().pairs_executed, 0, "served from the snapshot cache");
        client.shutdown().unwrap();
    });
}

#[test]
fn autosave_persists_without_explicit_save() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();
    let options = ServeOptions { autosave_every: Some(2), ..ServeOptions::default() };
    let server = Server::bind("127.0.0.1:0", &tmp.0, &config, &th, options).unwrap();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let mut client = ServeClient::connect(addr).unwrap();
        client.add_sdl(CORPUS_SDL[0]).unwrap();
        assert!(!tmp.0.exists(), "below the autosave threshold: nothing on disk yet");
        client.add_sdl(CORPUS_SDL[1]).unwrap();
        assert!(tmp.0.exists(), "second mutation crossed autosave_every = 2");
        client.shutdown().unwrap();
    });
}
