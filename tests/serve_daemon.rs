//! Integration suite for the match daemon (DESIGN.md §9).
//!
//! The daemon's contract is the repository's, one network hop out: a
//! response must be **bit-identical** to the same operation run
//! in-process. The main test drives N concurrent clients over every
//! schema pair and compares each wire-decoded [`MatchSummary`] —
//! similarity `f64`s included — against a direct
//! [`cupid::core::MatchSession`] over the same corpus; top-k discovery
//! is compared against a direct [`Repository`]. Lifecycle tests cover
//! mutation-under-traffic, persistence across daemon restarts, error
//! responses, and the on-disk single-writer lock held while the daemon
//! runs.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use cupid::core::{CupidConfig, MatchSession, MatchSummary};
use cupid::io::parse_sdl;
use cupid::lexical::Thesaurus;
use cupid::model::Schema;
use cupid::prelude::{RepoError, Repository, ServeClient, ServeOptions, Server, ShutdownHandle};
use cupid::repo::RepoLock;
use cupid::serve::{BatchItem, BatchOutcome, ClientBuilder, ServeError, ServePool};

/// Drains the daemon if the test body panics. The daemon runs on a
/// scoped thread; without the guard, a failed assertion in the body
/// would leave `thread::scope` joining a daemon that never hears a
/// shutdown — the suite hangs instead of failing. Construct it
/// *inside* the scope closure (guards outside drop only after the
/// join).
struct DrainOnPanic(ShutdownHandle);

impl Drop for DrainOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.drain();
        }
    }
}

/// A unique, self-cleaning snapshot location per test.
struct TempSnap(PathBuf);

impl TempSnap {
    fn new() -> Self {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cupid-serve-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempSnap(dir.join("cupid.repo"))
    }
}

impl Drop for TempSnap {
    fn drop(&mut self) {
        if let Some(dir) = self.0.parent() {
            std::fs::remove_dir_all(dir).ok();
        }
    }
}

/// The corpus travels as SDL text — the same bytes the clients ship —
/// so daemon and in-process sides prepare literally identical schemas.
const CORPUS_SDL: &[&str] = &[
    "schema PO\n  element Item\n    attr Qty : int\n    attr Invoice : string\n",
    "schema Order\n  element Item\n    attr Quantity : int\n    attr Bill : string\n",
    "schema Sales\n  element Order\n    attr Quantity : int\n    attr OrderDate : date\n",
    "schema Customer\n  element Person\n    attr CustomerName : string\n    attr Phone : string\n",
    "schema Client\n  element Person\n    attr ClientName : string\n    attr Telephone : string\n",
    "schema Misc\n  element Thing\n    attr Unrelated : decimal\n",
];

fn thesaurus() -> Thesaurus {
    Thesaurus::parse(
        "abbrev Qty = quantity\n\
         syn invoice bill 1.0\n\
         syn phone telephone 1.0\n\
         syn customer client 0.9\n",
    )
    .unwrap()
}

fn corpus() -> Vec<Schema> {
    CORPUS_SDL.iter().map(|sdl| parse_sdl(sdl).unwrap()).collect()
}

/// Expected summaries from a direct in-process session: name pair →
/// summary, both orientations executed exactly as the daemon would.
fn expected_pairs(config: &CupidConfig, th: &Thesaurus) -> Vec<((String, String), MatchSummary)> {
    let corpus = corpus();
    let mut session = MatchSession::new(config, th);
    let ids = session.add_corpus(&corpus).unwrap();
    let mut out = Vec::new();
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            let summary = session.match_pair(ids[i], ids[j]);
            out.push(((corpus[i].name().to_string(), corpus[j].name().to_string()), summary));
        }
    }
    out
}

#[test]
fn concurrent_clients_get_bit_identical_responses() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();

    // In-process ground truth.
    let want_pairs = expected_pairs(&config, &th);
    let want_topk = {
        let other = TempSnap::new();
        let mut repo = Repository::open_or_create(&other.0, &config, &th).unwrap();
        repo.add_corpus(&corpus()).unwrap();
        repo.top_k_pairs(2)
    };

    let server =
        Server::bind("127.0.0.1:0", &tmp.0, &config, &th, ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let _guard = DrainOnPanic(handle);

        // One client populates the corpus.
        let mut setup = ServeClient::connect(addr).unwrap();
        for sdl in CORPUS_SDL {
            setup.add_sdl(sdl).unwrap();
        }

        // Three concurrent clients each run the full pair worklist and
        // a top-k, in different orders so cached and uncached serves
        // interleave across the read/write split.
        let handles: Vec<_> = (0..3)
            .map(|c| {
                let want_pairs = &want_pairs;
                let want_topk = &want_topk;
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).unwrap();
                    let mut order: Vec<usize> = (0..want_pairs.len()).collect();
                    if c % 2 == 1 {
                        order.reverse();
                    }
                    for idx in order {
                        let ((source, target), want) = &want_pairs[idx];
                        let got = client.match_pair(source, target).unwrap();
                        assert_eq!(
                            &got, want,
                            "client {c}: daemon summary for {source}~{target} diverged"
                        );
                    }
                    let listing = client.top_k(2).unwrap();
                    assert_eq!(listing.summaries, *want_topk, "client {c}: top-k diverged");
                    assert_eq!(
                        listing.names,
                        CORPUS_SDL
                            .iter()
                            .map(|s| parse_sdl(s).unwrap().name().to_string())
                            .collect::<Vec<_>>()
                    );
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();

        // Counters: 45 match requests across the clients collapse to
        // ~15 executions. Two clients racing on the same uncached pair
        // may both execute it before either absorbs (benign: identical
        // summaries), so the exact count is bounded, not fixed.
        let stats = setup.stats().unwrap();
        assert_eq!(stats.schemas, 6);
        assert!(
            (15..=45).contains(&stats.pairs_executed),
            "expected ~15 executions, got {}",
            stats.pairs_executed
        );
        let saved = setup.save().unwrap();
        assert!(saved > 0);
        setup.shutdown().unwrap();
        drop(setup);
        for r in results {
            r.unwrap();
        }
    });

    // The daemon released the repository lock and persisted its state:
    // a direct reopen serves every pair from the snapshot cache.
    let mut warm = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
    assert!(warm.was_loaded());
    for ((source, target), want) in &want_pairs {
        assert_eq!(&warm.match_pair(source, target).unwrap(), want);
    }
    assert_eq!(warm.pairs_executed(), 0, "daemon snapshot already covers all pairs");
}

/// The tentpole contract of the batched wire path: a cold batch —
/// executed under one read-lock acquisition over one shared memo clone
/// — returns summaries bit-identical to in-process matching (and hence
/// to unary daemon requests, which the suite above pins to the same
/// ground truth), a mid-batch invalid schema name fails only its own
/// entry with the exact unary error string, and the per-kind latency
/// histograms surface through `Stats`.
#[test]
fn batched_requests_match_unary_bit_for_bit() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();
    let want_pairs = expected_pairs(&config, &th);

    let server =
        Server::bind("127.0.0.1:0", &tmp.0, &config, &th, ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let _guard = DrainOnPanic(handle);
        let pool = ServePool::new(addr.to_string(), 2);
        {
            let mut setup = pool.checkout().unwrap();
            for sdl in CORPUS_SDL {
                setup.add_sdl(sdl).unwrap();
            }
        }
        assert_eq!(pool.idle(), 1, "healthy connection checked back in");

        // One cold batch: every pair, with an invalid entry wedged in
        // the middle, then a top-k probe and a stats probe.
        let mut client = pool.checkout().unwrap();
        assert_eq!(pool.live(), 1, "checkout reuses the parked connection");
        let mut items: Vec<BatchItem> = want_pairs
            .iter()
            .map(|((s, t), _)| BatchItem::MatchPair { source: s.clone(), target: t.clone() })
            .collect();
        let bad_at = items.len() / 2;
        items.insert(bad_at, BatchItem::MatchPair { source: "PO".into(), target: "Nope".into() });
        items.push(BatchItem::TopK { k: 2 });
        items.push(BatchItem::Stats);
        let entries = client.batch(items).unwrap();
        assert_eq!(entries.len(), want_pairs.len() + 3);

        let mut want_iter = want_pairs.iter();
        for (pos, entry) in entries.iter().take(want_pairs.len() + 1).enumerate() {
            if pos == bad_at {
                let message = entry.as_ref().expect_err("invalid entry must fail alone");
                let unary = client.match_pair("PO", "Nope").unwrap_err();
                match unary {
                    ServeError::Remote(unary_message) => assert_eq!(
                        message, &unary_message,
                        "batch entry error must equal the unary error"
                    ),
                    other => panic!("unary error of unexpected kind: {other:?}"),
                }
                continue;
            }
            let ((s, t), want) = want_iter.next().unwrap();
            match entry {
                Ok(BatchOutcome::Matched { source, target, summary }) => {
                    assert_eq!((source, target), (s, t));
                    assert_eq!(summary, want, "batched {s}~{t} diverged from in-process");
                }
                other => panic!("expected Matched for {s}~{t}, got {other:?}"),
            }
        }

        // The top-k entry equals a unary top-k on the warmed daemon.
        let unary_topk = client.top_k(2).unwrap();
        match &entries[want_pairs.len() + 1] {
            Ok(BatchOutcome::TopKList { names, summaries }) => {
                assert_eq!(names, &unary_topk.names);
                assert_eq!(summaries, &unary_topk.summaries, "batched top-k diverged");
            }
            other => panic!("expected TopKList, got {other:?}"),
        }
        assert!(matches!(
            &entries[want_pairs.len() + 2],
            Ok(BatchOutcome::Stats(report)) if report.schemas == 6
        ));

        // Unary requests after the batch are cache hits on the batch's
        // published summaries — same bits again.
        for ((s, t), want) in &want_pairs {
            assert_eq!(&client.match_pair(s, t).unwrap(), want);
        }

        // The convenience batchers agree with everything above.
        let pairs: Vec<(String, String)> =
            want_pairs.iter().map(|((s, t), _)| (s.clone(), t.clone())).collect();
        for (got, (_, want)) in client.match_pairs(&pairs).unwrap().iter().zip(&want_pairs) {
            assert_eq!(got.as_ref().unwrap(), want);
        }
        let listings = client.top_k_many(&[2, 2]).unwrap();
        assert_eq!(listings.len(), 2);
        for listing in listings {
            assert_eq!(listing.unwrap().summaries, unary_topk.summaries);
        }

        // Per-kind latency histograms surface through Stats.
        let stats = client.stats().unwrap();
        let kinds: Vec<&str> = stats.latencies.iter().map(|l| l.kind.as_str()).collect();
        for kind in ["mutate", "match_pair", "top_k", "stats", "save", "batch", "shutdown"] {
            assert!(kinds.contains(&kind), "missing latency kind {kind} in {kinds:?}");
        }
        let batch_lat = stats.latencies.iter().find(|l| l.kind == "batch").unwrap();
        assert!(batch_lat.count >= 3, "three batches served, got {}", batch_lat.count);
        assert!(batch_lat.quantile_ns(0.5) > 0);
        assert!(batch_lat.quantile_ns(0.999) >= batch_lat.quantile_ns(0.5));
        assert!(batch_lat.mean_ns() > 0);

        client.shutdown().unwrap();
    });
}

/// A daemon that accepts but never answers must not park the client
/// forever: the read timeout surfaces as a typed `DeadlineExceeded`,
/// the connection is poisoned, and its pool evicts it on checkin
/// instead of handing the desynchronized stream to the next checkout.
#[test]
fn read_timeout_fails_loudly_and_pool_evicts_broken_connections() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let pool = ServePool::with_builder(
        addr.to_string(),
        2,
        ClientBuilder::new()
            .connect_timeout(Duration::from_secs(10))
            .read_timeout(Duration::from_millis(50)),
    );
    let mut client = pool.checkout().unwrap();
    assert_eq!(pool.live(), 1);
    let err = client.stats().unwrap_err();
    assert!(
        matches!(err, ServeError::DeadlineExceeded),
        "timeout must be typed DeadlineExceeded: {err:?}"
    );
    assert!(err.is_retryable(), "a deadline expiry is worth retrying");
    assert!(client.is_poisoned());
    // Poisoned clients refuse further exchanges instead of reading
    // from a desynchronized stream (typed too, for pool diagnostics).
    assert!(matches!(client.stats().unwrap_err(), ServeError::Poisoned));
    drop(client);
    assert_eq!(pool.live(), 0, "poisoned connection evicted on checkin");
    assert_eq!(pool.idle(), 0);
    drop(listener);
}

#[test]
fn daemon_holds_the_single_writer_lock() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();
    let server =
        Server::bind("127.0.0.1:0", &tmp.0, &config, &th, ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let _guard = DrainOnPanic(handle);
        // While the daemon runs, a second writer is refused loudly.
        match Repository::open_or_create(&tmp.0, &config, &th) {
            Err(RepoError::Locked { pid, .. }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked while the daemon runs, got {other:?}"),
        }
        ServeClient::connect(addr).unwrap().shutdown().unwrap();
    });
    // After shutdown the lock is released.
    assert!(Repository::open_or_create(&tmp.0, &config, &th).is_ok());
}

#[test]
fn mutations_errors_and_restart() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();

    // Expected state after the replace: PO edited to carry a Total.
    let edited_po = "schema PO\n  element Item\n    attr Qty : int\n    attr Total : decimal\n";
    let want_after_replace = {
        let mut fresh = corpus();
        fresh[0] = parse_sdl(edited_po).unwrap();
        let mut session = MatchSession::new(&config, &th);
        let ids = session.add_corpus(&fresh).unwrap();
        session.match_pair(ids[0], ids[1])
    };

    let server =
        Server::bind("127.0.0.1:0", &tmp.0, &config, &th, ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let _guard = DrainOnPanic(handle);
        let mut client = ServeClient::connect(addr).unwrap();
        for sdl in CORPUS_SDL {
            client.add_sdl(sdl).unwrap();
        }

        // Error responses keep the connection usable.
        assert!(matches!(
            client.match_pair("PO", "Nope"),
            Err(cupid::serve::ServeError::Remote(m)) if m.contains("Nope")
        ));
        assert!(matches!(
            client.add_sdl(CORPUS_SDL[0]),
            Err(cupid::serve::ServeError::Remote(m)) if m.contains("already")
        ));
        assert!(matches!(
            client.replace_sdl("schema Ghost\n  element X\n    attr Y : int\n"),
            Err(cupid::serve::ServeError::Remote(_))
        ));
        assert!(client.match_pair("PO", "Order").is_ok(), "connection survives errors");

        // Replace re-matches incrementally; the response equals a cold
        // in-process rebuild with the edited corpus.
        client.replace_sdl(edited_po).unwrap();
        assert_eq!(client.match_pair("PO", "Order").unwrap(), want_after_replace);

        // Remove shrinks the corpus.
        client.remove("Misc").unwrap();
        assert_eq!(client.stats().unwrap().schemas, 5);
        assert!(matches!(
            client.match_pair("PO", "Misc"),
            Err(cupid::serve::ServeError::Remote(_))
        ));

        client.shutdown().unwrap();
    });

    // Restart the daemon over the saved snapshot: state survives.
    let server =
        Server::bind("127.0.0.1:0", &tmp.0, &config, &th, ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let _guard = DrainOnPanic(handle);
        let mut client = ServeClient::connect(addr).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.schemas, 5, "restarted daemon loads the saved corpus");
        assert_eq!(stats.pairs_executed, 0);
        assert_eq!(
            client.match_pair("PO", "Order").unwrap(),
            want_after_replace,
            "cached pair served across daemon restarts, bit-identical"
        );
        assert_eq!(client.stats().unwrap().pairs_executed, 0, "served from the snapshot cache");
        client.shutdown().unwrap();
    });
}

/// Process-mode daemon used by [`restart_under_load_loses_no_acked_mutation`]:
/// a no-op under the normal test run, a real `--autosave 1` daemon when
/// re-executed with the child environment set. The bound address is
/// published through an atomically renamed file.
#[test]
fn daemon_child_entry() {
    let Ok(snap) = std::env::var("CUPID_DAEMON_CHILD_SNAP") else { return };
    let addr_file = std::env::var("CUPID_DAEMON_CHILD_ADDR").unwrap();
    let config = CupidConfig::default();
    let th = thesaurus();
    let options = ServeOptions { autosave_every: Some(1), ..ServeOptions::default() };
    let server = Server::bind("127.0.0.1:0", Path::new(&snap), &config, &th, options).unwrap();
    let tmp = format!("{addr_file}.tmp");
    std::fs::write(&tmp, server.local_addr().to_string()).unwrap();
    std::fs::rename(&tmp, &addr_file).unwrap();
    server.run().unwrap();
}

/// Re-execute this test binary as a daemon child and wait for its
/// address.
fn spawn_daemon_child(snap: &Path, addr_file: &Path) -> (std::process::Child, String) {
    std::fs::remove_file(addr_file).ok();
    let mut child = std::process::Command::new(std::env::current_exe().unwrap())
        .args(["daemon_child_entry", "--exact", "--nocapture"])
        .env("CUPID_DAEMON_CHILD_SNAP", snap)
        .env("CUPID_DAEMON_CHILD_ADDR", addr_file)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .unwrap();
    let start = std::time::Instant::now();
    loop {
        if let Ok(addr) = std::fs::read_to_string(addr_file) {
            if !addr.is_empty() {
                return (child, addr);
            }
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("daemon child exited before binding: {status}");
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "daemon child never published its address"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// SIGKILL under concurrent load, relaunch on the same path: the new
/// daemon reclaims the dead process's lock, and every *acknowledged*
/// mutation survives — with `--autosave 1`, a response is not written
/// until its journal record is fsynced, so at most each writer's one
/// unacknowledged request may be lost.
#[test]
fn restart_under_load_loses_no_acked_mutation() {
    let tmp = TempSnap::new();
    let addr_file = tmp.0.parent().unwrap().join("addr");
    let (child, addr) = spawn_daemon_child(&tmp.0, &addr_file);
    let child = std::sync::Mutex::new(child);

    // Three writers on disjoint name spaces plus one reader, while a
    // killer thread SIGKILLs the daemon mid-stream.
    let sdl_for = |c: usize, i: usize| {
        format!("schema W{c}N{i}\n  element Item\n    attr V{i} : int\n    attr Qty : int\n")
    };
    let mut acked: Vec<Vec<(String, String)>> = Vec::new(); // (name, sdl) per writer
    std::thread::scope(|scope| {
        let killer = scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(25));
            child.lock().unwrap().kill().ok();
        });
        let reader = {
            let addr = addr.clone();
            scope.spawn(move || {
                let Ok(mut client) = ServeClient::connect(addr.as_str()) else { return };
                // Read load racing the writers; remote errors (unknown
                // names, severed connection) are part of the weather.
                loop {
                    if client.stats().is_err() {
                        return;
                    }
                    if client.match_pair("W0N0", "W1N0").is_err() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            })
        };
        let writers: Vec<_> = (0..3)
            .map(|c| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr.as_str()).unwrap();
                    let mut acked = Vec::new();
                    for i in 0..40 {
                        let sdl = sdl_for(c, i);
                        match client.add_sdl(&sdl) {
                            Ok(name) => acked.push((name, sdl)),
                            Err(_) => break, // the kill severed us
                        }
                    }
                    acked
                })
            })
            .collect();
        acked = writers.into_iter().map(|w| w.join().unwrap()).collect();
        killer.join().unwrap();
        child.lock().unwrap().wait().unwrap();
        reader.join().unwrap();
    });
    let acked_total: usize = acked.iter().map(Vec::len).sum();
    assert!(acked_total > 0, "some mutations must land before the kill");
    assert!(
        RepoLock::lock_path(&tmp.0).exists(),
        "the killed daemon leaves its advisory lock behind"
    );

    // Relaunch on the same path: the fresh daemon process reclaims the
    // dead pid's lock and replays the journal.
    let (mut child, addr) = spawn_daemon_child(&tmp.0, &addr_file);
    let mut client = ServeClient::connect(addr.as_str()).unwrap();
    let stats = client.stats().unwrap();
    // Each writer may have one unacknowledged add in flight at the kill.
    let plausible = acked_total as u64..=acked_total as u64 + 3;
    assert!(
        plausible.contains(&stats.schemas),
        "expected {acked_total}..={} schemas after recovery, got {}",
        acked_total + 3,
        stats.schemas
    );
    assert!(
        plausible.contains(&stats.replayed_records),
        "every acked mutation replays from the journal (acked {acked_total}, replayed {})",
        stats.replayed_records
    );
    client.shutdown().unwrap();
    child.wait().unwrap();

    // Offline content check: every acknowledged add survives with
    // byte-identical schema content.
    let config = CupidConfig::default();
    let th = thesaurus();
    let repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
    assert_eq!(repo.durability().replayed_records, 0, "shutdown folded the journal");
    for (name, sdl) in acked.iter().flatten() {
        let got = repo.schema(name).unwrap_or_else(|| panic!("acked schema `{name}` lost"));
        assert_eq!(
            got.content_hash(),
            parse_sdl(sdl).unwrap().content_hash(),
            "acked schema `{name}` changed across the crash"
        );
    }
}

#[test]
fn autosave_journals_mutations_and_snapshots_at_shutdown() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();
    let options = ServeOptions { autosave_every: Some(1), ..ServeOptions::default() };
    let server = Server::bind("127.0.0.1:0", &tmp.0, &config, &th, options).unwrap();
    let addr = server.local_addr();
    let journal = cupid::repo::journal::journal_path(&tmp.0);
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let _guard = DrainOnPanic(handle);
        let mut client = ServeClient::connect(addr).unwrap();
        let header_only = std::fs::metadata(&journal).unwrap().len();

        client.add_sdl(CORPUS_SDL[0]).unwrap();
        let after_one = std::fs::metadata(&journal).unwrap().len();
        assert!(after_one > header_only, "the acked mutation is on disk in the journal");
        assert!(!tmp.0.exists(), "autosave appends a journal record, not a snapshot rewrite");

        client.add_sdl(CORPUS_SDL[1]).unwrap();
        assert!(std::fs::metadata(&journal).unwrap().len() > after_one);
        let stats = client.stats().unwrap();
        assert_eq!(stats.journal_records, 2);
        assert!(stats.journal_bytes > 0);
        assert_eq!(stats.last_fsync_error, "", "healthy daemon reports no fsync error");

        client.shutdown().unwrap();
    });

    // Shutdown folded the journal into a snapshot; a direct reopen
    // loads it without replaying anything.
    assert!(tmp.0.exists(), "the shutdown save writes the snapshot");
    let warm = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
    assert!(warm.was_loaded());
    assert_eq!(warm.len(), 2);
    assert_eq!(warm.durability().replayed_records, 0, "journal was folded at shutdown");
}

/// The explainability contract (DESIGN.md §14), one network hop out:
/// a served explanation equals the in-process one field for field,
/// every mapping recomposes to its reported `wsim` bit-exactly, and
/// explain requests leave the match path untouched — they fill no pair
/// cache, count no pair executions, and the summaries served afterward
/// are bit-identical to the explain-free ground truth.
#[test]
fn explanations_recompose_and_leave_match_output_untouched() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();
    let want_pairs = expected_pairs(&config, &th);

    // In-process explanation ground truth over the same corpus.
    let want_explained = {
        let corpus = corpus();
        let mut session = MatchSession::new(&config, &th);
        let ids = session.add_corpus(&corpus).unwrap();
        session.explain_pair(ids[0], ids[1])
    };
    assert!(!want_explained.mappings.is_empty(), "PO~Order explains at least one mapping");

    let server =
        Server::bind("127.0.0.1:0", &tmp.0, &config, &th, ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let _guard = DrainOnPanic(handle);
        let mut client = ServeClient::connect(addr).unwrap();
        for sdl in CORPUS_SDL {
            client.add_sdl(sdl).unwrap();
        }

        // Explain before any match: the wire-decoded explanation is the
        // in-process one, similarity bits included, and recomposes.
        let got = client.explain("PO", "Order").unwrap();
        assert_eq!(got, want_explained, "served explanation diverged from in-process");
        assert!(got.recomposes_exactly(), "every mapping must recompose to its wsim bit-exactly");
        for m in &got.mappings {
            assert!(m.wsim >= m.th_accept, "kept mappings cleared the acceptance threshold");
        }

        // Unknown names are loud errors, connection stays usable.
        assert!(matches!(client.explain("PO", "Nope"), Err(ServeError::Remote(_))));

        // Diagnostics, not matches: nothing was executed or cached, but
        // the explain counters and latency kind did move.
        let stats = client.stats().unwrap();
        assert_eq!(stats.pairs_executed, 0, "explain must not count as pair execution");
        assert_eq!(stats.cached_pairs, 0, "explain must not fill the pair cache");
        assert_eq!(stats.explanations_served, 1);
        assert!(stats.vocab_bytes > 0, "token-table gauge is live");
        let explain_latency =
            stats.latencies.iter().find(|l| l.kind == "explain").expect("explain kind recorded");
        // The latency kind counts requests, successful or not: the
        // explain that worked plus the unknown-name error.
        assert_eq!(explain_latency.count, 2);

        // The match path is untouched: every summary still equals the
        // explain-free in-process ground truth bit for bit.
        for ((source, target), want) in &want_pairs {
            let got = client.match_pair(source, target).unwrap();
            assert_eq!(&got, want, "summary for {source}~{target} diverged after explain");
        }

        // Explaining a now-cached pair still answers (and still does
        // not disturb the cache counters).
        let again = client.explain("PO", "Order").unwrap();
        assert_eq!(again, want_explained);
        let stats = client.stats().unwrap();
        assert_eq!(stats.explanations_served, 2);
        assert_eq!(stats.cached_pairs as usize, want_pairs.len());

        client.shutdown().unwrap();
    });
}
