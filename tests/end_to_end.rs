//! End-to-end integration tests: the full pipeline over every corpus of
//! the paper, asserting the headline results of Section 9.

use cupid::corpus::{canonical, cidx_excel, fig1, fig2, star_rdb, thesauri};
use cupid::eval::{configs, metrics::MatchQuality};
use cupid::prelude::*;

#[test]
fn figure1_all_gold_found() {
    let out = Cupid::with_config(configs::shallow_xml(), fig1::thesaurus())
        .match_schemas(&fig1::po(), &fig1::porder())
        .unwrap();
    for (s, t) in fig1::gold().pairs() {
        assert!(out.has_leaf_mapping(s, t), "missing {s} -> {t}");
    }
    for (s, t) in fig1::gold_nonleaf().pairs() {
        assert!(out.has_nonleaf_mapping(s, t), "missing element mapping {s} -> {t}");
    }
}

#[test]
fn figure2_context_dependent_binding() {
    let out = Cupid::with_config(configs::shallow_xml(), thesauri::paper_thesaurus())
        .match_schemas(&fig2::po(), &fig2::purchase_order())
        .unwrap();
    let q = MatchQuality::score_mappings(&out.leaf_mappings, &fig2::gold());
    assert!(q.recall() >= 0.99, "recall {}", q.recall());
    // the wrong context must not be selected
    assert!(!out.has_leaf_mapping("PO.POBillTo.City", "PurchaseOrder.DeliverTo.City"));
    assert!(out.has_leaf_mapping("PO.POBillTo.City", "PurchaseOrder.InvoiceTo.City"));
}

#[test]
fn canonical_cases_cupid_all_yes() {
    for case in canonical::all_cases() {
        let out = Cupid::with_config(configs::shallow_xml(), Thesaurus::with_default_stopwords())
            .match_schemas(&case.schema1, &case.schema2)
            .unwrap();
        for (s, t) in case.gold.pairs() {
            assert!(
                out.has_leaf_mapping(s, t),
                "case {} ({}): missing {s} -> {t}",
                case.id,
                case.description
            );
        }
    }
}

#[test]
fn cidx_excel_full_recall_with_paper_thesaurus() {
    let out = Cupid::with_config(configs::shallow_xml(), thesauri::paper_thesaurus())
        .match_schemas(&cidx_excel::cidx(), &cidx_excel::excel())
        .unwrap();
    let q = MatchQuality::score_mappings(&out.leaf_mappings, &cidx_excel::gold());
    assert!(q.recall() >= 0.99, "recall {}", q.recall());
    // Table 3 rows, element level
    for (label, src, targets) in cidx_excel::table3_rows() {
        assert!(
            targets.iter().any(|t| out.has_nonleaf_mapping(src, t)),
            "Table 3 row {label} missing"
        );
    }
}

#[test]
fn star_rdb_join_view_wins_sales() {
    let out = Cupid::with_config(configs::relational(), thesauri::empty_thesaurus())
        .match_schemas(&star_rdb::rdb(), &star_rdb::star())
        .unwrap();
    let sales =
        out.nonleaf_mappings.iter().find(|m| m.target_path == "Star.Sales").expect("Sales mapped");
    assert_eq!(
        sales.source_path, "RDB.OrderDetails-Orders-fk",
        "paper: the join of Orders and OrderDetails matches Sales"
    );
    // and the join strictly beats both plain tables
    let w_join = out.wsim_of_paths("RDB.OrderDetails-Orders-fk", "Star.Sales");
    let w_orders = out.wsim_of_paths("RDB.Orders", "Star.Sales");
    let w_details = out.wsim_of_paths("RDB.OrderDetails", "Star.Sales");
    assert!(w_join > w_orders && w_join > w_details, "{w_join} vs {w_orders}/{w_details}");
}

#[test]
fn lazy_expansion_is_a_pure_optimization() {
    // Same mappings with and without lazy expansion. Lazy block-copying
    // applies to the *source* schema's duplicated contexts (see
    // cupid_core::lazy), so the shared-type Excel schema goes first.
    let s1 = cidx_excel::excel();
    let s2 = cidx_excel::cidx();
    let eager = Cupid::with_config(configs::shallow_xml(), thesauri::paper_thesaurus())
        .match_schemas(&s1, &s2)
        .unwrap();
    let lazy = Cupid::with_config(configs::shallow_xml(), thesauri::paper_thesaurus())
        .with_lazy_expansion(true)
        .match_schemas(&s1, &s2)
        .unwrap();
    assert!(lazy.structural.stats.lazy_copied_pairs > 0, "lazy should skip work");
    assert_eq!(eager.leaf_mappings.len(), lazy.leaf_mappings.len());
    for (a, b) in eager.leaf_mappings.iter().zip(&lazy.leaf_mappings) {
        assert_eq!(a.source_path, b.source_path);
        assert_eq!(a.target_path, b.target_path);
        assert_eq!(a.wsim, b.wsim, "wsim must be bit-identical");
    }
}

#[test]
fn recursive_schemas_are_rejected() {
    let mut b = SchemaBuilder::new("S");
    let part = b.type_def("Part");
    let sub = b.structured(part, "SubPart", ElementKind::XmlElement);
    b.derive_from(sub, part);
    let e = b.structured(b.root(), "Root", ElementKind::XmlElement);
    b.derive_from(e, part);
    let s = b.build().unwrap();
    let err = Cupid::new(Thesaurus::with_default_stopwords()).match_schemas(&s, &s).unwrap_err();
    assert!(matches!(err, cupid::model::ModelError::CycleDetected { .. }));
}

#[test]
fn mapping_is_deterministic() {
    let s1 = cidx_excel::cidx();
    let s2 = cidx_excel::excel();
    let run = || {
        Cupid::with_config(configs::shallow_xml(), thesauri::paper_thesaurus())
            .match_schemas(&s1, &s2)
            .unwrap()
            .leaf_mappings
            .iter()
            .map(|m| (m.source_path.clone(), m.target_path.clone(), m.wsim))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
