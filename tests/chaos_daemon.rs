//! Hostile-network suite for the match daemon (DESIGN.md §12).
//!
//! Every test here puts the daemon behind the in-process
//! [`ChaosProxy`] (or under deliberate overload/misbehaviour) and
//! checks the hardening contract:
//!
//! * **No acked mutation is lost or double-applied** — response frames
//!   carrying mutation acks are torn down on a deterministic schedule;
//!   the retrying client must still get every mutation applied exactly
//!   once (request-id dedup replays the original ack).
//! * **No call outlives its deadline** — with every frame black-holed,
//!   a retried call must fail *typed* (`DeadlineExceeded`) within the
//!   policy's computable wall-clock bound, never park forever.
//! * **Retried reads are bit-identical** — a seeded mix of delay,
//!   drop, reset, partial-write and black-hole faults may force any
//!   number of reconnects and resends, but every summary that comes
//!   back must carry the same similarity bits as a fault-free run.
//! * **Overload sheds instead of queueing** — past `max_inflight`,
//!   arrivals get the typed `Overloaded` frame and the daemon's shed
//!   counter says so.
//! * **Idle peers don't pin workers** — a connected-but-silent client
//!   is closed at the idle deadline and its connection slot reclaimed
//!   (the regression this PR exists to fix).

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use cupid::core::CupidConfig;
use cupid::lexical::Thesaurus;
use cupid::prelude::{ServeClient, ServeOptions, Server, ShutdownHandle};
use cupid::serve::chaos::{ChaosProxy, Direction, Fault, FaultMix};
use cupid::serve::{ClientBuilder, RetryPolicy, ServeError};

/// Drains the daemon if the test body panics. Every test here runs
/// the daemon on a scoped thread; a bare assertion failure in the
/// body would otherwise leave `thread::scope` joining a daemon parked
/// in `accept` that will never hear a shutdown — the suite hangs
/// forever and the panic message is never printed. The guard turns
/// that back into an ordinary test failure. Construct it *inside* the
/// scope closure (guards declared outside drop only after the join).
struct DrainOnPanic(ShutdownHandle);

impl Drop for DrainOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.drain();
        }
    }
}

/// A unique, self-cleaning snapshot location per test.
struct TempSnap(PathBuf);

impl TempSnap {
    fn new() -> Self {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cupid-chaos-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempSnap(dir.join("cupid.repo"))
    }
}

impl Drop for TempSnap {
    fn drop(&mut self) {
        if let Some(dir) = self.0.parent() {
            std::fs::remove_dir_all(dir).ok();
        }
    }
}

const CORPUS_SDL: &[&str] = &[
    "schema PO\n  element Item\n    attr Qty : int\n    attr Invoice : string\n",
    "schema Order\n  element Item\n    attr Quantity : int\n    attr Bill : string\n",
    "schema Sales\n  element Order\n    attr Quantity : int\n    attr OrderDate : date\n",
    "schema Customer\n  element Person\n    attr CustomerName : string\n    attr Phone : string\n",
    "schema Client\n  element Person\n    attr ClientName : string\n    attr Telephone : string\n",
    "schema Misc\n  element Thing\n    attr Unrelated : decimal\n",
];

fn thesaurus() -> Thesaurus {
    Thesaurus::parse(
        "abbrev Qty = quantity\n\
         syn invoice bill 1.0\n\
         syn phone telephone 1.0\n\
         syn customer client 0.9\n",
    )
    .unwrap()
}

/// Daemon options tuned for chaos runs: tight deadlines so faults
/// resolve in milliseconds, not the production defaults.
fn chaos_opts() -> ServeOptions {
    ServeOptions {
        idle_timeout: Some(Duration::from_secs(5)),
        frame_deadline: Some(Duration::from_secs(2)),
        ..ServeOptions::default()
    }
}

/// A builder with deadlines sized for loopback chaos (every attempt
/// bounded by ~250 ms of socket deadline) and a deterministic retry
/// policy generous enough to ride out the injected fault rates.
fn retrying(seed: u64) -> ClientBuilder {
    ClientBuilder::new()
        .connect_timeout(Duration::from_secs(1))
        .read_timeout(Duration::from_millis(250))
        .retry(
            RetryPolicy::new(seed)
                .base(Duration::from_millis(5))
                .cap(Duration::from_millis(40))
                .budget(6),
        )
}

/// Acks torn down on a fixed cadence: every third response frame of
/// every proxied connection resets the whole connection, so roughly a
/// third of mutations lose their ack *after* the daemon applied them.
/// The retrying client must converge anyway — and must not
/// double-apply: a re-executed `Add` would answer "already in
/// repository", turning the ack into an error, which the per-mutation
/// asserts below would catch.
#[test]
fn no_acked_mutation_lost_or_double_applied() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();
    let server = Server::bind("127.0.0.1:0", &tmp.0, &config, &th, chaos_opts()).unwrap();
    let daemon_addr = server.local_addr();
    let mut proxy = ChaosProxy::start(daemon_addr, |ctx| {
        if ctx.direction == Direction::ServerToClient && ctx.frame % 3 == 2 {
            Fault::Reset
        } else {
            Fault::Pass
        }
    })
    .unwrap();

    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let _guard = DrainOnPanic(handle);
        let mut client = retrying(0xC0FFEE).connect(proxy.addr()).unwrap();
        for sdl in CORPUS_SDL {
            client.add_sdl(sdl).expect("acked add must survive torn acks");
        }
        // Mutations of all three kinds, every ack at risk.
        client
            .replace_sdl("schema Misc\n  element Thing\n    attr Renamed : decimal\n")
            .expect("acked replace must survive torn acks");
        client.remove("Client").expect("acked remove must survive torn acks");

        // Ground truth read directly from the daemon, not the proxy.
        let mut direct = ServeClient::connect(daemon_addr).unwrap();
        let stats = direct.stats().unwrap();
        assert_eq!(stats.schemas, CORPUS_SDL.len() as u64 - 1, "adds minus the remove");
        assert!(
            stats.deduped_mutations > 0,
            "the reset cadence must have forced at least one replayed ack"
        );
        // The replace landed exactly once (its effect is visible).
        let listing = direct.top_k(16).unwrap();
        assert!(listing.names.contains(&"Misc".to_string()));
        assert!(!listing.names.contains(&"Client".to_string()), "removed schema stays removed");
        direct.shutdown().unwrap();
    });
    let (_, resets) = proxy.injected().into_iter().find(|(k, _)| *k == "reset").unwrap();
    assert!(resets > 0, "the schedule must actually have torn connections");
    proxy.stop();
}

/// With every request frame black-holed, a retried call must fail
/// typed within the policy's computable wall-clock bound — silence is
/// the one fault that can't be detected faster than the deadline, so
/// this is the worst case for "no call outlives its deadline".
#[test]
fn no_call_outlives_its_deadline() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();
    let server = Server::bind("127.0.0.1:0", &tmp.0, &config, &th, chaos_opts()).unwrap();
    let daemon_addr = server.local_addr();
    let mut proxy = ChaosProxy::start(daemon_addr, |ctx| {
        if ctx.direction == Direction::ClientToServer {
            Fault::BlackHole
        } else {
            Fault::Pass
        }
    })
    .unwrap();

    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let _guard = DrainOnPanic(handle);
        let connect_timeout = Duration::from_secs(1);
        let read_timeout = Duration::from_millis(200);
        let policy = RetryPolicy::new(7).base(Duration::from_millis(5)).budget(3);
        // Every attempt is bounded by connect + write deadline + read
        // deadline; the policy bound adds the backoff sleeps.
        let per_attempt = connect_timeout + read_timeout * 2;
        let bound = policy.max_elapsed(per_attempt);
        let mut client = ClientBuilder::new()
            .connect_timeout(connect_timeout)
            .read_timeout(read_timeout)
            .retry(policy)
            .connect(proxy.addr())
            .unwrap();
        let started = Instant::now();
        let err = client.stats().unwrap_err();
        let elapsed = started.elapsed();
        assert!(
            matches!(err, ServeError::DeadlineExceeded),
            "black-holed call must fail typed: {err:?}"
        );
        // Generous slack for 1-core CI scheduling; the point is the
        // *bound*, not the exact sum.
        assert!(
            elapsed < bound + Duration::from_millis(500),
            "call outlived its deadline: {elapsed:?} vs bound {bound:?}"
        );
        ServeClient::connect(daemon_addr).unwrap().shutdown().unwrap();
    });
    proxy.stop();
}

/// A seeded mix of all five fault classes may force any number of
/// reconnects and resends, but every read that eventually succeeds
/// must return the same similarity bits as a fault-free run against
/// the same daemon.
#[test]
fn retried_reads_bit_identical_to_clean_run() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();
    let server = Server::bind("127.0.0.1:0", &tmp.0, &config, &th, chaos_opts()).unwrap();
    let daemon_addr = server.local_addr();
    let mix = FaultMix {
        delay: 8,
        drop: 6,
        reset: 6,
        partial_write: 6,
        black_hole: 4,
        out_of: 100,
        max_delay: Duration::from_millis(40),
    };
    let mut proxy = ChaosProxy::start(daemon_addr, mix.schedule(0xBAD_5EED)).unwrap();

    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let _guard = DrainOnPanic(handle);
        // Populate and read ground truth over a clean direct path.
        let mut direct = ServeClient::connect(daemon_addr).unwrap();
        for sdl in CORPUS_SDL {
            direct.add_sdl(sdl).unwrap();
        }
        let names: Vec<String> = direct.top_k(0).unwrap().names;
        let mut clean = Vec::new();
        for i in 0..names.len() {
            for j in (i + 1)..names.len() {
                clean.push(direct.match_pair(&names[i], &names[j]).unwrap());
            }
        }
        let clean_topk = direct.top_k(4).unwrap();

        // Same reads through the chaos proxy with retries.
        let mut client = retrying(0xFEED_FACE).connect(proxy.addr()).unwrap();
        let mut hostile = Vec::new();
        for i in 0..names.len() {
            for j in (i + 1)..names.len() {
                hostile.push(
                    client
                        .match_pair(&names[i], &names[j])
                        .expect("retry budget must ride out the fault mix"),
                );
            }
        }
        let hostile_topk = client.top_k(4).expect("retried top-k");

        for (c, h) in clean.iter().zip(&hostile) {
            let bits = |s: &cupid::core::MatchSummary| {
                s.leaf_mappings
                    .iter()
                    .map(|m| (m.source_path.clone(), m.target_path.clone(), m.wsim.to_bits()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(bits(c), bits(h), "summary bits diverged under faults");
            assert_eq!(c.compared_pairs, h.compared_pairs);
        }
        assert_eq!(clean_topk.names, hostile_topk.names);
        assert_eq!(clean_topk.summaries.len(), hostile_topk.summaries.len());
        for (c, h) in clean_topk.summaries.iter().zip(&hostile_topk.summaries) {
            assert_eq!(
                c.leaf_mappings.len(),
                h.leaf_mappings.len(),
                "top-k summaries diverged under faults"
            );
        }
        direct.shutdown().unwrap();
    });
    let injected = proxy.injected();
    let total: u64 = injected.iter().map(|(_, n)| n).sum();
    assert!(total > 0, "seed injected nothing: {injected:?}");
    proxy.stop();
}

/// Past `max_inflight`, arrivals that can't get a slot within the
/// queue deadline get the typed `Overloaded` frame — the daemon sheds
/// instead of queueing unboundedly, and its stats say so.
#[test]
fn overload_sheds_with_typed_response() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();
    let opts =
        ServeOptions { max_inflight: Some(1), queue_deadline: Duration::ZERO, ..chaos_opts() };
    let server = Server::bind("127.0.0.1:0", &tmp.0, &config, &th, opts).unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let _guard = DrainOnPanic(handle);
        let mut setup = ServeClient::connect(addr).unwrap();
        for sdl in CORPUS_SDL {
            setup.add_sdl(sdl).unwrap();
        }
        // Hammer the 1-slot daemon from several threads with no
        // retries: collisions must shed with the typed frame, and a
        // shed response must leave the connection usable (it's an
        // application-level refusal, not a transport fault). A shed
        // needs an arrival to land *during* another request's
        // execution, and on a 1-core runner closed-loop clients are
        // rarely in-handler simultaneously — one storm round sheds
        // nothing every so often, so storm in rounds until a shed
        // shows up (one round almost always does).
        let shed_seen = std::sync::atomic::AtomicU32::new(0);
        let ok_seen = std::sync::atomic::AtomicU32::new(0);
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            std::thread::scope(|inner| {
                for _ in 0..6 {
                    inner.spawn(|| {
                        let mut client = ServeClient::connect(addr).unwrap();
                        for _ in 0..25 {
                            match client.top_k(4) {
                                Ok(listing) => {
                                    assert!(!listing.names.is_empty());
                                    ok_seen.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(ServeError::Overloaded { max_inflight, .. }) => {
                                    assert_eq!(max_inflight, 1);
                                    shed_seen.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(other) => {
                                    panic!("unexpected error under overload: {other:?}")
                                }
                            }
                        }
                    });
                }
            });
            if shed_seen.load(Ordering::Relaxed) > 0 || Instant::now() >= deadline {
                break;
            }
        }
        assert!(ok_seen.load(Ordering::Relaxed) > 0, "admitted requests must still succeed");
        assert!(
            shed_seen.load(Ordering::Relaxed) > 0,
            "six clients against one slot never shed across 20 s of storm rounds"
        );
        // Fresh connection for the postmortem: `setup` may have sat
        // past the idle deadline while the storm rounds ran.
        drop(setup);
        let mut fin = ServeClient::connect(addr).unwrap();
        let stats = fin.stats().unwrap();
        assert_eq!(
            stats.shed_requests,
            shed_seen.load(Ordering::Relaxed) as u64,
            "daemon shed counter must match client-observed Overloaded frames"
        );
        fin.shutdown().unwrap();
    });
}

/// Regression (pre-hardening bug): a client that connects and never
/// sends a frame used to pin an accept-loop worker forever. With an
/// idle deadline, the daemon closes it, counts it, and the connection
/// slot is reclaimed for real clients.
#[test]
fn idle_peer_slot_is_reclaimed() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();
    let opts = ServeOptions {
        max_connections: 1,
        idle_timeout: Some(Duration::from_millis(150)),
        ..ServeOptions::default()
    };
    let server = Server::bind("127.0.0.1:0", &tmp.0, &config, &th, opts).unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let _guard = DrainOnPanic(handle);
        // A silent connection takes the only slot...
        let silent = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // ...so the next client is refused at the door.
        let refused = ServeClient::connect(addr).unwrap().stats().unwrap_err();
        assert!(
            matches!(&refused, ServeError::Remote(m) if m.contains("capacity")),
            "expected a capacity refusal while the idle peer pins the slot: {refused:?}"
        );
        // Once the idle deadline passes, the slot comes back.
        let deadline = Instant::now() + Duration::from_secs(5);
        let stats = loop {
            std::thread::sleep(Duration::from_millis(50));
            if let Ok(stats) = ServeClient::connect(addr).and_then(|mut c| c.stats()) {
                break stats;
            }
            assert!(Instant::now() < deadline, "idle peer never evicted; slot still pinned");
        };
        assert!(stats.idle_disconnects >= 1, "idle eviction must be counted");
        drop(silent);
        // The stats client above was just dropped, but with one
        // connection slot its worker may not have seen the EOF and
        // released it yet — a shutdown sent immediately can bounce off
        // the capacity check. Retry until it lands; an unwrap here
        // would panic *inside* the scope, and the join of the
        // never-shut-down daemon thread (parked in accept) would hang
        // the suite before the panic could surface.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match ServeClient::connect(addr).and_then(|mut c| c.shutdown()) {
                Ok(_) => break,
                Err(e) => {
                    assert!(Instant::now() < deadline, "daemon never took the shutdown: {e:?}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    });
}
