//! Integration: the three importers produce schemas that flow through
//! the full matcher, and equivalent schemas expressed in different
//! formats match each other.

use cupid::io::{parse_ddl, parse_sdl, schema_from_xml};
use cupid::prelude::*;

const SDL: &str = "\
schema PurchaseOrder
  element Header
    attr OrderNumber : string
    attr OrderDate : date
  element Items
    attr ItemCount : int
    element Item
      attr ItemNumber : int
      attr Quantity : decimal
      attr UnitPrice : money
";

const XML: &str = r#"
<PurchaseOrder>
  <Header OrderNumber="A17" OrderDate="2001-08-27"/>
  <Items ItemCount="1">
    <Item ItemNumber="1" Quantity="2.5" UnitPrice="9.95"/>
  </Items>
</PurchaseOrder>
"#;

const SQL: &str = "\
CREATE TABLE Header (
    OrderNumber VARCHAR(20) PRIMARY KEY,
    OrderDate DATE NOT NULL
);
CREATE TABLE Item (
    ItemNumber INTEGER PRIMARY KEY,
    Quantity NUMERIC(10,2) NOT NULL,
    UnitPrice MONEY NOT NULL
);
";

#[test]
fn sdl_and_xml_schemas_match_each_other() {
    let s1 = parse_sdl(SDL).unwrap();
    let s2 = schema_from_xml(XML).unwrap();
    let out = Cupid::new(Thesaurus::with_default_stopwords()).match_schemas(&s1, &s2).unwrap();
    for leaf in ["OrderNumber", "OrderDate", "ItemCount"] {
        assert!(
            out.leaf_mappings
                .iter()
                .any(|m| m.source_path.ends_with(leaf) && m.target_path.ends_with(leaf)),
            "missing {leaf}: {:#?}",
            out.leaf_mappings
        );
    }
    assert!(out.has_nonleaf_mapping("PurchaseOrder.Items.Item", "PurchaseOrder.Items.Item"));
}

#[test]
fn sdl_and_ddl_schemas_match_each_other() {
    let s1 = parse_sdl(SDL).unwrap();
    let s2 = parse_ddl("OrderDB", SQL).unwrap();
    let out = Cupid::new(Thesaurus::with_default_stopwords()).match_schemas(&s1, &s2).unwrap();
    assert!(out.leaf_mappings.iter().any(|m| m.source_path == "PurchaseOrder.Header.OrderDate"
        && m.target_path == "OrderDB.Header.OrderDate"));
    assert!(out
        .leaf_mappings
        .iter()
        .any(|m| m.source_path == "PurchaseOrder.Items.Item.UnitPrice"
            && m.target_path == "OrderDB.Item.UnitPrice"));
}

#[test]
fn parsed_types_align_across_formats() {
    let sdl = parse_sdl(SDL).unwrap();
    let xml = schema_from_xml(XML).unwrap();
    let ddl = parse_ddl("OrderDB", SQL).unwrap();
    // OrderDate is a date everywhere (XML infers it from the value)
    for (schema, path) in [
        (&sdl, "PurchaseOrder.Header.OrderDate"),
        (&xml, "PurchaseOrder.Header.OrderDate"),
        (&ddl, "OrderDB.Header.OrderDate"),
    ] {
        let id = schema.find_path(path).expect(path);
        assert_eq!(schema.element(id).data_type, DataType::Date, "{path}");
    }
    // Quantity: decimal in SDL/DDL; the XML instance value 2.5 infers it
    let id = xml.find_path("PurchaseOrder.Items.Item.Quantity").unwrap();
    assert_eq!(xml.element(id).data_type, DataType::Decimal);
}
