//! Integration: the three importers produce schemas that flow through
//! the full matcher, equivalent schemas expressed in different formats
//! match each other, and the SDL writer is a faithful inverse of the
//! SDL parser (`parse → write → parse` proptests at the bottom).

use cupid::io::{parse_ddl, parse_sdl, schema_from_xml, write_sdl};
use cupid::prelude::*;
use proptest::prelude::*;

const SDL: &str = "\
schema PurchaseOrder
  element Header
    attr OrderNumber : string
    attr OrderDate : date
  element Items
    attr ItemCount : int
    element Item
      attr ItemNumber : int
      attr Quantity : decimal
      attr UnitPrice : money
";

const XML: &str = r#"
<PurchaseOrder>
  <Header OrderNumber="A17" OrderDate="2001-08-27"/>
  <Items ItemCount="1">
    <Item ItemNumber="1" Quantity="2.5" UnitPrice="9.95"/>
  </Items>
</PurchaseOrder>
"#;

const SQL: &str = "\
CREATE TABLE Header (
    OrderNumber VARCHAR(20) PRIMARY KEY,
    OrderDate DATE NOT NULL
);
CREATE TABLE Item (
    ItemNumber INTEGER PRIMARY KEY,
    Quantity NUMERIC(10,2) NOT NULL,
    UnitPrice MONEY NOT NULL
);
";

#[test]
fn sdl_and_xml_schemas_match_each_other() {
    let s1 = parse_sdl(SDL).unwrap();
    let s2 = schema_from_xml(XML).unwrap();
    let out = Cupid::new(Thesaurus::with_default_stopwords()).match_schemas(&s1, &s2).unwrap();
    for leaf in ["OrderNumber", "OrderDate", "ItemCount"] {
        assert!(
            out.leaf_mappings
                .iter()
                .any(|m| m.source_path.ends_with(leaf) && m.target_path.ends_with(leaf)),
            "missing {leaf}: {:#?}",
            out.leaf_mappings
        );
    }
    assert!(out.has_nonleaf_mapping("PurchaseOrder.Items.Item", "PurchaseOrder.Items.Item"));
}

#[test]
fn sdl_and_ddl_schemas_match_each_other() {
    let s1 = parse_sdl(SDL).unwrap();
    let s2 = parse_ddl("OrderDB", SQL).unwrap();
    let out = Cupid::new(Thesaurus::with_default_stopwords()).match_schemas(&s1, &s2).unwrap();
    assert!(out.leaf_mappings.iter().any(|m| m.source_path == "PurchaseOrder.Header.OrderDate"
        && m.target_path == "OrderDB.Header.OrderDate"));
    assert!(out
        .leaf_mappings
        .iter()
        .any(|m| m.source_path == "PurchaseOrder.Items.Item.UnitPrice"
            && m.target_path == "OrderDB.Item.UnitPrice"));
}

#[test]
fn parsed_types_align_across_formats() {
    let sdl = parse_sdl(SDL).unwrap();
    let xml = schema_from_xml(XML).unwrap();
    let ddl = parse_ddl("OrderDB", SQL).unwrap();
    // OrderDate is a date everywhere (XML infers it from the value)
    for (schema, path) in [
        (&sdl, "PurchaseOrder.Header.OrderDate"),
        (&xml, "PurchaseOrder.Header.OrderDate"),
        (&ddl, "OrderDB.Header.OrderDate"),
    ] {
        let id = schema.find_path(path).expect(path);
        assert_eq!(schema.element(id).data_type, DataType::Date, "{path}");
    }
    // Quantity: decimal in SDL/DDL; the XML instance value 2.5 infers it
    let id = xml.find_path("PurchaseOrder.Items.Item.Quantity").unwrap();
    assert_eq!(xml.element(id).data_type, DataType::Decimal);
}

// ---- SDL writer round-trip proptests (DESIGN.md §8) --------------------
//
// `write_sdl` is how the persistent repository exports schemas, so it
// must be the exact inverse of `parse_sdl` on everything SDL can
// express. The generator below builds randomized SDL-expressible
// schemas *depth-first* (document order = arena order, the invariant
// that makes content-hash comparison meaningful), covering nested
// structured elements, atomic elements and attributes with every
// writable data type and flag combination, shared type definitions and
// `uses` references.

/// Safe name pool (no whitespace/`#`/`:`, parse keywords included on
/// purpose — names are positional in the grammar).
const NAMES: &[&str] = &[
    "Order", "Item", "Qty", "Address", "Street", "City", "Code", "uses", "Total", "Line2", "Group",
    "Note", "élan", "x",
];

const TYPES: &[DataType] = &[
    DataType::Int,
    DataType::String,
    DataType::Decimal,
    DataType::Date,
    DataType::Bool,
    DataType::Money,
    DataType::Unknown,
    DataType::Identifier,
];

/// Decode one op integer into a construction step. Ops are applied
/// depth-first against a stack of open structured elements.
fn apply_op(b: &mut SchemaBuilder, stack: &mut Vec<ElementId>, typedefs: &[ElementId], op: usize) {
    let name = NAMES[(op / 7) % NAMES.len()];
    let dtype = TYPES[(op / 3) % TYPES.len()];
    let parent = *stack.last().expect("root always open");
    match op % 7 {
        // open a nested structured element (bounded depth)
        0 if stack.len() < 5 => {
            let e = b.structured(parent, name, ElementKind::XmlElement);
            if op % 11 == 0 {
                b.set_optional(e, true);
            }
            if !typedefs.is_empty() && op % 5 == 0 {
                b.derive_from(e, typedefs[op % typedefs.len()]);
            }
            stack.push(e);
        }
        // close the innermost structured element
        1 => {
            if stack.len() > 1 {
                stack.pop();
            }
        }
        // atomic attribute
        2 | 3 => {
            let a = b.atomic(parent, name, ElementKind::XmlAttribute, dtype);
            if op % 2 == 0 {
                b.set_optional(a, true);
            }
            if op % 13 == 0 {
                b.set_key(a, true);
            }
        }
        // atomic element (the grammar extension)
        4 | 5 => {
            let e = b.atomic(parent, name, ElementKind::XmlElement, dtype);
            if op % 3 == 0 {
                b.set_optional(e, true);
            }
        }
        // structured element with a uses reference and no children
        _ => {
            let e = b.structured(parent, name, ElementKind::XmlElement);
            if let Some(&t) = typedefs.get(op % (typedefs.len().max(1))) {
                b.derive_from(e, t);
            }
        }
    }
}

/// Build a randomized SDL-expressible schema: `n_types` shared type
/// definitions (each with one attribute), then `ops`-driven depth-first
/// construction.
fn sdl_schema(n_types: usize, ops: &[usize]) -> Schema {
    let mut b = SchemaBuilder::new("Gen");
    let mut typedefs = Vec::new();
    for t in 0..n_types {
        let td = b.type_def(format!("Type{t}"));
        b.atomic(td, NAMES[t % NAMES.len()], ElementKind::XmlAttribute, TYPES[t % TYPES.len()]);
        typedefs.push(td);
    }
    let mut stack = vec![b.root()];
    for &op in ops {
        apply_op(&mut b, &mut stack, &typedefs, op);
    }
    b.build().expect("generated schema is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// parse(write(s)) reproduces s exactly — content hash included —
    /// and write is a fixed point from then on.
    #[test]
    fn sdl_write_parse_is_identity(
        n_types in 0usize..4,
        ops in proptest::collection::vec(0usize..1000, 0..40),
    ) {
        let schema = sdl_schema(n_types, &ops);
        let text = write_sdl(&schema).expect("generated schemas are SDL-expressible");
        let parsed = parse_sdl(&text)
            .unwrap_or_else(|e| panic!("writer output must parse: {e}\n--- document ---\n{text}"));
        prop_assert_eq!(
            parsed.content_hash(),
            schema.content_hash(),
            "parse ∘ write must be the identity\n--- document ---\n{}",
            text
        );
        let again = write_sdl(&parsed).expect("reparsed schema writes");
        prop_assert_eq!(&again, &text, "write must be a fixed point");
    }

    /// The round-tripped schema is not just hash-equal but behaves
    /// identically in a match: same mappings against a fixed probe.
    #[test]
    fn sdl_round_trip_matches_identically(
        n_types in 0usize..3,
        ops in proptest::collection::vec(0usize..1000, 1..24),
    ) {
        let schema = sdl_schema(n_types, &ops);
        let text = write_sdl(&schema).expect("expressible");
        let parsed = parse_sdl(&text).expect("writer output parses");
        let probe = sdl_schema(1, &[0, 2, 4, 1, 5, 3]);
        let cupid = Cupid::new(Thesaurus::with_default_stopwords());
        let a = cupid.match_schemas(&schema, &probe).expect("matches");
        let b = cupid.match_schemas(&parsed, &probe).expect("matches");
        prop_assert_eq!(a.leaf_mappings, b.leaf_mappings);
        prop_assert_eq!(a.nonleaf_mappings, b.nonleaf_mappings);
    }
}
