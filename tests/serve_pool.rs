//! Checkout-storm suite for [`ServePool`] plus property tests for
//! [`RetryPolicy`] (DESIGN.md §12.3).
//!
//! The pool's contract under pressure: the cap is never overshot no
//! matter how many threads storm `checkout()`, a daemon outage
//! mid-storm fails checkouts loudly without leaking cap slots or
//! deadlocking waiters, and poisoned connections racing healthy
//! checkins are evicted exactly once. The retry policy's contract is
//! determinism: equal policies yield bit-equal backoff schedules, every
//! delay bounded by its floor and ceiling.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::time::Duration;

use cupid::core::CupidConfig;
use cupid::lexical::Thesaurus;
use cupid::prelude::{ServeClient, ServeOptions, Server, ShutdownHandle};
use cupid::serve::{ClientBuilder, RetryPolicy, ServeError, ServePool};
use proptest::prelude::*;

/// Drains the daemon if the test body panics. The daemon runs on a
/// scoped thread; without the guard, a failed assertion in the body
/// would leave `thread::scope` joining a daemon that never hears a
/// shutdown — the suite hangs instead of failing. Construct it
/// *inside* the scope closure (guards outside drop only after the
/// join).
struct DrainOnPanic(ShutdownHandle);

impl Drop for DrainOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.drain();
        }
    }
}

/// A unique, self-cleaning snapshot location per test.
struct TempSnap(PathBuf);

impl TempSnap {
    fn new() -> Self {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cupid-pool-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempSnap(dir.join("cupid.repo"))
    }
}

impl Drop for TempSnap {
    fn drop(&mut self) {
        if let Some(dir) = self.0.parent() {
            std::fs::remove_dir_all(dir).ok();
        }
    }
}

fn thesaurus() -> Thesaurus {
    Thesaurus::parse("abbrev Qty = quantity\n").unwrap()
}

const SDL_A: &str = "schema PO\n  element Item\n    attr Qty : int\n";
const SDL_B: &str = "schema Order\n  element Item\n    attr Quantity : int\n";

/// Far more waiters than the cap: every thread must eventually get a
/// connection, the live count must never overshoot the cap, and the
/// pool must end fully parked.
#[test]
fn checkout_storm_never_overshoots_the_cap() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();
    let server =
        Server::bind("127.0.0.1:0", &tmp.0, &config, &th, ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let _guard = DrainOnPanic(handle);
        let mut setup = ServeClient::connect(addr).unwrap();
        setup.add_sdl(SDL_A).unwrap();
        setup.add_sdl(SDL_B).unwrap();

        let pool = ServePool::new(addr.to_string(), 2);
        let served = AtomicUsize::new(0);
        let overshoot = AtomicUsize::new(0);
        std::thread::scope(|inner| {
            for _ in 0..12 {
                inner.spawn(|| {
                    for _ in 0..5 {
                        let mut client = pool.checkout().unwrap();
                        if pool.live() > 2 {
                            overshoot.fetch_add(1, Ordering::Relaxed);
                        }
                        client.match_pair("PO", "Order").unwrap();
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(served.load(Ordering::Relaxed), 60, "every waiter eventually served");
        assert_eq!(overshoot.load(Ordering::Relaxed), 0, "cap overshot under storm");
        assert!(pool.live() <= 2);
        assert_eq!(pool.idle(), pool.live(), "everything parked after the storm");
        setup.shutdown().unwrap();
    });
}

/// The daemon goes down mid-storm: checked-out clients fail typed and
/// poisoned, later checkouts fail to dial loudly — and neither path
/// leaks a cap slot or wedges the waiters.
#[test]
fn daemon_outage_mid_storm_leaks_no_slots() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();
    let server =
        Server::bind("127.0.0.1:0", &tmp.0, &config, &th, ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let _guard = DrainOnPanic(handle);
        let mut setup = ServeClient::connect(addr).unwrap();
        setup.add_sdl(SDL_A).unwrap();
        setup.add_sdl(SDL_B).unwrap();

        let pool = ServePool::with_builder(
            addr.to_string(),
            2,
            ClientBuilder::new()
                .connect_timeout(Duration::from_secs(2))
                .read_timeout(Duration::from_millis(500)),
        );
        // Two clients checked out across the outage.
        let mut held_a = pool.checkout().unwrap();
        let mut held_b = pool.checkout().unwrap();
        held_a.match_pair("PO", "Order").unwrap();
        setup.shutdown().unwrap();
        // Give the drain a moment to close the held connections.
        std::thread::sleep(Duration::from_millis(100));

        // In-flight exchanges fail loudly and poison the connections.
        assert!(held_a.match_pair("PO", "Order").is_err());
        assert!(held_b.match_pair("PO", "Order").is_err());
        assert!(held_a.is_poisoned() && held_b.is_poisoned());
        drop(held_a);
        drop(held_b);
        assert_eq!(pool.live(), 0, "poisoned connections evicted, slots freed");

        // With the daemon gone, a storm of checkouts fails loudly —
        // every thread gets an error, nobody deadlocks, and no failed
        // dial leaks a slot.
        std::thread::scope(|inner| {
            for _ in 0..6 {
                inner.spawn(|| {
                    for _ in 0..3 {
                        match pool.checkout() {
                            Err(ServeError::Io { context, .. }) => assert_eq!(context, "connect"),
                            Ok(_) => panic!("checkout succeeded against a dead daemon"),
                            Err(other) => panic!("unexpected checkout error: {other:?}"),
                        }
                    }
                });
            }
        });
        assert_eq!(pool.live(), 0, "failed dials must release their reserved slots");
    });
}

/// Poisoned evictions racing healthy checkins: half the workers poison
/// their connection each round (the daemon cuts them via the frame
/// deadline), half check healthy ones back in. The cap must hold and
/// every eviction must free its slot.
#[test]
fn poisoned_eviction_races_checkin_without_leaking() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();
    let server =
        Server::bind("127.0.0.1:0", &tmp.0, &config, &th, ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().unwrap());
        let _guard = DrainOnPanic(handle);
        let mut setup = ServeClient::connect(addr).unwrap();
        setup.add_sdl(SDL_A).unwrap();
        setup.add_sdl(SDL_B).unwrap();

        // Tight read timeout + a listener that never answers makes
        // poisoning cheap: we alternate healthy daemon exchanges with
        // deliberately timed-out ones against this black hole.
        let black_hole = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let hole_addr = black_hole.local_addr().unwrap();
        let healthy = ServePool::new(addr.to_string(), 3);
        let doomed = ServePool::with_builder(
            hole_addr.to_string(),
            3,
            ClientBuilder::new().read_timeout(Duration::from_millis(30)),
        );
        std::thread::scope(|inner| {
            for worker in 0..8 {
                let healthy = &healthy;
                let doomed = &doomed;
                inner.spawn(move || {
                    for _ in 0..4 {
                        if worker % 2 == 0 {
                            let mut client = healthy.checkout().unwrap();
                            client.match_pair("PO", "Order").unwrap();
                        } else {
                            let mut client = doomed.checkout().unwrap();
                            assert!(matches!(
                                client.stats().unwrap_err(),
                                ServeError::DeadlineExceeded
                            ));
                            assert!(client.is_poisoned());
                        }
                        // Drop = checkin (healthy) or eviction (poisoned),
                        // racing the other workers' checkouts.
                    }
                });
            }
        });
        assert_eq!(doomed.live(), 0, "every poisoned connection evicted");
        assert!(healthy.live() <= 3 && healthy.idle() == healthy.live());
        // The healthy pool still works after the storm.
        healthy.checkout().unwrap().match_pair("PO", "Order").unwrap();
        setup.shutdown().unwrap();
        drop(black_hole);
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Equal policies produce bit-equal schedules; every delay sits in
    /// `[ceiling/2, ceiling)` with the documented doubling-then-capped
    /// ceiling; the budget bounds the schedule length exactly.
    #[test]
    fn retry_schedules_are_deterministic_and_bounded(
        seed in 0u64..u64::MAX,
        base_ms in 1u64..200,
        cap_ms in 1u64..2_000,
        budget in 0u32..10,
    ) {
        let policy = RetryPolicy::new(seed)
            .base(Duration::from_millis(base_ms))
            .cap(Duration::from_millis(cap_ms))
            .budget(budget);
        let again = RetryPolicy::new(seed)
            .base(Duration::from_millis(base_ms))
            .cap(Duration::from_millis(cap_ms))
            .budget(budget);
        prop_assert_eq!(policy.delays(), again.delays(), "same policy, same schedule");
        prop_assert_eq!(policy.delays().len(), budget as usize);
        for (i, delay) in policy.delays().into_iter().enumerate() {
            let ceiling = Duration::from_millis(base_ms)
                .saturating_mul(1u32 << i.min(31))
                .min(Duration::from_millis(cap_ms));
            prop_assert!(delay < ceiling, "delay {i} {delay:?} ≥ ceiling {ceiling:?}");
            prop_assert!(delay >= ceiling / 2, "delay {i} {delay:?} under floor");
        }
        // A different seed decorrelates some delay (unless there is no
        // room to differ: sub-millisecond spans can collide).
        let other = RetryPolicy::new(seed ^ 0x9E37_79B9)
            .base(Duration::from_millis(base_ms))
            .cap(Duration::from_millis(cap_ms))
            .budget(budget);
        if budget > 0 && base_ms >= 8 {
            let differs = policy.delays() != other.delays();
            prop_assert!(differs || policy.delays().is_empty(), "seeds failed to decorrelate");
        }
    }
}
