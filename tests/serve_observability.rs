//! Integration suite for the daemon's observability surface
//! (DESIGN.md §13): per-stage latency attribution, the slow-log ring,
//! the `/metrics` exposition sharing the frame port, and the tracing
//! kill switch.
//!
//! The load-bearing contract is *accounting*: the per-(kind, stage)
//! histograms must explain where the daemon's measured request wall
//! time actually goes — the suite drives a mixed workload and asserts
//! the stage sums reconstruct ≥95% of every kind's wall-histogram
//! total, which is what makes a "client p50 is 34 ms, daemon p50 is
//! 0.13 ms" gap diagnosable instead of mysterious.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use cupid::core::CupidConfig;
use cupid::lexical::Thesaurus;
use cupid::prelude::{ServeClient, ServeOptions, Server, ShutdownHandle};
use cupid::serve::{BatchItem, StatsReport, STAGE_NAMES};

/// Drains the daemon if the test body panics (see `serve_daemon.rs`).
struct DrainOnPanic(ShutdownHandle);

impl Drop for DrainOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.drain();
        }
    }
}

/// A unique, self-cleaning snapshot location per test.
struct TempSnap(PathBuf);

impl TempSnap {
    fn new() -> Self {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cupid-obs-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempSnap(dir.join("cupid.repo"))
    }
}

impl Drop for TempSnap {
    fn drop(&mut self) {
        if let Some(dir) = self.0.parent() {
            std::fs::remove_dir_all(dir).ok();
        }
    }
}

const CORPUS_SDL: &[&str] = &[
    "schema PO\n  element Item\n    attr Qty : int\n    attr Invoice : string\n",
    "schema Order\n  element Item\n    attr Quantity : int\n    attr Bill : string\n",
    "schema Sales\n  element Order\n    attr Quantity : int\n    attr OrderDate : date\n",
];

fn thesaurus() -> Thesaurus {
    Thesaurus::parse("abbrev Qty = quantity\nsyn invoice bill 1.0\n").unwrap()
}

/// Drive a mixed workload (mutations, uncached + cached matches, a
/// batch, top-k, saves) against a daemon with `options`, then return
/// the final stats snapshot taken *before* shutdown.
fn run_workload(options: ServeOptions) -> StatsReport {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();
    let server = Server::bind("127.0.0.1:0", &tmp.0, &config, &th, options).unwrap();
    let addr = server.local_addr();
    let mut report = None;
    std::thread::scope(|scope| {
        let guard = DrainOnPanic(server.shutdown_handle());
        scope.spawn(move || server.run().unwrap());
        let mut client = ServeClient::connect(addr).unwrap();
        for sdl in CORPUS_SDL {
            client.add_sdl(sdl).unwrap();
        }
        // Uncached, then cached, matches; a batch; discovery; a save.
        client.match_pair("PO", "Order").unwrap();
        client.match_pair("PO", "Order").unwrap();
        client
            .batch(vec![
                BatchItem::MatchPair { source: "PO".into(), target: "Sales".into() },
                BatchItem::TopK { k: 3 },
                BatchItem::Stats,
            ])
            .unwrap();
        client.top_k(2).unwrap();
        client.save().unwrap();
        client.stats().unwrap();
        report = Some(client.stats().unwrap());
        client.shutdown().unwrap();
        drop(guard);
    });
    report.unwrap()
}

/// The tentpole acceptance bar: for every request kind the daemon
/// served, the per-stage attribution sums reconstruct at least 95% of
/// that kind's wall-histogram total (and never exceed it by more than
/// clock-read noise).
#[test]
fn stage_sums_account_for_at_least_95_percent_of_wall_time() {
    let report = run_workload(ServeOptions::default());
    assert!(!report.stage_latencies.is_empty(), "tracing is on by default");
    let mut checked = 0;
    for wall in report.latencies.iter().filter(|l| l.count > 0) {
        let attributed: u64 = report
            .stage_latencies
            .iter()
            .filter(|s| s.kind.split('/').next() == Some(wall.kind.as_str()))
            .map(|s| s.total_ns)
            .sum();
        // The *last* stats request is still mid-flight when its own
        // report is snapshotted, so its stage fold lags its wall record
        // by one request; every other kind must tile tightly.
        if wall.kind == "stats" {
            continue;
        }
        assert!(
            attributed as f64 >= 0.95 * wall.total_ns as f64,
            "kind `{}`: stages explain {attributed} ns of {} ns wall (< 95%)",
            wall.kind,
            wall.total_ns
        );
        checked += 1;
    }
    assert!(checked >= 4, "workload must exercise several request kinds, saw {checked}");
    // Stage labels are well-formed: "<kind>/<stage>" with known stages.
    for s in &report.stage_latencies {
        let (_, stage) = s.kind.split_once('/').expect("label is kind/stage");
        assert!(STAGE_NAMES.contains(&stage), "unknown stage `{stage}`");
    }
}

/// The slow log retains the slowest requests (bounded, sorted, stage
/// breakdowns attached) and the stats counters agree with it.
#[test]
fn slow_log_retains_bounded_sorted_traces() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();
    let options = ServeOptions {
        // Threshold zero: every request qualifies, so the ring must
        // demonstrably bound and keep the slowest.
        slow_threshold: Duration::from_millis(0),
        slow_log_capacity: 4,
        ..ServeOptions::default()
    };
    let server = Server::bind("127.0.0.1:0", &tmp.0, &config, &th, options).unwrap();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        let guard = DrainOnPanic(server.shutdown_handle());
        scope.spawn(move || server.run().unwrap());
        let mut client = ServeClient::connect(addr).unwrap();
        for sdl in CORPUS_SDL {
            client.add_sdl(sdl).unwrap();
        }
        for _ in 0..5 {
            client.match_pair("PO", "Order").unwrap();
        }
        let entries = client.slow_log().unwrap();
        assert!(!entries.is_empty(), "threshold 0 must capture requests");
        assert!(entries.len() <= 4, "ring respects its capacity, got {}", entries.len());
        assert!(
            entries.windows(2).all(|w| w[0].total_ns >= w[1].total_ns),
            "entries are sorted slowest first"
        );
        for e in &entries {
            assert_eq!(e.stage_ns.len(), STAGE_NAMES.len());
            let attributed: u64 = e.stage_ns.iter().sum();
            assert!(attributed > 0, "slow entries carry stage breakdowns");
            assert!(
                attributed <= e.total_ns + e.total_ns / 10,
                "stages cannot exceed the request wall by more than noise: \
                 {attributed} vs {}",
                e.total_ns
            );
        }
        let stats = client.stats().unwrap();
        assert!(stats.slow_requests >= 8, "every request cleared the zero threshold");
        assert_eq!(stats.slow_log_entries, 4, "the ring is full by now");
        client.shutdown().unwrap();
        drop(guard);
    });
}

/// `GET /metrics` on the daemon's own port answers valid Prometheus
/// text covering the counters and both histogram families — and the
/// frame protocol keeps working on the next connection.
#[test]
fn metrics_endpoint_shares_the_frame_port() {
    let tmp = TempSnap::new();
    let config = CupidConfig::default();
    let th = thesaurus();
    let server =
        Server::bind("127.0.0.1:0", &tmp.0, &config, &th, ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        let guard = DrainOnPanic(server.shutdown_handle());
        scope.spawn(move || server.run().unwrap());
        let mut client = ServeClient::connect(addr).unwrap();
        client.add_sdl(CORPUS_SDL[0]).unwrap();
        client.add_sdl(CORPUS_SDL[1]).unwrap();
        client.match_pair("PO", "Order").unwrap();

        let scrape = |path: &str| -> String {
            let mut http = std::net::TcpStream::connect(addr).unwrap();
            http.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            write!(http, "GET {path} HTTP/1.1\r\nHost: cupid\r\nConnection: close\r\n\r\n")
                .unwrap();
            let mut body = String::new();
            http.read_to_string(&mut body).unwrap();
            body
        };
        let text = scrape("/metrics");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "got: {}", &text[..60.min(text.len())]);
        assert!(text.contains("text/plain; version=0.0.4"));
        for family in [
            "cupid_requests_total",
            "cupid_schemas",
            "cupid_pairs_executed_total",
            "cupid_request_duration_seconds_bucket",
            "cupid_stage_duration_seconds_bucket",
        ] {
            assert!(text.contains(family), "missing family {family} in:\n{text}");
        }
        // Sample lines parse as `name{labels} value`.
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        for line in body.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("name value");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in: {line}");
        }
        assert!(scrape("/nope").starts_with("HTTP/1.1 404"));

        // The frame protocol still works, and the scrapes were counted.
        let mut after = ServeClient::connect(addr).unwrap();
        let stats = after.stats().unwrap();
        assert_eq!(stats.metrics_scrapes, 1, "only /metrics counts as a scrape");
        after.shutdown().unwrap();
        drop(guard);
    });
}

/// `tracing: false` empties the whole attribution surface without
/// affecting results: no stage histograms, no slow-log entries, no
/// slow-request counting — but wall histograms still record.
#[test]
fn tracing_off_disables_attribution_but_not_service() {
    let options = ServeOptions {
        tracing: false,
        slow_threshold: Duration::from_millis(0),
        ..ServeOptions::default()
    };
    let report = run_workload(options);
    assert!(report.stage_latencies.is_empty(), "no stage histograms with tracing off");
    assert_eq!(report.slow_requests, 0);
    assert_eq!(report.slow_log_entries, 0);
    assert!(
        report.latencies.iter().any(|l| l.count > 0),
        "per-kind wall histograms keep recording"
    );
    assert!(report.requests_served > 0);
}
