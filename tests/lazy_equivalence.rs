//! Property test: lazy expansion (§8.4) is result-equivalent to eager
//! expansion on randomized shared-type schemas — the paper's claim
//! *"the computed similarity values will remain the same as in the case
//! when the schema is expanded a priori"*, verified bit-for-bit.

use cupid::core::{lazy, linguistic, treematch, CupidConfig};
use cupid::prelude::*;
use proptest::prelude::*;

/// Build a source schema whose shared type `SharedT` has `n_fields`
/// members and is referenced from `n_contexts` contexts, plus some
/// non-shared structure.
fn shared_type_schema(n_fields: usize, n_contexts: usize, extra: usize) -> Schema {
    let mut b = SchemaBuilder::new("Source");
    let ty = b.type_def("SharedT");
    for i in 0..n_fields {
        b.atomic(ty, format!("Field{i}"), ElementKind::XmlElement, DataType::String);
    }
    for c in 0..n_contexts {
        let ctx = b.structured(b.root(), format!("Context{c}"), ElementKind::XmlElement);
        b.derive_from(ctx, ty);
    }
    let other = b.structured(b.root(), "Other", ElementKind::XmlElement);
    for i in 0..extra {
        b.atomic(other, format!("Extra{i}"), ElementKind::XmlElement, DataType::Int);
    }
    b.build().expect("generated schema is valid")
}

fn flat_target(n_fields: usize, n_groups: usize) -> Schema {
    let mut b = SchemaBuilder::new("Target");
    for g in 0..n_groups {
        let grp = b.structured(b.root(), format!("Group{g}"), ElementKind::XmlElement);
        for i in 0..n_fields {
            b.atomic(grp, format!("Field{i}"), ElementKind::XmlElement, DataType::String);
        }
    }
    b.build().expect("generated schema is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lazy_matches_eager_bit_for_bit(
        n_fields in 1usize..6,
        n_contexts in 2usize..5,
        extra in 0usize..4,
        n_groups in 1usize..4,
        c_inc in 1.0f64..1.6,
        th_accept in 0.35f64..0.6,
    ) {
        let s1 = shared_type_schema(n_fields, n_contexts, extra);
        let s2 = flat_target(n_fields, n_groups);
        let mut cfg = CupidConfig::default();
        cfg.c_inc = c_inc;
        cfg.th_accept = th_accept;
        cfg.th_high = cfg.th_high.max(th_accept);
        prop_assume!(cfg.validate().is_ok());

        let t1 = expand(&s1, &ExpandOptions::none()).unwrap();
        let t2 = expand(&s2, &ExpandOptions::none()).unwrap();
        let thesaurus = Thesaurus::with_default_stopwords();
        let la = linguistic::analyze(&s1, &s2, &thesaurus, &cfg);

        let eager = treematch::tree_match(&t1, &t2, &la.lsim, &cfg);
        let lazy_res = lazy::tree_match_lazy(&t1, &t2, &la.lsim, &cfg);

        prop_assert_eq!(eager.leaf_ssim.max_abs_diff(&lazy_res.leaf_ssim), 0.0);
        prop_assert_eq!(eager.ssim.max_abs_diff(&lazy_res.ssim), 0.0);
        prop_assert_eq!(eager.wsim.max_abs_diff(&lazy_res.wsim), 0.0);
        // with ≥2 contexts there is always duplicated structure to skip
        prop_assert!(lazy_res.stats.lazy_copied_pairs > 0);
    }
}

#[test]
fn lazy_skips_proportionally_to_context_count() {
    // More shared contexts → more skipped work.
    let s2 = flat_target(4, 2);
    let t2 = expand(&s2, &ExpandOptions::none()).unwrap();
    let cfg = CupidConfig::default();
    let thesaurus = Thesaurus::with_default_stopwords();
    let mut last = 0usize;
    for contexts in [2usize, 4, 6] {
        let s1 = shared_type_schema(4, contexts, 2);
        let t1 = expand(&s1, &ExpandOptions::none()).unwrap();
        let la = linguistic::analyze(&s1, &s2, &thesaurus, &cfg);
        let lazy_res = lazy::tree_match_lazy(&t1, &t2, &la.lsim, &cfg);
        assert!(
            lazy_res.stats.lazy_copied_pairs > last,
            "contexts {contexts}: {} skipped (previous {last})",
            lazy_res.stats.lazy_copied_pairs
        );
        last = lazy_res.stats.lazy_copied_pairs;
    }
}
