//! Equivalence suite for the interned linguistic engine.
//!
//! The interned path (`analyze`: token table + triangular similarity
//! memo) must be a pure optimization of the naive reference path
//! (`analyze_naive`): identical `lsim` tables *bit for bit*, identical
//! pruning counters, and therefore identical mappings — across
//! randomized schemas (the synthetic perturbation generator) and
//! randomized thesauri.

use cupid::core::linguistic::{analyze, analyze_naive};
use cupid::core::mapping::{leaf_mappings, Cardinality};
use cupid::core::treematch::tree_match;
use cupid::core::CupidConfig;
use cupid::corpus::synthetic::{generate, SyntheticConfig};
use cupid::lexical::{Thesaurus, ThesaurusBuilder};
use cupid::model::{expand, ExpandOptions, Schema};
use proptest::prelude::*;

/// Words that actually occur in the synthetic generator's vocabulary,
/// so randomized thesaurus entries bite instead of being dead weight.
const POOL: &[&str] = &[
    "order",
    "purchase",
    "customer",
    "client",
    "price",
    "cost",
    "quantity",
    "amount",
    "street",
    "road",
    "phone",
    "telephone",
    "bill",
    "invoice",
    "ship",
    "deliver",
    "item",
    "article",
    "vendor",
    "supplier",
    "payment",
    "region",
    "category",
    "product",
    "account",
    "branch",
    "id",
    "name",
    "code",
    "number",
    "date",
    "total",
    "status",
    "type",
    "flag",
    "line",
];

/// A thesaurus assembled from random picks over the generator's word
/// pool: synonyms and hypernyms with random coefficients, an
/// abbreviation, a concept family and an extra stop word — every §5.1
/// resource the engines consume.
fn random_thesaurus(picks: &[usize], coeffs: &[f64]) -> Thesaurus {
    let word = |i: usize| POOL[i % POOL.len()];
    let mut b = ThesaurusBuilder::new()
        .abbreviation(word(picks[0]), &[word(picks[1]), word(picks[2])])
        .concept(word(picks[3]), "money")
        .concept(word(picks[4]), "money")
        .stopword(word(picks[5]));
    for (k, w) in picks[6..].windows(2).enumerate() {
        let c = coeffs[k % coeffs.len()];
        b = if k % 2 == 0 {
            b.synonym(word(w[0]), word(w[1]), c)
        } else {
            b.hypernym(word(w[0]), word(w[1]), c)
        };
    }
    b.build().expect("coefficients are in range")
}

/// Assert the two engines agree on everything observable.
fn assert_equivalent(s1: &Schema, s2: &Schema, thesaurus: &Thesaurus, cfg: &CupidConfig) {
    let fast = analyze(s1, s2, thesaurus, cfg);
    let naive = analyze_naive(s1, s2, thesaurus, cfg);
    assert_eq!(
        fast.lsim.matrix().max_abs_diff(naive.lsim.matrix()),
        0.0,
        "lsim must be bit-identical"
    );
    assert_eq!(fast.compared_pairs, naive.compared_pairs, "compared_pairs diverged");
    assert_eq!(
        fast.compatible_category_pairs, naive.compatible_category_pairs,
        "compatible_category_pairs diverged"
    );
    assert_eq!(fast.total_pairs, naive.total_pairs);
    assert_eq!(fast.names1, naive.names1, "normalization must not differ");
    assert_eq!(fast.names2, naive.names2);

    // Identical lsim in, identical mappings out: run the (deterministic)
    // structural phase on both tables and compare the generated leaf
    // mappings pairwise.
    let t1 = expand(s1, &ExpandOptions::none()).expect("expand");
    let t2 = expand(s2, &ExpandOptions::none()).expect("expand");
    let res_fast = tree_match(&t1, &t2, &fast.lsim, cfg);
    let res_naive = tree_match(&t1, &t2, &naive.lsim, cfg);
    assert_eq!(res_fast.wsim.max_abs_diff(&res_naive.wsim), 0.0, "wsim must be bit-identical");
    let map_fast = leaf_mappings(&t1, &t2, &res_fast, &fast.lsim, cfg, Cardinality::OneToN);
    let map_naive = leaf_mappings(&t1, &t2, &res_naive, &naive.lsim, cfg, Cardinality::OneToN);
    let pairs = |m: &[cupid::core::MappingElement]| -> Vec<(String, String)> {
        m.iter().map(|e| (e.source_path.clone(), e.target_path.clone())).collect()
    };
    assert_eq!(pairs(&map_fast), pairs(&map_naive), "mappings diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized schema pairs with the generator's own thesaurus (the
    /// one whose entries the perturbations are drawn from).
    #[test]
    fn interned_equals_naive_on_synthetic_pairs(seed in 0u64..10_000, leaves in 4usize..40) {
        let pair = generate(&SyntheticConfig::sized(leaves, seed));
        assert_equivalent(&pair.source, &pair.target, &pair.thesaurus, &CupidConfig::default());
    }

    /// Randomized thesauri over the same vocabulary: synonym/hypernym
    /// coefficients, abbreviations, concepts and stop words all vary.
    #[test]
    fn interned_equals_naive_on_random_thesauri(
        seed in 0u64..10_000,
        leaves in 4usize..24,
        picks in proptest::collection::vec(0usize..64, 10..16),
        coeffs in proptest::collection::vec(0.05f64..1.0, 3..6),
    ) {
        let pair = generate(&SyntheticConfig::sized(leaves, seed));
        let thesaurus = random_thesaurus(&picks, &coeffs);
        assert_equivalent(&pair.source, &pair.target, &thesaurus, &CupidConfig::default());
    }

    /// An empty thesaurus forces every word pair down the affix
    /// fallback — the path where text-identity of interned ids matters
    /// most.
    #[test]
    fn interned_equals_naive_without_thesaurus(seed in 0u64..10_000, leaves in 4usize..24) {
        let pair = generate(&SyntheticConfig::sized(leaves, seed));
        assert_equivalent(&pair.source, &pair.target, &Thesaurus::empty(), &CupidConfig::default());
    }
}
