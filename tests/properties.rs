//! Property-based tests of the core invariants, driven by the synthetic
//! schema generator and randomized inputs.

use cupid::core::linguistic::{ns_elements, ns_token_sets};
use cupid::core::{Cupid, CupidConfig, TokenTypeWeights};
use cupid::corpus::synthetic::{generate, SyntheticConfig};
use cupid::lexical::strsim::{affix_similarity, AffixConfig};
use cupid::lexical::{stem, Normalizer, Thesaurus, Token, TokenType, Tokenizer};
use proptest::prelude::*;

fn ident_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z][A-Za-z0-9_]{0,14}").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tokenizer_never_loses_alphanumerics(name in ident_strategy()) {
        let toks = Tokenizer::default().tokenize(&name);
        let reassembled: String = toks.iter().map(|t| t.text.as_str()).collect();
        let expected: String = name.chars().filter(|c| c.is_alphanumeric()).collect();
        prop_assert_eq!(reassembled, expected);
    }

    #[test]
    fn stemming_is_idempotent(word in "[a-z]{1,12}") {
        let once = stem(&word);
        prop_assert_eq!(stem(&once), once.clone());
        // stemming never grows a word by more than the `y` restoration
        prop_assert!(once.len() <= word.len() + 1);
    }

    #[test]
    fn affix_similarity_is_symmetric_and_bounded(a in "[a-z]{1,10}", b in "[a-z]{1,10}") {
        let cfg = AffixConfig::default();
        let ab = affix_similarity(&a, &b, &cfg);
        let ba = affix_similarity(&b, &a, &cfg);
        prop_assert_eq!(ab, ba);
        prop_assert!((0.0..=cfg.max_score).contains(&ab));
    }

    #[test]
    fn ns_is_bounded_and_symmetric(a in ident_strategy(), b in ident_strategy()) {
        let thesaurus = Thesaurus::with_default_stopwords();
        let n = Normalizer::default();
        let na = n.normalize(&a, &thesaurus);
        let nb = n.normalize(&b, &thesaurus);
        let w = TokenTypeWeights::default();
        let affix = AffixConfig::default();
        let ab = ns_elements(&na, &nb, &thesaurus, &w, &affix);
        let ba = ns_elements(&nb, &na, &thesaurus, &w, &affix);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ab), "ns out of range: {}", ab);
        prop_assert!((ab - ba).abs() < 1e-12, "asymmetric: {} vs {}", ab, ba);
    }

    #[test]
    fn identical_names_have_ns_one(a in "[A-Za-z]{2,12}") {
        let thesaurus = Thesaurus::empty();
        let n = Normalizer::default();
        let na = n.normalize(&a, &thesaurus);
        prop_assume!(!na.is_vacuous());
        let v = ns_elements(
            &na,
            &na,
            &thesaurus,
            &TokenTypeWeights::default(),
            &AffixConfig::default(),
        );
        prop_assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ns_token_sets_empty_is_zero(a in ident_strategy()) {
        let thesaurus = Thesaurus::empty();
        let affix = AffixConfig::default();
        let tok = Token::new(a, TokenType::Content);
        prop_assert_eq!(ns_token_sets(&[], &[], &thesaurus, &affix), 0.0);
        prop_assert_eq!(ns_token_sets(&[&tok], &[], &thesaurus, &affix), 0.0);
    }
}

proptest! {
    // Full-pipeline properties are expensive; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pipeline_invariants_on_synthetic_pairs(seed in 0u64..500, leaves in 8usize..48) {
        let pair = generate(&SyntheticConfig::sized(leaves, seed));
        let out = Cupid::with_config(CupidConfig::default(), pair.thesaurus.clone())
            .match_schemas(&pair.source, &pair.target)
            .expect("synthetic schemas expand");

        // all similarity coefficients stay in [0,1]
        for (_, _, v) in out.structural.leaf_ssim.iter() {
            prop_assert!((0.0..=1.0).contains(&v), "leaf ssim {}", v);
        }
        for (_, _, v) in out.structural.wsim.iter() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "wsim {}", v);
        }
        // every reported mapping clears the acceptance threshold and
        // refers to real paths
        for m in &out.leaf_mappings {
            prop_assert!(m.wsim >= out.structural.wsim.get(0, 0).min(0.5) - 1e-9);
            prop_assert!(out.source_tree.find_path(&m.source_path).is_some());
            prop_assert!(out.target_tree.find_path(&m.target_path).is_some());
        }
        // the naive generator emits at most one mapping per target leaf
        // node (paths can repeat: the generator may produce same-named
        // siblings)
        let mut targets: Vec<usize> =
            out.leaf_mappings.iter().map(|m| m.target.index()).collect();
        let before = targets.len();
        targets.sort_unstable();
        targets.dedup();
        prop_assert_eq!(before, targets.len(), "duplicate target in 1:n leaf mapping");
    }

    #[test]
    fn gold_recall_reasonable_on_mild_perturbations(seed in 0u64..200) {
        let cfg = SyntheticConfig {
            drop_prob: 0.0,
            flatten_prob: 0.0,
            rename_prob: 0.15,
            abbreviate_prob: 0.05,
            ..SyntheticConfig::sized(24, seed)
        };
        let pair = generate(&cfg);
        let out = Cupid::with_config(CupidConfig::default(), pair.thesaurus.clone())
            .match_schemas(&pair.source, &pair.target)
            .expect("synthetic schemas expand");
        let q = cupid::eval::metrics::MatchQuality::score_mappings(&out.leaf_mappings, &pair.gold);
        // with no structural perturbation and thesaurus-covered renames,
        // recall should be high
        prop_assert!(q.recall() > 0.7, "recall {} (seed {})", q.recall(), seed);
    }
}
