//! Property suite for the write-ahead journal's on-disk form
//! (DESIGN.md §10.3), mirroring `serve_protocol.rs` one layer down.
//!
//! Three contracts:
//!
//! * **Round trip** — every journal record kind (`Add`, `Replace`,
//!   `Remove`) and the generation header encode → decode to an equal
//!   value, and a whole journal byte stream scans back in order.
//! * **Loud rejection, quiet prefix** — flipping any single byte of a
//!   journal stream, or truncating it anywhere, never produces a wrong
//!   record: [`scan`] returns exactly the records wholly before the
//!   damage, reports the stop reason, and `valid_len` points at the end
//!   of the last intact frame (the truncation point recovery uses).
//! * **Replay stops at the last valid record** — [`Journal::open`] on a
//!   damaged file recovers that same prefix, truncates the tail, and a
//!   second open replays the identical records with no further loss.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use cupid::io::parse_sdl;
use cupid::model::wire::{JOURNAL_ADD, JOURNAL_HEADER, JOURNAL_REMOVE, JOURNAL_REPLACE};
use cupid::model::write_frame;
use cupid::repo::journal::{scan, Journal, JournalHeader, JournalRecord, JOURNAL_VERSION};
use proptest::prelude::*;

/// A unique, self-cleaning journal location per test case.
struct TempJournal(PathBuf);

impl TempJournal {
    fn new() -> Self {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cupid-journal-wire-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempJournal(dir.join("cupid.repo.journal"))
    }
}

impl Drop for TempJournal {
    fn drop(&mut self) {
        if let Some(dir) = self.0.parent() {
            std::fs::remove_dir_all(dir).ok();
        }
    }
}

/// A schema derived from drawn identifiers — structure varies with `n`
/// so content hashes differ across draws.
fn schema_from(name: &str, attr: &str, n: u64) -> cupid::model::Schema {
    let mut sdl = format!("schema {name}\n  element E{}\n", n % 5);
    for i in 0..=(n % 3) {
        sdl.push_str(&format!("    attr {attr}{i} : int\n"));
    }
    parse_sdl(&sdl).unwrap()
}

/// Every record kind, parameterized by the drawn values.
fn records(name: &str, attr: &str, n: u64) -> Vec<JournalRecord> {
    vec![
        JournalRecord::Add(schema_from(name, attr, n)),
        JournalRecord::Replace(schema_from(name, attr, n.wrapping_add(1))),
        JournalRecord::Remove(name.to_string()),
        JournalRecord::Add(schema_from(attr, name, n.wrapping_add(2))),
    ]
}

fn header_from(n: u64) -> JournalHeader {
    JournalHeader {
        version: JOURNAL_VERSION,
        config_fp: n.wrapping_mul(31),
        thesaurus_fp: n.rotate_left(17),
        snapshot_id: n ^ 0xD1CE,
    }
}

/// Encode a full journal stream; returns the bytes and the end offset
/// of every frame (header first) — the boundaries recovery may
/// truncate to.
fn stream(header: &JournalHeader, records: &[JournalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut ends = Vec::new();
    write_frame(&mut bytes, JOURNAL_HEADER, &header.encode()).unwrap();
    ends.push(bytes.len());
    for record in records {
        let (kind, payload) = record.encode();
        write_frame(&mut bytes, kind, &payload).unwrap();
        ends.push(bytes.len());
    }
    (bytes, ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// encode → decode is the identity on the header and on every
    /// record kind, and a whole stream scans back in order.
    #[test]
    fn records_round_trip(
        name in "[A-Za-z][A-Za-z0-9_]{0,8}",
        attr in "[A-Za-z][A-Za-z0-9_]{0,6}",
        n in 0u64..u64::MAX,
    ) {
        let header = header_from(n);
        prop_assert_eq!(JournalHeader::decode(&header.encode()).unwrap(), header);

        let all = records(&name, &attr, n);
        for want in &all {
            let (kind, payload) = want.encode();
            prop_assert!(
                [JOURNAL_ADD, JOURNAL_REPLACE, JOURNAL_REMOVE].contains(&kind),
                "record kinds stay in the journal range"
            );
            let got = JournalRecord::decode(kind, &payload).unwrap();
            prop_assert_eq!(&got, want);
        }

        let (bytes, ends) = stream(&header, &all);
        let s = scan(&bytes);
        prop_assert_eq!(s.header, Some(header));
        prop_assert_eq!(&s.records, &all);
        prop_assert_eq!(s.valid_len as usize, *ends.last().unwrap());
        prop_assert!(s.stopped.is_none(), "clean stream: {:?}", s.stopped);
    }

    /// A single flipped byte anywhere in the stream yields exactly the
    /// records wholly before the damaged frame — never a wrong record —
    /// and truncation at any offset yields the complete-frame prefix.
    #[test]
    fn corruption_recovers_exactly_the_valid_prefix(
        name in "[A-Za-z][A-Za-z0-9_]{0,8}",
        attr in "[A-Za-z][A-Za-z0-9_]{0,6}",
        n in 0u64..u64::MAX,
        at in 0usize..10_000,
    ) {
        let header = header_from(n);
        let all = records(&name, &attr, n);
        let (bytes, ends) = stream(&header, &all);

        // Flip one byte: the frame containing it dies, everything
        // before it survives.
        let flip = at % bytes.len();
        let mut broken = bytes.clone();
        broken[flip] ^= 0x01;
        let damaged_frame = ends.iter().position(|&end| flip < end).unwrap();
        let s = scan(&broken);
        prop_assert!(s.stopped.is_some(), "flip at {} of {} slipped through", flip, bytes.len());
        if damaged_frame == 0 {
            prop_assert_eq!(s.header, None, "damaged header is not trusted");
            prop_assert_eq!(s.records.len(), 0);
            prop_assert_eq!(s.valid_len, 0);
        } else {
            prop_assert_eq!(s.header, Some(header));
            prop_assert_eq!(&s.records, &all[..damaged_frame - 1]);
            prop_assert_eq!(s.valid_len as usize, ends[damaged_frame - 1]);
        }

        // Truncate: complete frames before the cut survive; a cut on a
        // frame boundary is a clean EOF, anywhere else stops loudly.
        let cut = at % bytes.len();
        let s = scan(&bytes[..cut]);
        let whole = ends.iter().filter(|&&end| end <= cut).count();
        prop_assert_eq!(s.valid_len as usize, if whole == 0 { 0 } else { ends[whole - 1] });
        if whole == 0 {
            prop_assert_eq!(s.header, None);
            prop_assert_eq!(s.records.len(), 0);
        } else {
            prop_assert_eq!(s.header, Some(header));
            prop_assert_eq!(&s.records, &all[..whole - 1]);
        }
        prop_assert_eq!(s.stopped.is_some(), cut != 0 && ends.iter().all(|&end| end != cut));
    }

    /// File-level replay: `Journal::open` on a damaged journal recovers
    /// the valid prefix, truncates the tail, and a reopen replays the
    /// identical records — recovery is idempotent.
    #[test]
    fn replay_stops_at_the_last_valid_record(
        name in "[A-Za-z][A-Za-z0-9_]{0,8}",
        attr in "[A-Za-z][A-Za-z0-9_]{0,6}",
        n in 0u64..u64::MAX,
        at in 0usize..10_000,
    ) {
        let header = header_from(n);
        let all = records(&name, &attr, n);
        let (bytes, ends) = stream(&header, &all);
        // Damage a byte past the header so the generation stays
        // recognizable (a damaged header is the discard path, covered
        // above and by the unit suite).
        let flip = ends[0] + at % (bytes.len() - ends[0]);
        let mut broken = bytes.clone();
        broken[flip] ^= 0x01;
        let damaged_frame = ends.iter().position(|&end| flip < end).unwrap();

        let tmp = TempJournal::new();
        std::fs::write(&tmp.0, &broken).unwrap();
        let (journal, recovery) = Journal::open(&tmp.0, header).unwrap();
        prop_assert_eq!(&recovery.records, &all[..damaged_frame - 1]);
        prop_assert!(recovery.discarded.is_some(), "damage must be reported");
        prop_assert_eq!(journal.bytes_len() as usize, ends[damaged_frame - 1]);
        drop(journal);
        prop_assert_eq!(
            std::fs::metadata(&tmp.0).unwrap().len() as usize,
            ends[damaged_frame - 1],
            "the damaged tail is truncated away"
        );

        // Idempotent: a second open replays the same prefix cleanly.
        let (_, again) = Journal::open(&tmp.0, header).unwrap();
        prop_assert_eq!(&again.records, &all[..damaged_frame - 1]);
        prop_assert!(again.discarded.is_none(), "second open is clean: {:?}", again.discarded);
    }
}
