//! Round-trip suite for the persistent schema repository (DESIGN.md §8).
//!
//! The repository's contract: a snapshot is a *pure optimization*.
//! Over randomized schema corpora, `save → load` must reproduce the
//! freshly-built session's output — `MatchSummary` mappings down to the
//! similarity bits, and `lsim` tables down to the float bits — while
//! executing zero pairs; incremental edits must re-execute exactly the
//! edited schema's pairs and still agree with a cold rebuild.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use cupid::core::{Cupid, CupidConfig};
use cupid::corpus::synthetic::{generate, SyntheticConfig};
use cupid::model::Schema;
use cupid::prelude::{CupidRepositoryExt, Repository};
use proptest::prelude::*;

/// A unique, self-cleaning snapshot file per test case.
struct TempSnap(PathBuf);

impl TempSnap {
    fn new() -> Self {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cupid-repo-roundtrip-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempSnap(dir.join("cupid.repo"))
    }
}

impl Drop for TempSnap {
    fn drop(&mut self) {
        if let Some(dir) = self.0.parent() {
            std::fs::remove_dir_all(dir).ok();
        }
    }
}

/// A corpus of four synthetic schemas drawn from the shared word pool,
/// renamed so repository keys are distinct.
fn corpus(seed: u64, leaves: usize) -> Vec<Schema> {
    let a = generate(&SyntheticConfig::sized(leaves, seed));
    let b = generate(&SyntheticConfig::sized(leaves, seed.wrapping_add(577)));
    let mut out = vec![a.source, a.target, b.source, b.target];
    for (i, s) in out.iter_mut().enumerate() {
        // Schema names key the repository; synthetic pairs reuse names,
        // so re-root each under a distinct name via the wire round trip
        // (rebuilding with a builder would renumber nothing — the name
        // lives on the root element).
        *s = rename(s, &format!("Schema{i}_{}", s.name()));
    }
    out
}

/// Rename a schema (root element + schema name) without disturbing ids.
fn rename(schema: &Schema, name: &str) -> Schema {
    let mut w = cupid::model::WireWriter::new();
    schema.write_wire(&mut w);
    let bytes = w.into_bytes();
    let mut r = cupid::model::WireReader::new(&bytes);
    let mut back = Schema::read_wire(&mut r).unwrap();
    back.rename(name);
    back
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// save → load reproduces the cold session bit for bit, serving
    /// every pair from the persisted cache.
    #[test]
    fn loaded_repository_is_bit_identical(seed in 0u64..10_000, leaves in 4usize..16) {
        let tmp = TempSnap::new();
        let schemas = corpus(seed, leaves);
        let thesaurus = generate(&SyntheticConfig::sized(leaves, seed)).thesaurus;
        let config = CupidConfig::default();

        let cold_summaries;
        {
            let mut repo = Repository::open_or_create(&tmp.0, &config, &thesaurus).unwrap();
            for s in &schemas {
                repo.add(s).unwrap();
            }
            cold_summaries = repo.match_all_pairs();
            prop_assert_eq!(repo.pairs_executed(), 6);
            repo.save().unwrap();
        }

        let mut warm = Repository::open_or_create(&tmp.0, &config, &thesaurus).unwrap();
        prop_assert!(warm.was_loaded());
        let warm_summaries = warm.match_all_pairs();
        prop_assert_eq!(warm.pairs_executed(), 0, "warm run must execute nothing");
        prop_assert_eq!(&warm_summaries, &cold_summaries);

        // The loaded session's lsim tables equal the single-pair
        // engine's, float bits included.
        let cupid = Cupid::with_config(config.clone(), thesaurus.clone());
        for i in 0..schemas.len() {
            for j in (i + 1)..schemas.len() {
                let got = warm
                    .lsim_of(schemas[i].name(), schemas[j].name())
                    .unwrap();
                let want =
                    cupid::core::linguistic::analyze(&schemas[i], &schemas[j], &thesaurus, &config);
                prop_assert_eq!(
                    got.matrix().max_abs_diff(want.lsim.matrix()),
                    0.0,
                    "lsim diverged for pair ({}, {})", i, j
                );
            }
        }

        // Summaries also agree with the independent single-pair API.
        for s in &warm_summaries {
            let outcome = cupid
                .match_schemas(&schemas[s.source.index()], &schemas[s.target.index()])
                .unwrap();
            prop_assert_eq!(&s.leaf_mappings, &outcome.leaf_mappings);
            prop_assert_eq!(&s.nonleaf_mappings, &outcome.nonleaf_mappings);
        }
    }

    /// Editing one schema of a loaded corpus re-executes exactly that
    /// schema's pairs, and the merged result equals a cold rebuild.
    #[test]
    fn incremental_rematch_executes_only_dirty_pairs(seed in 0u64..10_000, leaves in 4usize..14) {
        let tmp = TempSnap::new();
        let schemas = corpus(seed, leaves);
        let thesaurus = generate(&SyntheticConfig::sized(leaves, seed)).thesaurus;
        let config = CupidConfig::default();
        {
            let mut repo = Repository::open_or_create(&tmp.0, &config, &thesaurus).unwrap();
            for s in &schemas {
                repo.add(s).unwrap();
            }
            repo.match_all_pairs();
            repo.save().unwrap();
        }

        // Edit schema #2: swap in a differently-seeded variant.
        let edited = rename(
            &generate(&SyntheticConfig::sized(leaves, seed.wrapping_add(9001))).source,
            schemas[2].name(),
        );
        let mut repo = Repository::open_or_create(&tmp.0, &config, &thesaurus).unwrap();
        repo.replace(&edited).unwrap();
        let incremental = repo.match_all_pairs();
        prop_assert_eq!(
            repo.pairs_executed(),
            3,
            "exactly the edited schema's pairs re-execute"
        );
        prop_assert_eq!(repo.stats().session.pairs_matched, 3);

        let tmp2 = TempSnap::new();
        let mut cold = Repository::open_or_create(&tmp2.0, &config, &thesaurus).unwrap();
        let mut fresh = schemas.clone();
        fresh[2] = edited;
        for s in &fresh {
            cold.add(s).unwrap();
        }
        prop_assert_eq!(cold.match_all_pairs(), incremental);
    }

    /// The facade path: `cupid.repository(...)` + SDL export/import
    /// round-trips a schema between repositories.
    #[test]
    fn sdl_export_import_between_repositories(seed in 0u64..5_000) {
        let tmp = TempSnap::new();
        let tmp2 = TempSnap::new();
        let schemas = corpus(seed, 6);
        let thesaurus = generate(&SyntheticConfig::sized(6, seed)).thesaurus;
        let cupid = Cupid::with_config(CupidConfig::default(), thesaurus);
        let mut repo = cupid.repository(&tmp.0).unwrap();
        for s in &schemas {
            repo.add(s).unwrap();
        }
        let name = schemas[0].name();
        let text = repo.export_sdl(name).unwrap();
        let mut other = cupid.repository(&tmp2.0).unwrap();
        let imported = other.import_sdl(&text).unwrap();
        prop_assert_eq!(imported.as_str(), name);
        prop_assert_eq!(
            other.schema(name).unwrap().content_hash(),
            repo.schema(name).unwrap().content_hash(),
            "SDL round trip must preserve the schema exactly"
        );
    }
}

/// Non-proptest: a snapshot saved with one corpus state and re-saved
/// after edits keeps the cache pruned (no monotonic growth).
#[test]
fn save_prunes_unreachable_cache_entries() {
    let tmp = TempSnap::new();
    let schemas = corpus(7, 6);
    let thesaurus = generate(&SyntheticConfig::sized(6, 7)).thesaurus;
    let config = CupidConfig::default();
    let mut repo = Repository::open_or_create(&tmp.0, &config, &thesaurus).unwrap();
    for s in &schemas {
        repo.add(s).unwrap();
    }
    repo.match_all_pairs();
    assert_eq!(repo.stats().cached_pairs, 6);
    repo.save().unwrap();
    let size_before = std::fs::metadata(&tmp.0).unwrap().len();

    let edited = rename(&generate(&SyntheticConfig::sized(6, 9100)).source, schemas[0].name());
    repo.replace(&edited).unwrap();
    repo.match_all_pairs();
    assert_eq!(repo.stats().cached_pairs, 9, "3 stale + 6 live before pruning");
    repo.save().unwrap();
    assert_eq!(repo.stats().cached_pairs, 6, "save prunes entries keyed by dead hashes");
    // and a reload agrees (the handle must drop first: a snapshot has
    // exactly one writer at a time)
    drop(repo);
    let warm = Repository::open_or_create(&tmp.0, &config, &thesaurus).unwrap();
    assert_eq!(warm.stats().cached_pairs, 6);
    let _ = size_before;
}
