//! Fault-injection crash suite for the durability layer (DESIGN.md §10).
//!
//! The contract under test: with `--autosave 1`, a mutation is fsynced
//! into the write-ahead journal *before* its response is written, so a
//! daemon killed with SIGKILL at an arbitrary point loses **at most the
//! one in-flight request** — never an acknowledged mutation — and the
//! recovered repository is bit-identical to replaying the acknowledged
//! stream through a fresh `Repository`.
//!
//! The suite is `harness = false` because it is its own process
//! orchestrator: each round re-executes this binary with
//! `--daemon-child`, which runs a real [`cupid::prelude::Server`] over
//! a private snapshot directory and publishes its bound address through
//! an atomically renamed file. The parent then drives a randomized
//! mutation stream (seeded [`rand::rngs::StdRng`], so failures
//! reproduce) while a killer thread SIGKILLs the child after a few
//! milliseconds — landing mid-mutation, mid-journal-append, or mid
//! threshold-compaction depending on the round. Recovery happens by
//! plain [`Repository::open_or_create`] on the same path, which also
//! exercises dead-pid lock reclamation: the killed daemon leaves its
//! advisory lock behind, and reopening must reclaim it rather than
//! wedge.
//!
//! Acceptance per round:
//!
//! * the recovered state equals `apply(acked)` or
//!   `apply(acked + the single in-flight op)` — nothing else;
//! * the equality is checked structurally (names + content hashes) and,
//!   on small corpora, bit-identically over every match summary;
//! * a post-recovery save folds the journal, and a further reopen
//!   replays nothing.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cupid::core::CupidConfig;
use cupid::io::parse_sdl;
use cupid::lexical::Thesaurus;
use cupid::prelude::{Repository, ServeClient, ServeError, ServeOptions, Server};
use cupid::repo::RepoLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--daemon-child") {
        daemon_child(&args[1..]);
    }
    if args.iter().any(|a| a == "--list") {
        // `cargo test -- --list` support for tooling.
        println!("crash_recovery: main");
        return;
    }

    idle_kill_round();
    println!("crash_recovery: idle-kill round ok");
    // Randomized kill points: short delays land mid-stream (often mid
    // journal append or mid threshold-compaction), longer ones towards
    // the end of the stream. Seeds are fixed so a failure replays.
    for (round, delay_ms) in [2u64, 5, 9, 14, 25, 45].iter().enumerate() {
        let seed = 0xC0FF_EE00 + round as u64;
        let report = crash_round(seed, *delay_ms);
        println!(
            "crash_recovery: seed {seed:#x} kill@{delay_ms}ms ok \
             ({} acked, in-flight {}, {} replayed, state={})",
            report.acked, report.inflight, report.replayed, report.matched
        );
    }
    println!("crash_recovery: all rounds passed");
}

// ---------------------------------------------------------------------
// Child mode: a real daemon over a private snapshot path.
// ---------------------------------------------------------------------

fn daemon_child(args: &[String]) -> ! {
    let [snapshot, addr_file, autosave, compact] = args else {
        eprintln!("usage: --daemon-child <snapshot> <addr-file> <autosave> <compact-after>");
        std::process::exit(2);
    };
    let config = CupidConfig::default();
    let th = Thesaurus::with_default_stopwords();
    let compact: u64 = compact.parse().unwrap();
    let options = ServeOptions {
        autosave_every: Some(autosave.parse().unwrap()),
        compact_after: (compact > 0).then_some(compact),
        ..ServeOptions::default()
    };
    let server = match Server::bind("127.0.0.1:0", Path::new(snapshot), &config, &th, options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("daemon child bind failed: {e}");
            std::process::exit(3);
        }
    };
    // Publish the bound address atomically so the parent never reads a
    // half-written file.
    let tmp = format!("{addr_file}.tmp");
    std::fs::write(&tmp, server.local_addr().to_string()).unwrap();
    std::fs::rename(&tmp, addr_file).unwrap();
    server.run().ok();
    std::process::exit(0);
}

// ---------------------------------------------------------------------
// Parent-side harness.
// ---------------------------------------------------------------------

/// A unique, self-cleaning directory per round.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("cupid-crash-test-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn snapshot(&self) -> PathBuf {
        self.0.join("cupid.repo")
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Spawn this binary as a daemon child and wait for its address.
fn spawn_daemon(dir: &TempDir, autosave: u64, compact: u64) -> (Child, String) {
    let addr_file = dir.0.join("addr");
    std::fs::remove_file(&addr_file).ok();
    let mut child = Command::new(std::env::current_exe().unwrap())
        .arg("--daemon-child")
        .arg(dir.snapshot())
        .arg(&addr_file)
        .arg(autosave.to_string())
        .arg(compact.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap();
    let start = Instant::now();
    loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_file) {
            if !addr.is_empty() {
                return (child, addr);
            }
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("daemon child exited before binding: {status}");
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "daemon child never published its address"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One mutation in the randomized stream, in wire form (SDL text) so
/// the daemon side and the expected-state side see identical bytes.
#[derive(Clone, Debug)]
enum Op {
    Add { sdl: String },
    Replace { sdl: String },
    Remove { name: String },
    Save,
}

/// A schema body derived from a name and a draw; distinct draws give
/// distinct content hashes, so replaces are observable.
fn sdl_for(name: &str, draw: u64) -> String {
    let pool =
        ["Qty : int", "Amount : decimal", "ShipDate : date", "Contact : string", "Count : int"];
    let mut text = format!("schema {name}\n  element Item\n");
    for i in 0..=(draw % 3) {
        text.push_str(&format!("    attr V{}_{i} : int\n", draw % 16));
    }
    text.push_str(&format!("    attr {}\n", pool[(draw % pool.len() as u64) as usize]));
    text
}

/// Draw the next op against the optimistic live-name set. The corpus is
/// capped so post-crash bit-identity checks stay cheap.
fn gen_op(rng: &mut StdRng, live: &mut Vec<String>, next_id: &mut u64) -> Op {
    let roll: u32 = rng.gen_range(0..100);
    let can_grow = live.len() < 10;
    if live.len() < 2 || (can_grow && roll < 40) {
        let name = format!("S{next_id}");
        *next_id += 1;
        live.push(name.clone());
        Op::Add { sdl: sdl_for(&name, rng.next_u64()) }
    } else if roll < 70 {
        let name = live[rng.gen_range(0..live.len())].clone();
        Op::Replace { sdl: sdl_for(&name, rng.next_u64()) }
    } else if roll < 92 {
        let name = live.remove(rng.gen_range(0..live.len()));
        Op::Remove { name }
    } else {
        Op::Save
    }
}

fn send(client: &mut ServeClient, op: &Op) -> Result<(), ServeError> {
    match op {
        Op::Add { sdl } => client.add_sdl(sdl).map(drop),
        Op::Replace { sdl } => client.replace_sdl(sdl).map(drop),
        Op::Remove { name } => client.remove(name),
        Op::Save => client.save().map(drop),
    }
}

fn apply(repo: &mut Repository, op: &Op) {
    match op {
        Op::Add { sdl } => repo.add(&parse_sdl(sdl).unwrap()).unwrap(),
        Op::Replace { sdl } => repo.replace(&parse_sdl(sdl).unwrap()).unwrap(),
        Op::Remove { name } => {
            repo.remove(name).unwrap();
        }
        Op::Save => repo.save().unwrap(),
    }
}

/// Structural identity of a repository: names in order plus each
/// schema's canonical content hash.
fn state_of(repo: &Repository) -> (Vec<String>, Vec<u64>) {
    let names = repo.names().to_vec();
    let hashes = names.iter().map(|n| repo.schema(n).unwrap().content_hash()).collect();
    (names, hashes)
}

struct RoundReport {
    acked: usize,
    inflight: bool,
    replayed: u64,
    /// Which candidate matched: "acked" or "acked+inflight".
    matched: &'static str,
}

/// Verify a crashed repository directory against the acknowledged op
/// stream (plus, optionally, one in-flight op that may or may not have
/// landed). Returns the recovery report; panics on any divergence.
fn verify_recovery(
    dir: &TempDir,
    acked: &[Op],
    inflight: Option<&Op>,
    config: &CupidConfig,
    th: &Thesaurus,
) -> RoundReport {
    let snapshot = dir.snapshot();
    assert!(
        RepoLock::lock_path(&snapshot).exists(),
        "the killed daemon leaves its advisory lock behind"
    );

    // Reopen on the same path: reclaims the dead pid's lock and replays
    // the journal tail past the last snapshot.
    let mut recovered =
        Repository::open_or_create(&snapshot, config, th).expect("recovery after SIGKILL");
    let durability = recovered.durability();
    let got = state_of(&recovered);

    // Candidate end states: every acknowledged op, plus optionally the
    // one request that never got a response.
    let mut candidates: Vec<(&'static str, Vec<Op>)> = vec![("acked", acked.to_vec())];
    if let Some(op) = inflight {
        if !matches!(op, Op::Save) {
            let mut with = acked.to_vec();
            with.push(op.clone());
            candidates.push(("acked+inflight", with));
        }
    }

    let expect_dir = TempDir::new("expect");
    let mut matched = None;
    for (label, ops) in &candidates {
        let path = expect_dir.0.join(format!("{label}.repo"));
        let mut expected = Repository::open_or_create(&path, config, th).unwrap();
        for op in ops {
            apply(&mut expected, op);
        }
        if state_of(&expected) == got {
            // Structure agrees; on this small corpus also demand
            // bit-identical similarity output for every pair.
            assert_eq!(
                recovered.match_all_pairs(),
                expected.match_all_pairs(),
                "recovered repository diverged from replaying the {label} stream"
            );
            matched = Some(*label);
            break;
        }
    }
    let matched = matched.unwrap_or_else(|| {
        panic!(
            "recovered state {:?} matches neither candidate; \
             acked {} ops, in-flight {:?}, durability {:?}",
            got.0,
            acked.len(),
            inflight,
            durability
        )
    });

    // A post-recovery save folds the journal: the next open replays
    // nothing and loads the identical corpus from the snapshot alone.
    recovered.save().expect("post-recovery compaction");
    drop(recovered);
    let refolded = Repository::open_or_create(&snapshot, config, th).unwrap();
    assert_eq!(refolded.durability().replayed_records, 0, "save folded the journal");
    assert_eq!(state_of(&refolded), got, "folding must not change state");

    RoundReport {
        acked: acked.len(),
        inflight: inflight.is_some(),
        replayed: durability.replayed_records,
        matched,
    }
}

/// Deterministic baseline: every op acknowledged, daemon killed while
/// idle. Exactly the acked stream must come back — no ambiguity.
fn idle_kill_round() {
    let dir = TempDir::new("idle");
    let config = CupidConfig::default();
    let th = Thesaurus::with_default_stopwords();
    let (mut child, addr) = spawn_daemon(&dir, 1, 4);

    let mut rng = StdRng::seed_from_u64(0x1D1E);
    let (mut live, mut next_id) = (Vec::new(), 0u64);
    let mut acked = Vec::new();
    let mut client = ServeClient::connect(addr.as_str()).unwrap();
    for _ in 0..24 {
        let op = gen_op(&mut rng, &mut live, &mut next_id);
        send(&mut client, &op).expect("no faults while the daemon is alive");
        acked.push(op);
    }
    // Every response has been read, so nothing is in flight; SIGKILL.
    child.kill().unwrap();
    child.wait().unwrap();
    drop(client);

    let report = verify_recovery(&dir, &acked, None, &config, &th);
    assert_eq!(report.matched, "acked", "idle kill loses nothing");
}

/// Randomized round: a killer thread SIGKILLs the daemon after
/// `delay_ms` while the parent hammers mutations; at most the one
/// unacknowledged request may be lost.
fn crash_round(seed: u64, delay_ms: u64) -> RoundReport {
    let dir = TempDir::new(&format!("seed{seed:x}"));
    let config = CupidConfig::default();
    let th = Thesaurus::with_default_stopwords();
    let mut rng = StdRng::seed_from_u64(seed);
    let compact_after = rng.gen_range(2u64..6);
    let (child, addr) = spawn_daemon(&dir, 1, compact_after);

    let child = Arc::new(Mutex::new(child));
    let killer = {
        let child = Arc::clone(&child);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(delay_ms));
            child.lock().unwrap().kill().ok();
        })
    };

    let (mut live, mut next_id) = (Vec::new(), 0u64);
    let mut acked = Vec::new();
    let mut inflight = None;
    let mut client = ServeClient::connect(addr.as_str()).unwrap();
    // Keep mutating until the kill severs the connection (cap as a
    // safety net if the kill loses the race to a fast stream).
    for _ in 0..3000 {
        let op = gen_op(&mut rng, &mut live, &mut next_id);
        match send(&mut client, &op) {
            Ok(()) => acked.push(op),
            Err(_) => {
                inflight = Some(op);
                break;
            }
        }
    }
    killer.join().unwrap();
    child.lock().unwrap().wait().unwrap();
    drop(client);

    verify_recovery(&dir, &acked, inflight.as_ref(), &config, &th)
}
