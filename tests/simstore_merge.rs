//! Direct property coverage for `SimStore::merge` (DESIGN.md §7/§8).
//!
//! The sharded batch path and the snapshot loader both rely on one
//! invariant: a `SimStore` memoizes a *pure* function of the token
//! table, so merging stores — in any order, with any overlap — can
//! change *when* a pair's similarity was computed but never *what* any
//! `sim(t1, t2)` lookup returns. `tests/batch_equivalence.rs` exercises
//! this indirectly through whole matches; these proptests pin the
//! store's own contract over randomized vocabularies, fill patterns and
//! merge orders.

use cupid::core::CupidConfig;
use cupid::lexical::{SimClass, SimStore, Thesaurus, TokenId, TokenSimCache, TokenTable};
use proptest::prelude::*;

/// Words for randomized vocabularies: realistic schema tokens with
/// plenty of shared affixes so the affix fallback produces interesting
/// (non-zero, non-one) values.
const POOL: &[&str] = &[
    "order",
    "orders",
    "ordering",
    "customer",
    "custom",
    "cost",
    "costing",
    "street",
    "straight",
    "road",
    "roadway",
    "phone",
    "telephone",
    "bill",
    "billing",
    "invoice",
    "ship",
    "shipment",
    "item",
    "items",
    "vendor",
    "vend",
    "code",
    "codes",
    "number",
    "total",
    "totals",
    "status",
];

/// A vocabulary of `n` distinct tokens (words, plus numbers and a
/// special symbol past the word pool, so every `SimClass` is present).
fn vocabulary(n: usize) -> (TokenTable, Vec<TokenId>) {
    let mut table = TokenTable::new();
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let id = if let Some(word) = POOL.get(i) {
            table.intern(SimClass::Word, word)
        } else if i % 2 == 0 {
            table.intern(SimClass::Number, &format!("{i}"))
        } else {
            table.intern(SimClass::Special, &format!("#{i}"))
        };
        ids.push(id);
    }
    (table, ids)
}

/// Fill a fresh store by computing the pair picks (indices into the
/// id list) through a cache over `table`.
fn filled_store(
    table: &TokenTable,
    thesaurus: &Thesaurus,
    ids: &[TokenId],
    picks: &[usize],
) -> SimStore {
    let affix = CupidConfig::default().affix;
    let mut cache = TokenSimCache::new(table, thesaurus, &affix);
    // each pick encodes a pair: high bits pick one token, low bits the
    // other (the shim has no tuple strategies)
    for &p in picks {
        let (a, b) = (p / 32, p % 32);
        cache.sim(ids[a % ids.len()], ids[b % ids.len()]);
    }
    cache.into_store()
}

/// Every `sim` lookup through `store`, for the full id cross product,
/// as exact bit patterns.
fn all_sims(
    table: &TokenTable,
    thesaurus: &Thesaurus,
    ids: &[TokenId],
    store: SimStore,
) -> (Vec<u64>, usize) {
    let affix = CupidConfig::default().affix;
    let mut cache = TokenSimCache::with_store(table, thesaurus, &affix, store);
    let mut out = Vec::with_capacity(ids.len() * ids.len());
    for &a in ids {
        for &b in ids {
            out.push(cache.sim(a, b).to_bits());
        }
    }
    let computed = cache.distinct_pairs_computed();
    (out, computed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Merging shard stores in any order yields a store whose every
    /// lookup — warm or cold — is bit-identical to a cold cache's.
    #[test]
    fn merge_order_never_changes_lookups(
        vocab in 4usize..24,
        picks_a in proptest::collection::vec(0usize..1024, 0..40),
        picks_b in proptest::collection::vec(0usize..1024, 0..40),
        picks_c in proptest::collection::vec(0usize..1024, 0..40),
    ) {
        let (table, ids) = vocabulary(vocab);
        let thesaurus = Thesaurus::with_default_stopwords();
        let oracle = {
            let (sims, _) = all_sims(&table, &thesaurus, &ids, SimStore::new());
            sims
        };

        let shards = [&picks_a, &picks_b, &picks_c];
        // every permutation of three shards
        for order in [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            let mut merged = SimStore::new();
            for k in order {
                let shard = filled_store(&table, &thesaurus, &ids, shards[k]);
                merged.merge(shard);
            }
            let merged_count = merged.distinct_pairs_computed();
            let (sims, final_count) = all_sims(&table, &thesaurus, &ids, merged);
            prop_assert_eq!(&sims, &oracle, "merge order {:?} changed a lookup", order);
            // the merged count never exceeds what the full cross
            // product computes, and merging never loses work
            prop_assert!(merged_count <= final_count);
        }
    }

    /// Merge is idempotent and commutative in its observable effect:
    /// `a ∪ b` and `b ∪ a` (and `a ∪ a`) agree on every lookup and on
    /// the distinct-pairs counter.
    #[test]
    fn merge_is_commutative_and_idempotent(
        vocab in 4usize..20,
        picks_a in proptest::collection::vec(0usize..1024, 0..40),
        picks_b in proptest::collection::vec(0usize..1024, 0..40),
    ) {
        let (table, ids) = vocabulary(vocab);
        let thesaurus = Thesaurus::with_default_stopwords();
        let build = |picks: &[usize]| filled_store(&table, &thesaurus, &ids, picks);

        let mut ab = build(&picks_a);
        ab.merge(build(&picks_b));
        let mut ba = build(&picks_b);
        ba.merge(build(&picks_a));
        prop_assert_eq!(ab.distinct_pairs_computed(), ba.distinct_pairs_computed());

        let mut aa = build(&picks_a);
        aa.merge(build(&picks_a));
        prop_assert_eq!(aa.distinct_pairs_computed(), build(&picks_a).distinct_pairs_computed());

        let (sims_ab, _) = all_sims(&table, &thesaurus, &ids, ab);
        let (sims_ba, _) = all_sims(&table, &thesaurus, &ids, ba);
        prop_assert_eq!(sims_ab, sims_ba);
    }

    /// A store that round-trips the wire format merges exactly like the
    /// original (snapshot loading composes with sharded execution).
    #[test]
    fn merge_composes_with_wire_round_trip(
        vocab in 4usize..20,
        picks_a in proptest::collection::vec(0usize..1024, 0..30),
        picks_b in proptest::collection::vec(0usize..1024, 0..30),
    ) {
        let (table, ids) = vocabulary(vocab);
        let thesaurus = Thesaurus::with_default_stopwords();
        let a = filled_store(&table, &thesaurus, &ids, &picks_a);
        let b = filled_store(&table, &thesaurus, &ids, &picks_b);

        let round_trip = |s: &SimStore| -> SimStore {
            let mut w = cupid::model::WireWriter::new();
            s.write_wire(&mut w);
            let bytes = w.into_bytes();
            let mut r = cupid::model::WireReader::new(&bytes);
            let back = SimStore::read_wire(&mut r).unwrap();
            r.finish().unwrap();
            back
        };

        let mut direct = a.clone();
        direct.merge(b.clone());
        let mut via_wire = round_trip(&a);
        via_wire.merge(round_trip(&b));
        prop_assert_eq!(direct.distinct_pairs_computed(), via_wire.distinct_pairs_computed());
        let (sims_direct, _) = all_sims(&table, &thesaurus, &ids, direct);
        let (sims_wire, _) = all_sims(&table, &thesaurus, &ids, via_wire);
        prop_assert_eq!(sims_direct, sims_wire);
    }
}
