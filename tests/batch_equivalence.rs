//! Equivalence suite for the batch-matching subsystem (DESIGN.md §7).
//!
//! A `MatchSession` must be a pure optimization of independent
//! `Cupid::match_schemas` calls: over randomized schema corpora and
//! thesauri, the all-pairs session output — mappings, similarity
//! components, `lsim` tables — must be *bit-identical* to the
//! single-pair path, and identical again under 1, 2 and 4 worker
//! threads (shard assignment must never leak into results).

use cupid::core::linguistic::analyze;
use cupid::core::session::{MatchSession, MatchSummary};
use cupid::core::{Cupid, CupidConfig, MappingElement};
use cupid::corpus::synthetic::{generate, SyntheticConfig};
use cupid::lexical::{Thesaurus, ThesaurusBuilder};
use cupid::model::Schema;
use proptest::prelude::*;

/// Words that occur in the synthetic generator's vocabulary, so
/// randomized thesaurus entries bite instead of being dead weight.
const POOL: &[&str] = &[
    "order",
    "purchase",
    "customer",
    "client",
    "price",
    "cost",
    "quantity",
    "amount",
    "street",
    "road",
    "phone",
    "telephone",
    "bill",
    "invoice",
    "ship",
    "deliver",
    "item",
    "article",
    "vendor",
    "supplier",
    "payment",
    "region",
    "category",
    "product",
    "account",
    "branch",
    "id",
    "name",
    "code",
    "number",
    "date",
    "total",
    "status",
    "type",
    "flag",
    "line",
];

/// A thesaurus assembled from random picks over the generator's word
/// pool (same recipe as `tests/linguistic_equivalence.rs`).
fn random_thesaurus(picks: &[usize], coeffs: &[f64]) -> Thesaurus {
    let word = |i: usize| POOL[i % POOL.len()];
    let mut b = ThesaurusBuilder::new()
        .abbreviation(word(picks[0]), &[word(picks[1]), word(picks[2])])
        .concept(word(picks[3]), "money")
        .concept(word(picks[4]), "money")
        .stopword(word(picks[5]));
    for (k, w) in picks[6..].windows(2).enumerate() {
        let c = coeffs[k % coeffs.len()];
        b = if k % 2 == 0 {
            b.synonym(word(w[0]), word(w[1]), c)
        } else {
            b.hypernym(word(w[0]), word(w[1]), c)
        };
    }
    b.build().expect("coefficients are in range")
}

/// A corpus of 4 schemas: two synthetic pairs drawn from the shared
/// word pool, so cross-pair schemas still overlap linguistically (the
/// interesting case for a shared interner and memo).
fn corpus(seed: u64, leaves: usize) -> Vec<Schema> {
    let a = generate(&SyntheticConfig::sized(leaves, seed));
    let b = generate(&SyntheticConfig::sized(leaves, seed.wrapping_add(101)));
    vec![a.source, a.target, b.source, b.target]
}

/// Mapping equality down to the similarity bits: `PartialEq` on f64
/// would already fail on any divergence, but comparing bit patterns
/// rules out even `-0.0 == 0.0` coincidences.
fn assert_mappings_bit_identical(got: &[MappingElement], want: &[MappingElement], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length diverged");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.source_path, w.source_path, "{what}");
        assert_eq!(g.target_path, w.target_path, "{what}");
        assert_eq!(g.wsim.to_bits(), w.wsim.to_bits(), "{what}: wsim bits");
        assert_eq!(g.ssim.to_bits(), w.ssim.to_bits(), "{what}: ssim bits");
        assert_eq!(g.lsim.to_bits(), w.lsim.to_bits(), "{what}: lsim bits");
    }
}

/// Assert one session run (with the given thread count) reproduces the
/// independent single-pair outcomes bit for bit.
fn assert_session_equivalent(
    schemas: &[Schema],
    thesaurus: &Thesaurus,
    cfg: &CupidConfig,
    threads: usize,
) -> Vec<MatchSummary> {
    let mut session = MatchSession::new(cfg, thesaurus).threads(threads);
    let ids = session.add_corpus(schemas).expect("corpus expands");
    let summaries = session.match_all_pairs();
    assert_eq!(summaries.len(), schemas.len() * (schemas.len() - 1) / 2);

    let cupid = Cupid::with_config(cfg.clone(), thesaurus.clone());
    let mut k = 0;
    for i in 0..schemas.len() {
        for j in (i + 1)..schemas.len() {
            let summary = &summaries[k];
            k += 1;
            assert_eq!((summary.source, summary.target), (ids[i], ids[j]), "worklist order");
            let outcome = cupid.match_schemas(&schemas[i], &schemas[j]).expect("pair expands");
            assert_mappings_bit_identical(
                &summary.leaf_mappings,
                &outcome.leaf_mappings,
                &format!("leaf mappings ({i},{j}), {threads} threads"),
            );
            assert_mappings_bit_identical(
                &summary.nonleaf_mappings,
                &outcome.nonleaf_mappings,
                &format!("non-leaf mappings ({i},{j}), {threads} threads"),
            );
            assert_eq!(summary.compared_pairs, outcome.linguistic.compared_pairs);
            assert_eq!(summary.total_pairs, outcome.linguistic.total_pairs);
        }
    }
    summaries
}

/// Assert the session's per-pair `lsim` tables are bit-identical to the
/// single-pair engine's (the memo may only change *when* a token pair
/// is computed, never its value).
fn assert_lsim_bit_identical(schemas: &[Schema], thesaurus: &Thesaurus, cfg: &CupidConfig) {
    let mut session = MatchSession::new(cfg, thesaurus).threads(1);
    let ids = session.add_corpus(schemas).expect("corpus expands");
    for i in 0..schemas.len() {
        for j in (i + 1)..schemas.len() {
            let got = session.lsim_of(ids[i], ids[j]);
            let want = analyze(&schemas[i], &schemas[j], thesaurus, cfg);
            assert_eq!(
                got.matrix().max_abs_diff(want.lsim.matrix()),
                0.0,
                "lsim diverged for pair ({i}, {j})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// All-pairs session output is bit-identical to independent
    /// `Cupid::match` calls, and identical across 1, 2 and 4 threads,
    /// with the generator's own thesaurus.
    #[test]
    fn session_equals_independent_matches(seed in 0u64..10_000, leaves in 4usize..20) {
        let schemas = corpus(seed, leaves);
        let thesaurus = generate(&SyntheticConfig::sized(leaves, seed)).thesaurus;
        let cfg = CupidConfig::default();
        let one = assert_session_equivalent(&schemas, &thesaurus, &cfg, 1);
        for threads in [2, 4] {
            let multi = assert_session_equivalent(&schemas, &thesaurus, &cfg, threads);
            prop_assert_eq!(&multi, &one, "thread count changed summaries: {}", threads);
        }
        assert_lsim_bit_identical(&schemas, &thesaurus, &cfg);
    }

    /// The same equivalences under randomized thesauri (synonyms,
    /// hypernyms, abbreviations, concepts, stop words all vary).
    #[test]
    fn session_equals_independent_on_random_thesauri(
        seed in 0u64..10_000,
        leaves in 4usize..16,
        picks in proptest::collection::vec(0usize..64, 10..16),
        coeffs in proptest::collection::vec(0.05f64..1.0, 3..6),
    ) {
        let schemas = corpus(seed, leaves);
        let thesaurus = random_thesaurus(&picks, &coeffs);
        let cfg = CupidConfig::default();
        let one = assert_session_equivalent(&schemas, &thesaurus, &cfg, 1);
        for threads in [2, 4] {
            let multi = assert_session_equivalent(&schemas, &thesaurus, &cfg, threads);
            prop_assert_eq!(&multi, &one, "thread count changed summaries: {}", threads);
        }
        assert_lsim_bit_identical(&schemas, &thesaurus, &cfg);
    }

    /// An empty thesaurus forces every word pair down the affix
    /// fallback — maximum pressure on the shared memo.
    #[test]
    fn session_equals_independent_without_thesaurus(seed in 0u64..10_000, leaves in 4usize..16) {
        let schemas = corpus(seed, leaves);
        let thesaurus = Thesaurus::empty();
        let cfg = CupidConfig::default();
        let one = assert_session_equivalent(&schemas, &thesaurus, &cfg, 1);
        let multi = assert_session_equivalent(&schemas, &thesaurus, &cfg, 4);
        prop_assert_eq!(&multi, &one);
    }
}
