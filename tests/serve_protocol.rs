//! Property suite for the daemon's wire protocol (DESIGN.md §9.2).
//!
//! Two contracts:
//!
//! * **Round trip** — every request/response frame decodes back to a
//!   value `==` the one encoded, over randomized payloads including
//!   full [`MatchSummary`] values with arbitrary `f64` bit patterns
//!   (similarity values travel by bits, so equality here means
//!   *bit-identical*).
//! * **Loud rejection** — flipping any byte of an encoded frame, or
//!   truncating it anywhere, must fail to read: the frame checksum (or
//!   the strict payload decoder behind it) catches every single-byte
//!   corruption, so a daemon never serves a damaged summary.

use cupid::core::session::SimilarityEntry;
use cupid::core::{
    Explanation, MappingElement, MatchSummary, PairExplanation, SchemaId, StructuralContext,
    TokenPairScore,
};
use cupid::lexical::{TokenSimProvenance, TokenType};
use cupid::model::{read_frame, NodeId};
use cupid::serve::{
    BatchItem, BatchOutcome, KindLatency, MutationOp, Request, Response, StatsReport, TraceRecord,
    STAGES,
};
use proptest::prelude::*;

/// splitmix64 — a tiny deterministic generator so summaries with
/// arbitrary float bit patterns can be derived from one drawn seed
/// (the proptest shim has no tuple/map strategies).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn word(&mut self) -> String {
        let n = self.next();
        format!("w{:x}", n & 0xffff_ffff)
    }
}

/// A structurally arbitrary summary: ids, mappings and top pairs with
/// raw `f64` bit patterns (NaNs and negative zero included roughly one
/// draw in eight), plus large counters.
fn summary_from(seed: u64) -> MatchSummary {
    let mut mix = Mix(seed);
    let f = |mix: &mut Mix| {
        let bits = mix.next();
        // Bias some draws to the interesting corners of f64 space.
        match bits & 0b111 {
            0 => f64::from_bits(bits | 0x7ff8_0000_0000_0000), // NaN payloads
            1 => -0.0,
            _ => f64::from_bits(bits),
        }
    };
    let mappings = |mix: &mut Mix| {
        (0..(mix.next() % 4) as usize)
            .map(|i| MappingElement {
                source: NodeId::from_index(i),
                target: NodeId::from_index(i + 1),
                source_path: mix.word(),
                target_path: mix.word(),
                wsim: f(mix),
                ssim: f(mix),
                lsim: f(mix),
            })
            .collect::<Vec<_>>()
    };
    MatchSummary {
        source: SchemaId::from_index((seed % 64) as usize),
        target: SchemaId::from_index((seed % 61) as usize),
        leaf_mappings: mappings(&mut mix),
        nonleaf_mappings: mappings(&mut mix),
        top_pairs: (0..(mix.next() % 4) as usize)
            .map(|_| SimilarityEntry {
                source_path: mix.word(),
                target_path: mix.word(),
                wsim: f(&mut mix),
            })
            .collect(),
        compared_pairs: (mix.next() % 1_000_000) as usize,
        total_pairs: (mix.next() % 3_000_000) as usize,
    }
}

/// Summaries compare equal iff their similarity *bits* agree — plain
/// `==` on f64 fields would treat NaN ≠ NaN.
fn summary_bits_eq(a: &MatchSummary, b: &MatchSummary) -> bool {
    let m_eq = |x: &MappingElement, y: &MappingElement| {
        x.source == y.source
            && x.target == y.target
            && x.source_path == y.source_path
            && x.target_path == y.target_path
            && x.wsim.to_bits() == y.wsim.to_bits()
            && x.ssim.to_bits() == y.ssim.to_bits()
            && x.lsim.to_bits() == y.lsim.to_bits()
    };
    a.source == b.source
        && a.target == b.target
        && a.leaf_mappings.len() == b.leaf_mappings.len()
        && a.leaf_mappings.iter().zip(&b.leaf_mappings).all(|(x, y)| m_eq(x, y))
        && a.nonleaf_mappings.len() == b.nonleaf_mappings.len()
        && a.nonleaf_mappings.iter().zip(&b.nonleaf_mappings).all(|(x, y)| m_eq(x, y))
        && a.top_pairs.len() == b.top_pairs.len()
        && a.top_pairs.iter().zip(&b.top_pairs).all(|(x, y)| {
            x.source_path == y.source_path
                && x.target_path == y.target_path
                && x.wsim.to_bits() == y.wsim.to_bits()
        })
        && a.compared_pairs == b.compared_pairs
        && a.total_pairs == b.total_pairs
}

/// A structurally arbitrary explanation: mapping breakdowns with raw
/// `f64` bit patterns, every provenance tag, and boundary counters.
fn explanation_from(a: &str, b: &str, seed: u64) -> PairExplanation {
    let mut mix = Mix(seed);
    let f = |mix: &mut Mix| {
        let bits = mix.next();
        match bits & 0b111 {
            0 => f64::from_bits(bits | 0x7ff8_0000_0000_0000), // NaN payloads
            1 => -0.0,
            _ => f64::from_bits(bits),
        }
    };
    let provenance = |mix: &mut Mix| match mix.next() % 4 {
        0 => TokenSimProvenance::ExactSymbol,
        1 => TokenSimProvenance::Thesaurus,
        2 => TokenSimProvenance::Affix {
            prefix_len: (mix.next() & 0xff) as u32,
            suffix_len: (mix.next() & 0xff) as u32,
            capped: mix.next() % 2 == 0,
        },
        _ => TokenSimProvenance::NoMatch,
    };
    let mappings = (0..(mix.next() % 4) as usize)
        .map(|i| Explanation {
            source: NodeId::from_index(i),
            target: NodeId::from_index(i + 2),
            source_path: mix.word(),
            target_path: mix.word(),
            leaf: mix.next() % 2 == 0,
            wsim: f(&mut mix),
            ssim: f(&mut mix),
            lsim: f(&mut mix),
            w_struct: f(&mut mix),
            th_accept: f(&mut mix),
            name_similarity: f(&mut mix),
            category_scale: f(&mut mix),
            token_pairs: (0..(mix.next() % 3) as usize)
                .map(|_| TokenPairScore {
                    source_token: mix.word(),
                    target_token: mix.word(),
                    token_type: TokenType::ALL[(mix.next() % 5) as usize],
                    sim: f(&mut mix),
                    provenance: provenance(&mut mix),
                })
                .collect(),
            structure: StructuralContext {
                source_leaves: (mix.next() % 1_000) as usize,
                target_leaves: (mix.next() % 1_000) as usize,
                source_strong_links: (mix.next() % 1_000) as usize,
                target_strong_links: (mix.next() % 1_000) as usize,
                main_pass_wsim: f(&mut mix),
                pruned: mix.next() % 2 == 0,
                increased: mix.next() % 2 == 0,
                decreased: mix.next() % 2 == 0,
            },
        })
        .collect();
    PairExplanation {
        source_name: a.to_string(),
        target_name: b.to_string(),
        mappings,
        compared_pairs: (mix.next() % 1_000_000) as usize,
        total_pairs: (mix.next() % 3_000_000) as usize,
        increases: (mix.next() % 10_000) as usize,
        decreases: (mix.next() % 10_000) as usize,
    }
}

/// Explanations compare equal iff their similarity *bits* agree (plain
/// `==` would treat NaN ≠ NaN), everything else by `==`.
fn explanation_bits_eq(a: &PairExplanation, b: &PairExplanation) -> bool {
    let f_eq = |x: f64, y: f64| x.to_bits() == y.to_bits();
    a.source_name == b.source_name
        && a.target_name == b.target_name
        && a.compared_pairs == b.compared_pairs
        && a.total_pairs == b.total_pairs
        && a.increases == b.increases
        && a.decreases == b.decreases
        && a.mappings.len() == b.mappings.len()
        && a.mappings.iter().zip(&b.mappings).all(|(x, y)| {
            x.source == y.source
                && x.target == y.target
                && x.source_path == y.source_path
                && x.target_path == y.target_path
                && x.leaf == y.leaf
                && f_eq(x.wsim, y.wsim)
                && f_eq(x.ssim, y.ssim)
                && f_eq(x.lsim, y.lsim)
                && f_eq(x.w_struct, y.w_struct)
                && f_eq(x.th_accept, y.th_accept)
                && f_eq(x.name_similarity, y.name_similarity)
                && f_eq(x.category_scale, y.category_scale)
                && x.token_pairs.len() == y.token_pairs.len()
                && x.token_pairs.iter().zip(&y.token_pairs).all(|(s, t)| {
                    s.source_token == t.source_token
                        && s.target_token == t.target_token
                        && s.token_type == t.token_type
                        && f_eq(s.sim, t.sim)
                        && s.provenance == t.provenance
                })
                && x.structure.source_leaves == y.structure.source_leaves
                && x.structure.target_leaves == y.structure.target_leaves
                && x.structure.source_strong_links == y.structure.source_strong_links
                && x.structure.target_strong_links == y.structure.target_strong_links
                && f_eq(x.structure.main_pass_wsim, y.structure.main_pass_wsim)
                && x.structure.pruned == y.structure.pruned
                && x.structure.increased == y.structure.increased
                && x.structure.decreased == y.structure.decreased
        })
}

/// Every request variant, parameterized by the drawn values.
fn requests(sdl: &str, a: &str, b: &str, k: u32) -> Vec<Request> {
    vec![
        Request::AddSchema { sdl: sdl.to_string() },
        Request::ReplaceSchema { sdl: sdl.to_string() },
        Request::RemoveSchema { name: a.to_string() },
        Request::MatchPair { source: a.to_string(), target: b.to_string() },
        Request::TopK { k },
        Request::Stats,
        Request::Save,
        Request::Shutdown,
        Request::Batch {
            items: vec![
                BatchItem::MatchPair { source: a.to_string(), target: b.to_string() },
                BatchItem::TopK { k },
                BatchItem::Stats,
            ],
        },
        Request::Batch { items: Vec::new() },
        Request::Mutate {
            request_id: k as u64 ^ 0xdead_beef,
            op: MutationOp::Add { sdl: sdl.to_string() },
        },
        Request::Mutate {
            request_id: u64::MAX - k as u64,
            op: MutationOp::Replace { sdl: sdl.to_string() },
        },
        Request::Mutate { request_id: k as u64, op: MutationOp::Remove { name: a.to_string() } },
        Request::SlowLog,
        Request::Explain { source: a.to_string(), target: b.to_string() },
    ]
}

/// A batch entry mix covering every outcome tag plus the error slot.
fn batch_entries(
    a: &str,
    b: &str,
    summary: &MatchSummary,
    report: &StatsReport,
) -> Vec<Result<BatchOutcome, String>> {
    vec![
        Ok(BatchOutcome::Matched {
            source: a.to_string(),
            target: b.to_string(),
            summary: summary.clone(),
        }),
        Err(format!("no schema `{b}` in repository")),
        Ok(BatchOutcome::TopKList {
            names: vec![a.to_string(), b.to_string()],
            summaries: vec![summary.clone()],
        }),
        Ok(BatchOutcome::Stats(report.clone())),
    ]
}

/// A stats payload with busy per-kind histograms (and one empty kind).
fn report_from(a: &str, n: u64) -> StatsReport {
    StatsReport {
        schemas: n,
        cached_pairs: n.wrapping_mul(3),
        pairs_executed: n / 2,
        vocab_size: n.wrapping_add(17),
        distinct_pairs_computed: n.rotate_left(5),
        sim_chunks: n % 97,
        sim_bytes: n.wrapping_mul(32),
        requests_served: n,
        journal_records: n.rotate_left(9),
        journal_bytes: n.wrapping_mul(41),
        replayed_records: n % 13,
        compactions: n % 7,
        shed_requests: n.rotate_left(3),
        idle_disconnects: n % 29,
        deadline_cuts: n % 31,
        deduped_mutations: n.rotate_left(11),
        slow_requests: n % 411,
        slow_log_entries: n % 33,
        metrics_scrapes: n.rotate_left(13),
        vocab_bytes: n.wrapping_mul(57),
        explanations_served: n % 203,
        last_fsync_error: if n % 2 == 0 {
            String::new()
        } else {
            format!("{a}: injected fault {n:#x}")
        },
        latencies: vec![
            KindLatency {
                kind: "match_pair".to_string(),
                count: n % 1000,
                total_ns: n.wrapping_mul(7),
                buckets: (0..40u32).map(|i| n.rotate_left(i) & 0xff).collect(),
            },
            KindLatency::empty("save"),
        ],
        stage_latencies: vec![
            KindLatency {
                kind: "batch/exec_uncached".to_string(),
                count: n % 500,
                total_ns: n.wrapping_mul(11),
                buckets: (0..40u32).map(|i| n.rotate_right(i) & 0x7f).collect(),
            },
            KindLatency {
                kind: "match_pair/lock_wait_read".to_string(),
                count: 1 + n % 9,
                total_ns: n.wrapping_mul(3),
                buckets: (0..40u32).map(|i| (n >> (i % 17)) & 0x3).collect(),
            },
        ],
    }
}

/// A slow-log trace with a full stage breakdown.
fn trace_record(a: &str, n: u64) -> TraceRecord {
    TraceRecord {
        trace_id: n,
        kind: a.to_string(),
        total_ns: n.rotate_left(17),
        stage_ns: (0..STAGES as u64).map(|i| n.rotate_left(i as u32) & 0xffff_ffff).collect(),
        finished_unix_ms: n.rotate_right(21),
    }
}

/// Every response variant.
fn responses(a: &str, b: &str, summary: &MatchSummary, n: u64) -> Vec<Response> {
    vec![
        Response::Added { name: a.to_string() },
        Response::Replaced { name: b.to_string() },
        Response::Removed { name: a.to_string() },
        Response::Matched {
            source: a.to_string(),
            target: b.to_string(),
            summary: summary.clone(),
        },
        Response::TopKList {
            names: vec![a.to_string(), b.to_string()],
            summaries: vec![summary.clone(), summary.clone()],
        },
        Response::Stats(report_from(a, n)),
        Response::Saved { bytes: n },
        Response::ShuttingDown,
        Response::Error { message: b.to_string() },
        Response::Batch { entries: batch_entries(a, b, summary, &report_from(a, n)) },
        Response::Batch { entries: Vec::new() },
        Response::Overloaded { max_inflight: n % 4096, queue_deadline_ms: n.rotate_left(7) },
        Response::SlowLog { entries: vec![trace_record(a, n), trace_record(b, n.wrapping_add(1))] },
        Response::SlowLog { entries: Vec::new() },
        Response::Explanation(explanation_from(a, b, n)),
        Response::Explanation(explanation_from(b, a, n.wrapping_add(7))),
    ]
}

fn request_frame(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    req.write_to(&mut buf).unwrap();
    buf
}

fn response_frame(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    resp.write_to(&mut buf).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// encode → decode is the identity on every request variant, and a
    /// stream of many frames reads back in order.
    #[test]
    fn requests_round_trip(
        sdl in "[ -~]{0,40}",
        a in "[A-Za-z][A-Za-z0-9_.]{0,11}",
        b in "[A-Za-z][A-Za-z0-9_.]{0,11}",
        k in 0u32..1000,
    ) {
        let all = requests(&sdl, &a, &b, k);
        let mut stream = Vec::new();
        for req in &all {
            req.write_to(&mut stream).unwrap();
        }
        let mut r = &stream[..];
        for want in &all {
            let got = Request::read_from(&mut r).unwrap().expect("frame present");
            prop_assert_eq!(&got, want);
        }
        prop_assert_eq!(Request::read_from(&mut r).unwrap(), None);
    }

    /// encode → decode is the identity on every response variant,
    /// similarity bits included.
    #[test]
    fn responses_round_trip(
        a in "[A-Za-z][A-Za-z0-9_.]{0,11}",
        b in "[A-Za-z][A-Za-z0-9_.]{0,11}",
        seed in 0u64..u64::MAX,
        n in 0u64..u64::MAX,
    ) {
        let summary = summary_from(seed);
        for want in responses(&a, &b, &summary, n) {
            let bytes = response_frame(&want);
            let mut r = &bytes[..];
            let got = Response::read_from(&mut r).unwrap().expect("frame present");
            prop_assert_eq!(Response::read_from(&mut r).unwrap(), None);
            match (&got, &want) {
                (Response::Matched { summary: g, .. }, Response::Matched { summary: w, .. }) => {
                    prop_assert!(summary_bits_eq(g, w), "summary bits diverged");
                }
                (
                    Response::TopKList { summaries: g, names: gn },
                    Response::TopKList { summaries: w, names: wn },
                ) => {
                    prop_assert_eq!(gn, wn);
                    prop_assert_eq!(g.len(), w.len());
                    for (x, y) in g.iter().zip(w) {
                        prop_assert!(summary_bits_eq(x, y), "summary bits diverged");
                    }
                }
                (Response::Batch { entries: g }, Response::Batch { entries: w }) => {
                    prop_assert_eq!(g.len(), w.len());
                    for (x, y) in g.iter().zip(w) {
                        match (x, y) {
                            (
                                Ok(BatchOutcome::Matched { source: gs, target: gt, summary: gm }),
                                Ok(BatchOutcome::Matched { source: ws, target: wt, summary: wm }),
                            ) => {
                                prop_assert_eq!(gs, ws);
                                prop_assert_eq!(gt, wt);
                                prop_assert!(summary_bits_eq(gm, wm), "summary bits diverged");
                            }
                            (
                                Ok(BatchOutcome::TopKList { names: gn, summaries: gs }),
                                Ok(BatchOutcome::TopKList { names: wn, summaries: ws }),
                            ) => {
                                prop_assert_eq!(gn, wn);
                                prop_assert_eq!(gs.len(), ws.len());
                                for (gsum, wsum) in gs.iter().zip(ws) {
                                    prop_assert!(summary_bits_eq(gsum, wsum), "summary bits diverged");
                                }
                            }
                            (x, y) => prop_assert_eq!(x, y),
                        }
                    }
                }
                (Response::Explanation(g), Response::Explanation(w)) => {
                    prop_assert!(explanation_bits_eq(g, w), "explanation bits diverged");
                }
                (got, want) => prop_assert_eq!(got, want),
            }
        }
    }

    /// Single-byte corruption anywhere in a frame is rejected loudly,
    /// and so is truncation at any offset.
    #[test]
    fn corrupt_and_truncated_frames_rejected(
        sdl in "[ -~]{0,40}",
        a in "[A-Za-z][A-Za-z0-9_.]{0,11}",
        b in "[A-Za-z][A-Za-z0-9_.]{0,11}",
        seed in 0u64..u64::MAX,
        byte in 0usize..10_000,
    ) {
        let summary = summary_from(seed);
        let mut frames: Vec<Vec<u8>> =
            requests(&sdl, &a, &b, 5).iter().map(request_frame).collect();
        frames.extend(responses(&a, &b, &summary, 12_345).iter().map(response_frame));
        for bytes in frames {
            let flip = byte % bytes.len();
            let mut broken = bytes.clone();
            broken[flip] ^= 0x01;
            prop_assert!(
                read_frame(&mut &broken[..]).is_err(),
                "flipped byte {} of {} slipped through", flip, bytes.len()
            );
            let cut = byte % bytes.len();
            if cut > 0 {
                prop_assert!(
                    read_frame(&mut &bytes[..cut]).is_err(),
                    "truncation at {} slipped through", cut
                );
            }
        }
    }
}
