//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the external dependencies are replaced by small, API-compatible
//! shims (see the workspace README, "Dependency policy"). This crate
//! implements exactly the `rand` 0.8 API subset the workspace uses:
//!
//! * [`SeedableRng::seed_from_u64`] / [`rngs::StdRng`],
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges and
//!   half-open float ranges,
//! * [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256** seeded via SplitMix64 — statistically
//! solid for test-data generation and fully deterministic per seed,
//! which is all the workspace (synthetic corpus generation) needs. It
//! makes no attempt to be stream-compatible with the real `StdRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types from which [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // `start + unit*span` can round up to exactly `end` when the
        // ulp at `end` exceeds the sampled offset; resample to keep the
        // half-open contract (terminates: at most ~half of offsets can
        // round onto `end`).
        loop {
            let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
            if v < self.end {
                return v;
            }
        }
    }
}

/// Sample uniformly from `[0, span)` without modulo bias (Lemire's
/// rejection method on the high 64 bits of a 128-bit product).
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Map a `u64` to a float in `[0, 1)` using the high 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// The user-facing sampling interface.
pub trait Rng {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Extension trait adding random operations to slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Pick one element uniformly, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(2usize..=6);
            assert!((2..=6).contains(&w));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn f64_range_stays_half_open_despite_rounding() {
        // ulp at 1e16 is 2.0: naive `start + unit*span` rounds onto the
        // excluded end for about half the offsets.
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(1.0e16..1.0e16 + 2.0);
            assert!(v < 1.0e16 + 2.0, "got excluded upper bound {v}");
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((350..=650).contains(&hits), "suspicious p=0.5 hit count {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert_ne!(v, orig, "32 elements should not shuffle to identity");
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
