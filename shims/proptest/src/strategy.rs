//! The [`Strategy`] trait and its implementations for ranges and
//! regex-literal strings.

use std::ops::{Range, RangeInclusive};

use crate::string::RegexGen;
use crate::test_runner::TestRng;

/// A source of generated values for property tests.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply produces one value per case from the deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.range_u64(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (rng.range_u64(span + 1) as $t)
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        rng.unit_range(self.start, self.end)
    }
}

/// String literals act as regex strategies, like in real proptest. The
/// pattern is compiled on every case; for the short patterns property
/// tests use this is negligible.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        RegexGen::compile(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

/// A strategy producing `Vec`s of an element strategy's values, with a
/// length drawn from a range — the shim's counterpart of
/// `proptest::collection::vec`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Build a [`VecStrategy`]: `n` elements of `element`, `n` drawn from
/// `len`.
pub fn vec_strategy<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range strategy");
    VecStrategy { element, len }
}
