//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the external dependencies are replaced by small, API-compatible
//! shims (see the workspace README, "Dependency policy"). This crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `ident in strategy` bindings and an
//!   optional `#![proptest_config(..)]` header,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`],
//! * [`Strategy`](strategy::Strategy) implementations for integer and
//!   float ranges and for
//!   string literals / [`string::string_regex`] over a practical regex
//!   subset (character classes and `{n}`/`{n,m}`/`?`/`+`/`*`
//!   quantifiers),
//! * [`collection::vec`] over any of the above,
//! * [`test_runner::Config`] (`ProptestConfig`) with `with_cases`.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the generated inputs so it can be reproduced by reading them off
//! the panic message. Generation is deterministic per test (the RNG is
//! seeded from the test's module path), so CI failures reproduce
//! locally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod string;
pub mod test_runner;

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::{vec_strategy, Strategy, VecStrategy};

    /// `Vec`s of `element`'s values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        vec_strategy(element, len)
    }
}

/// The commonly used items, for glob import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(expr)]          // optional
///     #[test]
///     fn name(arg in strategy, ...) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest {}: too many rejected cases ({} attempts, {} accepted)",
                        stringify!($name), attempts, accepted,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    // Render inputs before the body runs: the body may
                    // consume the values.
                    let inputs: ::std::string::String =
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", ");
                    // Catch panics from inside the body (plain `assert!`,
                    // `.expect()`, …) so the generated inputs always reach
                    // the output, then re-raise.
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                            || {
                                $body
                                // allow: a body ending in panic!/todo! is fine
                                #[allow(unreachable_code)]
                                return ::std::result::Result::Ok(());
                            },
                        )) {
                            Ok(r) => r,
                            Err(payload) => {
                                eprintln!(
                                    "proptest {} panicked\n  inputs: {}",
                                    stringify!($name), inputs,
                                );
                                ::std::panic::resume_unwind(payload);
                            }
                        };
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed: {}\n  inputs: {}",
                                stringify!($name), msg, inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Discard the current case (without counting it as a run) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn bindings_and_assertions_work(n in 1usize..10, s in "[a-z]{2,5}") {
            prop_assert!((1..10).contains(&n));
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert_ne!(s.len(), 0);
        }

        #[test]
        fn assume_discards_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        #[should_panic(expected = "proptest prop_assert_failure_panics failed")]
        fn prop_assert_failure_panics(n in 0u32..10) {
            prop_assert!(n > 100, "n was {}", n);
        }

        #[test]
        #[should_panic(expected = "plain panic inside body")]
        fn body_panics_propagate(_n in 0u32..4) {
            // Exercises the catch_unwind path: inputs are printed to
            // stderr, then the original panic resumes.
            panic!("plain panic inside body");
        }
    }
}
