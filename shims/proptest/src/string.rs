//! String strategies from regular-expression patterns.
//!
//! Supports the practical subset of regex syntax the workspace's
//! property tests use: literal characters, `.`, `\d`/`\w`/`\s` and
//! escaped literals, character classes with ranges (`[A-Za-z0-9_]`),
//! and the quantifiers `{n}`, `{n,m}`, `{n,}`, `?`, `*`, `+`
//! (unbounded repetition is capped at 8). Alternation, groups and
//! anchors are rejected with an error.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Error produced when a pattern uses unsupported or malformed syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported regex: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Inclusive character ranges forming one matchable position.
#[derive(Debug, Clone)]
struct CharSet(Vec<(char, char)>);

impl CharSet {
    fn single(c: char) -> Self {
        CharSet(vec![(c, c)])
    }

    fn size(&self) -> u32 {
        self.0.iter().map(|&(lo, hi)| hi as u32 - lo as u32 + 1).sum()
    }

    fn pick(&self, rng: &mut TestRng) -> char {
        let mut idx = rng.below(self.size() as usize) as u32;
        for &(lo, hi) in &self.0 {
            let span = hi as u32 - lo as u32 + 1;
            if idx < span {
                return char::from_u32(lo as u32 + idx).expect("ranges hold valid chars");
            }
            idx -= span;
        }
        unreachable!("index bounded by total size")
    }
}

/// One pattern element: a character set and its repetition bounds.
#[derive(Debug, Clone)]
struct Piece {
    set: CharSet,
    min: u32,
    max: u32,
}

/// A compiled generator for a regex pattern; implements
/// [`Strategy<Value = String>`](Strategy).
#[derive(Debug, Clone)]
pub struct RegexGen {
    pieces: Vec<Piece>,
}

/// Cap applied to `*`, `+` and `{n,}` repetition.
const UNBOUNDED_CAP: u32 = 8;

impl RegexGen {
    /// Compile `pattern`, rejecting syntax outside the supported subset.
    pub fn compile(pattern: &str) -> Result<RegexGen, Error> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let set = match c {
                '[' => parse_class(&mut chars)?,
                '\\' => escape_set(chars.next().ok_or_else(|| err("trailing backslash"))?)?,
                '.' => CharSet(vec![(' ', '~')]),
                '(' | ')' | '|' | '^' | '$' => {
                    return Err(err(format!("metacharacter {c:?} not supported")));
                }
                '{' | '}' | '*' | '+' | '?' => {
                    return Err(err(format!("dangling quantifier {c:?}")));
                }
                lit => CharSet::single(lit),
            };
            let (min, max) = parse_quantifier(&mut chars)?;
            pieces.push(Piece { set, min, max });
        }
        Ok(RegexGen { pieces })
    }

    /// Generate one matching string.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for p in &self.pieces {
            let n = if p.min == p.max {
                p.min
            } else {
                p.min + rng.below((p.max - p.min + 1) as usize) as u32
            };
            for _ in 0..n {
                out.push(p.set.pick(rng));
            }
        }
        out
    }
}

impl Strategy for RegexGen {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        RegexGen::generate(self, rng)
    }
}

/// Compile `pattern` into a [`Strategy`] generating matching strings.
pub fn string_regex(pattern: &str) -> Result<RegexGen, Error> {
    RegexGen::compile(pattern)
}

fn err(msg: impl Into<String>) -> Error {
    Error(msg.into())
}

fn escape_set(c: char) -> Result<CharSet, Error> {
    match c {
        'd' => Ok(CharSet(vec![('0', '9')])),
        'w' => Ok(CharSet(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')])),
        's' => Ok(CharSet(vec![(' ', ' '), ('\t', '\t')])),
        'n' => Ok(CharSet::single('\n')),
        't' => Ok(CharSet::single('\t')),
        'D' | 'W' | 'S' => Err(err(format!("negated class \\{c} not supported"))),
        lit => Ok(CharSet::single(lit)),
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<CharSet, Error> {
    let mut ranges: Vec<(char, char)> = Vec::new();
    if chars.peek() == Some(&'^') {
        return Err(err("negated character class not supported"));
    }
    loop {
        let c = chars.next().ok_or_else(|| err("unterminated character class"))?;
        match c {
            ']' => break,
            '\\' => {
                let esc = chars.next().ok_or_else(|| err("trailing backslash in class"))?;
                ranges.extend(escape_set(esc)?.0);
            }
            lo => {
                if chars.peek() == Some(&'-') {
                    chars.next();
                    match chars.peek() {
                        Some(&']') | None => {
                            // trailing '-' is a literal
                            ranges.push((lo, lo));
                            ranges.push(('-', '-'));
                        }
                        Some(&hi) => {
                            chars.next();
                            if hi < lo {
                                return Err(err(format!("inverted range {lo}-{hi}")));
                            }
                            ranges.push((lo, hi));
                        }
                    }
                } else {
                    ranges.push((lo, lo));
                }
            }
        }
    }
    if ranges.is_empty() {
        return Err(err("empty character class"));
    }
    Ok(CharSet(ranges))
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<(u32, u32), Error> {
    match chars.peek() {
        Some('?') => {
            chars.next();
            Ok((0, 1))
        }
        Some('*') => {
            chars.next();
            Ok((0, UNBOUNDED_CAP))
        }
        Some('+') => {
            chars.next();
            Ok((1, UNBOUNDED_CAP))
        }
        Some('{') => {
            chars.next();
            let mut body = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => body.push(c),
                    None => return Err(err("unterminated {} quantifier")),
                }
            }
            let parse =
                |s: &str| s.trim().parse::<u32>().map_err(|_| err(format!("bad bound {s:?}")));
            let (min, max) = match body.split_once(',') {
                None => {
                    let n = parse(&body)?;
                    (n, n)
                }
                Some((lo, "")) => {
                    let n = parse(lo)?;
                    (n, n.max(UNBOUNDED_CAP))
                }
                Some((lo, hi)) => (parse(lo)?, parse(hi)?),
            };
            if min > max {
                return Err(err(format!("inverted quantifier {{{body}}}")));
            }
            Ok((min, max))
        }
        _ => Ok((1, 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn check(pattern: &str, verify: impl Fn(&str) -> bool) {
        let gen_ = RegexGen::compile(pattern).expect("pattern compiles");
        let mut rng = TestRng::for_test(pattern);
        for _ in 0..200 {
            let s = gen_.generate(&mut rng);
            assert!(verify(&s), "pattern {pattern:?} generated invalid {s:?}");
        }
    }

    #[test]
    fn identifier_pattern() {
        check("[A-Za-z][A-Za-z0-9_]{0,14}", |s| {
            let mut cs = s.chars();
            let first = cs.next().expect("non-empty");
            first.is_ascii_alphabetic()
                && s.len() <= 15
                && cs.all(|c| c.is_ascii_alphanumeric() || c == '_')
        });
    }

    #[test]
    fn bounded_lowercase() {
        check("[a-z]{1,12}", |s| {
            (1..=12).contains(&s.len()) && s.chars().all(|c| c.is_ascii_lowercase())
        });
    }

    #[test]
    fn quantifiers() {
        check("a?b+c*", |s| {
            // a{0,1} then b{1,8} then c{0,8}
            let a = s.chars().take_while(|&c| c == 'a').count();
            let rest: String = s.chars().skip(a).collect();
            let b = rest.chars().take_while(|&c| c == 'b').count();
            let c = rest.chars().skip(b).take_while(|&c| c == 'c').count();
            a <= 1 && (1..=8).contains(&b) && c <= 8 && a + b + c == s.len()
        });
    }

    #[test]
    fn escapes_and_exact_counts() {
        check("\\d{3}-\\w{2}", |s| {
            let bytes: Vec<char> = s.chars().collect();
            bytes.len() == 6
                && bytes[..3].iter().all(|c| c.is_ascii_digit())
                && bytes[3] == '-'
                && bytes[4..].iter().all(|c| c.is_ascii_alphanumeric() || *c == '_')
        });
    }

    #[test]
    fn rejects_unsupported() {
        for p in ["(ab)", "a|b", "[^a]", "^a$", "*a"] {
            assert!(RegexGen::compile(p).is_err(), "{p:?} should be rejected");
        }
    }

    #[test]
    fn exact_distribution_covers_class() {
        let gen_ = RegexGen::compile("[ab]").expect("compiles");
        let mut rng = TestRng::for_test("coverage");
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..64 {
            match gen_.generate(&mut rng).as_str() {
                "a" => seen_a = true,
                "b" => seen_b = true,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(seen_a && seen_b);
    }
}
