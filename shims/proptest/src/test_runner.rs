//! Test-runner configuration, the case-level error type, and the
//! deterministic RNG behind generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases and defaults otherwise.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by [`prop_assume!`](crate::prop_assume);
    /// it does not count toward the case budget.
    Reject(String),
    /// A [`prop_assert!`](crate::prop_assert)-family assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The RNG driving strategy generation. Deterministic: seeded from the
/// test's module path, so every run (local or CI) generates the same
/// cases.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for the named test (pass `module_path!()::test_name`).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, well-spread seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform `usize` in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }

    /// Uniform `u64` in `[0, span)`; `span` must be non-zero. Unbiased
    /// (delegates to the rand shim's rejection sampler).
    pub fn range_u64(&mut self, span: u64) -> u64 {
        self.0.gen_range(0..span)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn unit_range(&mut self, lo: f64, hi: f64) -> f64 {
        self.0.gen_range(lo..hi)
    }
}
