//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the external dependencies are replaced by small, API-compatible
//! shims (see the workspace README, "Dependency policy"). This crate
//! implements the criterion API subset the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros — with a
//! simple wall-clock measurement loop instead of criterion's statistical
//! machinery:
//!
//! * each benchmark is warmed up for ~100 ms, then timed for ~1 s or
//!   `sample_size` batches, whichever comes first;
//! * the mean, minimum and maximum batch time per iteration are printed
//!   in a criterion-like one-line format;
//! * without the `--bench` flag (i.e. when the bench binary is run
//!   directly) each benchmark runs a single iteration, so a bench
//!   target doubles as a smoke test — the same behavior as real
//!   criterion;
//! * a positional argument (`cargo bench --bench end_to_end -- fig2`)
//!   acts as a substring filter on benchmark ids, like real criterion.
//!
//! Numbers from this shim are honest wall-clock measurements and fine
//! for relative comparisons on a quiet machine, but they lack
//! criterion's outlier rejection and confidence intervals; see
//! BENCHMARKS.md at the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long a benchmark is warmed up before measurement.
const WARM_UP: Duration = Duration::from_millis(100);
/// Measurement budget per benchmark.
const MEASUREMENT: Duration = Duration::from_secs(1);

/// Count of benchmarks executed process-wide, across every `Criterion`
/// instance (one per `criterion_group!`), so the no-match warning only
/// fires when the whole binary ran nothing.
static EXECUTED: AtomicU32 = AtomicU32::new(0);

/// Called by [`criterion_main!`] after all groups ran. A positional
/// argument that was really the value of some flag would silently
/// filter out everything; make that loud.
#[doc(hidden)]
pub fn warn_if_filter_matched_nothing() {
    if EXECUTED.load(Ordering::Relaxed) == 0 {
        if let Some(f) = arg_filter() {
            eprintln!("warning: filter {f:?} matched no benchmark ids; nothing was run");
        }
    }
}

fn arg_filter() -> Option<String> {
    std::env::args().skip(1).find(|a| !a.starts_with('-'))
}

/// The benchmark manager handed to `criterion_group!` target functions.
#[derive(Debug)]
pub struct Criterion {
    smoke_test: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Like real criterion: `cargo bench` passes `--bench`; without it
        // (direct execution of the bench binary) run each bench once as
        // a smoke test.
        // The first positional argument is a substring filter on
        // benchmark ids (`cargo bench --bench end_to_end -- fig2`).
        let smoke_test = !std::env::args().any(|a| a == "--bench");
        Criterion { smoke_test, filter: arg_filter() }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup { criterion: self, name, sample_size: 100 }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = id.to_string();
        if self.selected(&label) {
            run_one(&label, self.smoke_test, 100, &mut f);
        }
    }

    fn selected(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured batches (criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        if self.criterion.selected(&label) {
            run_one(&label, self.criterion.smoke_test, self.sample_size, &mut f);
        }
        self
    }

    /// Benchmark `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group. (No summary beyond the per-bench lines.)
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// An id carrying a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: Some(function.into()), parameter: parameter.to_string() }
    }

    /// An id carrying only a parameter value (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: None, parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.function {
            Some(name) => write!(f, "{}/{}", name, self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Per-batch wall-clock results, in nanoseconds per iteration.
    samples: Vec<f64>,
    /// Iterations per measured batch.
    iters_per_batch: u64,
    /// Number of batches to measure; 0 means "warm up + time budget".
    batches: usize,
    smoke_test: bool,
}

impl Bencher {
    /// Measure `routine`, recording per-iteration wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_test {
            black_box(routine());
            self.samples.push(0.0);
            return;
        }
        // Warm up and size the batch so one batch is ~1 ms.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        self.iters_per_batch = ((1.0e6 / per_iter.max(1.0)).ceil() as u64).clamp(1, 1 << 20);

        let deadline = Instant::now() + MEASUREMENT;
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..self.iters_per_batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed().as_nanos() as f64 / self.iters_per_batch as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, smoke_test: bool, sample_size: usize, f: &mut F) {
    EXECUTED.fetch_add(1, Ordering::Relaxed);
    let mut b = Bencher { batches: sample_size, smoke_test, ..Bencher::default() };
    f(&mut b);
    if smoke_test {
        println!("{label:<40} ok (smoke test)");
        return;
    }
    if b.samples.is_empty() {
        println!("{label:<40} no samples recorded");
        return;
    }
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{label:<40} time: [{} {} {}]  ({} samples × {} iters)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        b.samples.len(),
        b.iters_per_batch,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group function set, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::warn_if_filter_matched_nothing();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("match", 64).to_string(), "match/64");
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut calls = 0u32;
        let mut b = Bencher { smoke_test: true, batches: 100, ..Bencher::default() };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(b.samples.len(), 1);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12.0), "12.00 ns");
        assert_eq!(fmt_ns(12_500.0), "12.500 µs");
        assert_eq!(fmt_ns(3_200_000.0), "3.200 ms");
        assert_eq!(fmt_ns(2_000_000_000.0), "2.000 s");
    }
}
