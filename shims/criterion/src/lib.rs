//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the external dependencies are replaced by small, API-compatible
//! shims (see the workspace README, "Dependency policy"). This crate
//! implements the criterion API subset the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros — with a
//! simple wall-clock measurement loop instead of criterion's statistical
//! machinery:
//!
//! * each benchmark is warmed up for ~100 ms, then timed for ~1 s or
//!   `sample_size` batches, whichever comes first;
//! * the mean, minimum and maximum batch time per iteration are printed
//!   in a criterion-like one-line format;
//! * without the `--bench` flag (i.e. when the bench binary is run
//!   directly) each benchmark runs a single iteration, so a bench
//!   target doubles as a smoke test — the same behavior as real
//!   criterion;
//! * a positional argument (`cargo bench --bench end_to_end -- fig2`)
//!   acts as a substring filter on benchmark ids, like real criterion;
//! * `--smoke` forces smoke mode even under `cargo bench` (which passes
//!   `--bench`), so CI can execute every bench body once cheaply;
//! * when the `BENCH_JSON_DIR` environment variable names a directory, a
//!   measured (non-smoke) run writes `BENCH_<bench>.json` there in the
//!   results convention of BENCHMARKS.md: per-id min/mean/max ns, sample
//!   and iteration counts, and a `context` block (commit, rustc, CPU,
//!   plus any entries the bench registered via [`set_context`]). A
//!   relative dir resolves against the *workspace root*, not the bench
//!   binary's working directory (cargo sets the latter to the package
//!   dir, which is never where committed results live).
//!
//! Numbers from this shim are honest wall-clock measurements and fine
//! for relative comparisons on a quiet machine, but they lack
//! criterion's outlier rejection and confidence intervals; see
//! BENCHMARKS.md at the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long a benchmark is warmed up before measurement.
const WARM_UP: Duration = Duration::from_millis(100);
/// Measurement budget per benchmark.
const MEASUREMENT: Duration = Duration::from_secs(1);

/// Count of benchmarks executed process-wide, across every `Criterion`
/// instance (one per `criterion_group!`), so the no-match warning only
/// fires when the whole binary ran nothing.
static EXECUTED: AtomicU32 = AtomicU32::new(0);

/// One measured benchmark, accumulated process-wide for JSON emission.
#[derive(Debug, Clone)]
struct MeasuredResult {
    id: String,
    min_ns: f64,
    mean_ns: f64,
    max_ns: f64,
    samples: usize,
    iters_per_batch: u64,
}

/// Measured (non-smoke) results of every benchmark run so far, across
/// all groups of the binary, in execution order.
static RESULTS: Mutex<Vec<MeasuredResult>> = Mutex::new(Vec::new());

/// Extra context entries registered by the bench body via
/// [`set_context`], emitted into the JSON `context` block.
static EXTRA_CONTEXT: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());

/// Register an extra `context` entry for the JSON emitted by this bench
/// binary (a criterion-shim extension; real criterion has no
/// counterpart, so benches should gate calls on the shim if they ever
/// move to real criterion). Benches use this to record run metadata
/// that isn't timing — e.g. the `batch` bench records the session's
/// vocabulary size and memoized token-pair count. Re-registering a key
/// overwrites its value; insertion order is preserved in the output.
pub fn set_context(key: impl Into<String>, value: impl Display) {
    let (key, value) = (key.into(), value.to_string());
    let mut ctx = EXTRA_CONTEXT.lock().unwrap_or_else(|e| e.into_inner());
    match ctx.iter_mut().find(|(k, _)| *k == key) {
        Some(entry) => entry.1 = value,
        None => ctx.push((key, value)),
    }
}

/// Called by [`criterion_main!`] after all groups ran. A positional
/// argument that was really the value of some flag would silently
/// filter out everything; make that loud.
#[doc(hidden)]
pub fn warn_if_filter_matched_nothing() {
    if EXECUTED.load(Ordering::Relaxed) == 0 {
        if let Some(f) = arg_filter() {
            eprintln!("warning: filter {f:?} matched no benchmark ids; nothing was run");
        }
    }
}

/// Called by [`criterion_main!`] after all groups ran: emits the
/// no-match warning and, when `BENCH_JSON_DIR` is set and measured
/// results exist, writes `BENCH_<bench>.json` per the BENCHMARKS.md
/// results convention.
#[doc(hidden)]
pub fn finalize() {
    warn_if_filter_matched_nothing();
    let Ok(dir) = std::env::var("BENCH_JSON_DIR") else { return };
    if arg_filter().is_some() {
        // A filtered run measures a subset; writing it would overwrite a
        // complete recorded file with partial data (BENCHMARKS.md:
        // "Smoke runs and filtered runs record nothing").
        eprintln!("note: BENCH_JSON_DIR set but a filter is active; not recording JSON");
        return;
    }
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    if results.is_empty() {
        return; // smoke runs record nothing
    }
    let bench = bench_name();
    let dir = resolve_json_dir(&dir);
    let path = dir.join(format!("BENCH_{bench}.json"));
    let json = results_json(&bench, &results);
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Resolve `BENCH_JSON_DIR`. Cargo runs bench binaries with the
/// *package* directory as working directory, so a relative dir would
/// silently land in `crates/bench/benchmarks` while BENCHMARKS.md's
/// canonical command expects the workspace root's `benchmarks/`.
/// Anchor relative paths at the workspace root instead: the nearest
/// ancestor of `CARGO_MANIFEST_DIR` holding a `Cargo.lock` (falling
/// back to the working directory when not running under cargo).
fn resolve_json_dir(dir: &str) -> std::path::PathBuf {
    let path = std::path::Path::new(dir);
    if path.is_absolute() {
        return path.to_path_buf();
    }
    if let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let mut root = std::path::Path::new(&manifest_dir);
        loop {
            if root.join("Cargo.lock").exists() {
                return root.join(path);
            }
            match root.parent() {
                Some(parent) => root = parent,
                None => break,
            }
        }
    }
    path.to_path_buf()
}

/// The bench target name, from the binary path: cargo names bench
/// executables `<target>-<16 hex chars>`; strip the metadata hash.
fn bench_name() -> String {
    let stem = std::env::args()
        .next()
        .map(|argv0| {
            std::path::Path::new(&argv0)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or(argv0)
        })
        .unwrap_or_else(|| "unknown".to_string());
    match stem.rsplit_once('-') {
        Some((name, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            name.to_string()
        }
        _ => stem,
    }
}

/// First line of `cmd args...`, or "unknown" when the command is
/// unavailable (context fields are best-effort).
fn first_line_of(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| {
            let text = String::from_utf8_lossy(&o.stdout).trim().to_string();
            text.lines().next().map(str::to_string)
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// CPU model string from `/proc/cpuinfo`, "unknown" elsewhere.
fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|s| s.trim().to_string())
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn results_json(bench: &str, results: &[MeasuredResult]) -> String {
    let commit = first_line_of("git", &["rev-parse", "HEAD"]);
    let rustc = first_line_of("rustc", &["--version"]);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(bench)));
    out.push_str("  \"context\": {\n");
    out.push_str(&format!("    \"commit\": \"{}\",\n", json_escape(&commit)));
    out.push_str(&format!("    \"rustc\": \"{}\",\n", json_escape(&rustc)));
    out.push_str(&format!("    \"cpu\": \"{}\"", json_escape(&cpu_model())));
    for (k, v) in EXTRA_CONTEXT.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        out.push_str(&format!(",\n    \"{}\": \"{}\"", json_escape(k), json_escape(v)));
    }
    out.push_str("\n  },\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"id\": \"{}\", \"min_ns\": {:.2}, \"mean_ns\": {:.2}, \
             \"max_ns\": {:.2}, \"samples\": {}, \"iters_per_batch\": {} }}{sep}\n",
            json_escape(&r.id),
            r.min_ns,
            r.mean_ns,
            r.max_ns,
            r.samples,
            r.iters_per_batch,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn arg_filter() -> Option<String> {
    std::env::args().skip(1).find(|a| !a.starts_with('-'))
}

/// The benchmark manager handed to `criterion_group!` target functions.
#[derive(Debug)]
pub struct Criterion {
    smoke_test: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Like real criterion: `cargo bench` passes `--bench`; without it
        // (direct execution of the bench binary) run each bench once as
        // a smoke test. An explicit `--smoke` forces smoke mode either
        // way, so CI can use `cargo bench -- --smoke`.
        // The first positional argument is a substring filter on
        // benchmark ids (`cargo bench --bench end_to_end -- fig2`).
        let smoke_test =
            !std::env::args().any(|a| a == "--bench") || std::env::args().any(|a| a == "--smoke");
        Criterion { smoke_test, filter: arg_filter() }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup { criterion: self, name, sample_size: 100 }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = id.to_string();
        if self.selected(&label) {
            run_one(&label, self.smoke_test, 100, &mut f);
        }
    }

    fn selected(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured batches (criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        if self.criterion.selected(&label) {
            run_one(&label, self.criterion.smoke_test, self.sample_size, &mut f);
        }
        self
    }

    /// Benchmark `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group. (No summary beyond the per-bench lines.)
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// An id carrying a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: Some(function.into()), parameter: parameter.to_string() }
    }

    /// An id carrying only a parameter value (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: None, parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.function {
            Some(name) => write!(f, "{}/{}", name, self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Per-batch wall-clock results, in nanoseconds per iteration.
    samples: Vec<f64>,
    /// Iterations per measured batch.
    iters_per_batch: u64,
    /// Number of batches to measure; 0 means "warm up + time budget".
    batches: usize,
    smoke_test: bool,
}

impl Bencher {
    /// Measure `routine`, recording per-iteration wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_test {
            black_box(routine());
            self.samples.push(0.0);
            return;
        }
        // Warm up and size the batch so one batch is ~1 ms.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        self.iters_per_batch = ((1.0e6 / per_iter.max(1.0)).ceil() as u64).clamp(1, 1 << 20);

        let deadline = Instant::now() + MEASUREMENT;
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..self.iters_per_batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed().as_nanos() as f64 / self.iters_per_batch as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, smoke_test: bool, sample_size: usize, f: &mut F) {
    EXECUTED.fetch_add(1, Ordering::Relaxed);
    let mut b = Bencher { batches: sample_size, smoke_test, ..Bencher::default() };
    f(&mut b);
    if smoke_test {
        println!("{label:<40} ok (smoke test)");
        return;
    }
    if b.samples.is_empty() {
        println!("{label:<40} no samples recorded");
        return;
    }
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    RESULTS.lock().unwrap_or_else(|e| e.into_inner()).push(MeasuredResult {
        id: label.to_string(),
        min_ns: min,
        mean_ns: mean,
        max_ns: max,
        samples: b.samples.len(),
        iters_per_batch: b.iters_per_batch,
    });
    println!(
        "{label:<40} time: [{} {} {}]  ({} samples × {} iters)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        b.samples.len(),
        b.iters_per_batch,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group function set, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("match", 64).to_string(), "match/64");
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut calls = 0u32;
        let mut b = Bencher { smoke_test: true, batches: 100, ..Bencher::default() };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(b.samples.len(), 1);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12.0), "12.00 ns");
        assert_eq!(fmt_ns(12_500.0), "12.500 µs");
        assert_eq!(fmt_ns(3_200_000.0), "3.200 ms");
        assert_eq!(fmt_ns(2_000_000_000.0), "2.000 s");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak"), "line\\u000abreak");
    }

    #[test]
    fn results_json_shape() {
        let results = vec![MeasuredResult {
            id: "group/case".into(),
            min_ns: 10.0,
            mean_ns: 12.5,
            max_ns: 20.0,
            samples: 100,
            iters_per_batch: 8,
        }];
        let json = results_json("linguistic", &results);
        assert!(json.contains("\"bench\": \"linguistic\""));
        assert!(json.contains("\"id\": \"group/case\""));
        assert!(json.contains("\"mean_ns\": 12.50"));
        assert!(json.contains("\"samples\": 100"));
        assert!(json.contains("\"commit\""));
        assert!(json.contains("\"rustc\""));
        assert!(json.contains("\"cpu\""));
    }

    #[test]
    fn json_dir_resolves_relative_to_workspace_root() {
        // Under cargo, CARGO_MANIFEST_DIR is set and the workspace root
        // (the Cargo.lock holder) is an ancestor.
        let resolved = resolve_json_dir("benchmarks");
        assert!(resolved.is_absolute(), "{resolved:?}");
        assert!(resolved.ends_with("benchmarks"));
        assert!(resolved.parent().unwrap().join("Cargo.lock").exists());
        // Absolute dirs pass through untouched.
        assert_eq!(resolve_json_dir("/tmp/x"), std::path::Path::new("/tmp/x"));
    }

    #[test]
    fn set_context_entries_reach_the_json() {
        set_context("session.vocab_size", 123);
        set_context("session.note", "warm");
        set_context("session.vocab_size", 456); // overwrite, keep position
        let json = results_json("batch", &[]);
        let vocab = json.find("\"session.vocab_size\": \"456\"").expect("overwritten entry");
        let note = json.find("\"session.note\": \"warm\"").expect("second entry");
        assert!(vocab < note, "insertion order preserved");
        assert!(!json.contains("\"123\""));
    }
}
