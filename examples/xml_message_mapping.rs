//! XML message mapping — the paper's motivating E-business scenario
//! (§1): map the real-world CIDX purchase order onto the Excel purchase
//! order (Figure 7), the way BizTalk Mapper would consume the result.
//!
//! Demonstrates: the experiment thesaurus (4 abbreviations, 2 synonyms),
//! shared types with context-dependent mappings, the naive 1:n leaf
//! generator with its documented false positives, and the 1:1
//! element-level mapping of Table 3.
//!
//! ```sh
//! cargo run -p cupid --example xml_message_mapping
//! ```

use cupid::corpus::{cidx_excel, thesauri};
use cupid::prelude::*;

fn main() {
    let cidx = cidx_excel::cidx();
    let excel = cidx_excel::excel();

    // §9.2: "the thesauri had a total of 4 abbreviations (UOM, PO, Qty,
    // Num) and 2 synonymy entries (Invoice,Bill; Ship,Deliver)".
    let thesaurus = thesauri::paper_thesaurus();

    let mut config = CupidConfig::default();
    config.c_inc = 1.35; // shallow XML schemas, see Table 1

    let outcome =
        Cupid::with_config(config, thesaurus).match_schemas(&cidx, &excel).expect("schemas expand");

    println!("XML-element mappings (Table 3):");
    for m in &outcome.nonleaf_mappings {
        println!("  {m}");
    }

    println!("\nXML-attribute (leaf) mappings:");
    let gold = cidx_excel::gold();
    let mut false_positives = 0;
    for m in &outcome.leaf_mappings {
        let ok = gold.contains(&m.source_path, &m.target_path);
        if !ok {
            false_positives += 1;
        }
        println!("  {} {}", if ok { " " } else { "!" }, m);
    }
    println!(
        "\n{} leaf mappings, {} false positives (lines marked `!`) — the \
         paper's naive 1:n generator reports the best source per target \
         \"whether or not the latter was already mapped\".",
        outcome.leaf_mappings.len(),
        false_positives
    );

    // Context-dependence: the one CIDX Contact feeds both Excel Contact
    // copies (DeliverTo's and InvoiceTo's) — a 1:n mapping.
    for ctx in ["DeliverTo", "InvoiceTo"] {
        assert!(
            outcome.has_leaf_mapping(
                "PO.Contact.ContactName",
                &format!("PurchaseOrder.{ctx}.Contact.contactName")
            ),
            "Contact should feed the {ctx} context"
        );
    }
    println!("\nContactName feeds both DeliverTo and InvoiceTo contexts (1:n).");
}
