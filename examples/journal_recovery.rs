//! Crash recovery through the write-ahead journal (DESIGN.md §10).
//!
//! A repository embedded in a long-running service must not lose
//! acknowledged work when the process dies between snapshots. This
//! example demonstrates the guarantee end to end, with a *real* crash:
//!
//! 1. **crash child** — the example re-executes itself as a child
//!    process that opens a repository, adds the paper's Figure 1 and
//!    Figure 2 schemas, fsyncs the journal (`sync_journal`, exactly
//!    what the daemon's `--autosave 1` does per mutation), and then
//!    exits abruptly — no snapshot save, destructors skipped, advisory
//!    lock left on disk;
//! 2. **recovery** — the parent reopens the same path: the dead
//!    process's lock is reclaimed, the journal tail is replayed past
//!    the (nonexistent) snapshot, and every acknowledged schema is
//!    back, match-ready;
//! 3. **compaction** — one `save` folds the journal into a fresh
//!    snapshot; the next open loads the snapshot alone and replays
//!    nothing.
//!
//! Run with: `cargo run --release --example journal_recovery`

use std::path::Path;

use cupid::corpus::{fig1, fig2, thesauri};
use cupid::eval::configs;
use cupid::prelude::*;
use cupid::repo::journal::journal_path;

/// The corpus the crash child acknowledges before dying.
fn corpus() -> Vec<(&'static str, Schema)> {
    vec![
        ("fig1.PO", fig1::po()),
        ("fig1.POrder", fig1::porder()),
        ("fig2.PO", fig2::po()),
        ("fig2.PurchaseOrder", fig2::purchase_order()),
    ]
}

/// Child mode: journal four schemas durably, then die without saving.
fn crash_child(snapshot: &Path) -> ! {
    let config = configs::shallow_xml();
    let th = thesauri::paper_thesaurus();
    let mut repo = Repository::open_or_create(snapshot, &config, &th).expect("child open");
    for (name, mut schema) in corpus() {
        schema.rename(name);
        repo.add(&schema).expect("add");
    }
    repo.sync_journal().expect("journal fsync");
    // Simulated crash: no `save`, no destructors — the snapshot file
    // was never written and the single-writer lock stays behind.
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let ["--crash-child", snapshot] = args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        crash_child(Path::new(snapshot));
    }

    let dir = std::env::temp_dir().join(format!("cupid-journal-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snapshot = dir.join("cupid.repo");

    // 1. A child process acknowledges four schemas and crashes.
    let status = std::process::Command::new(std::env::current_exe().expect("current exe"))
        .arg("--crash-child")
        .arg(&snapshot)
        .status()
        .expect("spawn crash child");
    assert!(status.success());
    let journal_bytes = std::fs::metadata(journal_path(&snapshot)).expect("journal file").len();
    println!("crashed child left: no snapshot, a {journal_bytes}-byte journal, a stale lock");
    assert!(!snapshot.exists());

    // 2. Recovery: reopen the same path.
    let config = configs::shallow_xml();
    let th = thesauri::paper_thesaurus();
    let mut repo = Repository::open_or_create(&snapshot, &config, &th).expect("recovery");
    let d = repo.durability();
    println!(
        "recovered: {} schemas via {} replayed journal records (discarded: {})",
        repo.len(),
        d.replayed_records,
        d.replay_discarded.as_deref().unwrap_or("none"),
    );
    assert_eq!(repo.len(), 4);
    assert_eq!(d.replayed_records, 4);
    let summary = repo.match_pair("fig1.PO", "fig1.POrder").expect("replayed schemas match");
    println!(
        "fig1.PO ~ fig1.POrder straight off the journal: {} leaf mappings",
        summary.leaf_mappings.len()
    );
    assert!(!summary.leaf_mappings.is_empty());

    // 3. Compaction: fold the journal into a snapshot.
    repo.save().expect("compaction");
    println!(
        "saved: snapshot {} bytes, journal back to {} records",
        std::fs::metadata(&snapshot).expect("snapshot file").len(),
        repo.durability().journal_records,
    );
    drop(repo);
    let repo = Repository::open_or_create(&snapshot, &config, &th).expect("warm open");
    assert!(repo.was_loaded());
    assert_eq!(repo.durability().replayed_records, 0, "snapshot covers everything");
    println!("warm reopen: {} schemas from the snapshot, zero records replayed", repo.len());

    drop(repo);
    std::fs::remove_dir_all(&dir).ok();
}
