//! All-pairs schema discovery over a corpus (DESIGN.md §7).
//!
//! A dataset-discovery harness in the Valentine style doesn't match one
//! hand-picked pair — it matches *every* pair of a collection and ranks
//! them, looking for schemas that describe the same real-world entity.
//! This example runs the paper's eight schemas (both Figure 1 schemas,
//! both Figure 2 purchase orders, CIDX/Excel, RDB/Star) through one
//! `MatchSession`: each schema is prepared once, one token-similarity
//! memo serves all 28 pairs, and the pair worklist shards across
//! threads — then ranks the pairs by their best leaf similarity.
//!
//! Run with: `cargo run --release --example batch_discovery`

use cupid::corpus::{cidx_excel, fig1, fig2, star_rdb, thesauri};
use cupid::eval::configs;
use cupid::prelude::*;

fn main() {
    let corpus: Vec<(&str, Schema)> = vec![
        ("fig1/PO", fig1::po()),
        ("fig1/POrder", fig1::porder()),
        ("fig2/PO", fig2::po()),
        ("fig2/PurchaseOrder", fig2::purchase_order()),
        ("CIDX", cidx_excel::cidx()),
        ("Excel", cidx_excel::excel()),
        ("RDB", star_rdb::rdb()),
        ("Star", star_rdb::star()),
    ];
    let schemas: Vec<Schema> = corpus.iter().map(|(_, s)| s.clone()).collect();

    let cfg = configs::shallow_xml();
    let cupid = Cupid::with_config(cfg, thesauri::paper_thesaurus());

    // One session for the whole corpus; 28 pairs.
    let mut session = cupid.session();
    let ids = session.add_corpus(&schemas).expect("corpus expands");
    let summaries = session.match_all_pairs();
    let stats = session.stats();

    // Rank pairs by their strongest leaf correspondence, then by how
    // many mappings cleared the acceptance threshold.
    let mut ranked: Vec<&MatchSummary> = summaries.iter().collect();
    ranked.sort_by(|a, b| {
        b.best_wsim()
            .partial_cmp(&a.best_wsim())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.leaf_mappings.len().cmp(&a.leaf_mappings.len()))
    });

    println!("All-pairs discovery over {} schemas ({} pairs):\n", ids.len(), summaries.len());
    println!("{:<32} {:>9} {:>9}  strongest correspondence", "pair", "best wsim", "mappings");
    for s in &ranked {
        let name = |id: SchemaId| corpus[id.index()].0;
        let best = s.top_pairs.first();
        println!(
            "{:<32} {:>9.3} {:>9}  {}",
            format!("{} ~ {}", name(s.source), name(s.target)),
            s.best_wsim(),
            s.leaf_mappings.len(),
            best.map_or(String::new(), |e| format!("{} -> {}", e.source_path, e.target_path)),
        );
    }

    println!(
        "\nsession: {} schemas prepared once, |V| = {} tokens, \
         {} distinct token pairs memoized across {} matches",
        stats.schemas, stats.vocab_size, stats.distinct_pairs_computed, stats.pairs_matched
    );

    // The discovery signal: same-domain pairs outrank cross-domain ones.
    let top: Vec<&str> = ranked.iter().take(4).map(|s| corpus[s.source.index()].0).collect();
    println!("\ntop-ranked sources: {top:?} (purchase-order corpus finds itself)");
}
