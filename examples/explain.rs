//! Match explainability (DESIGN.md §14): from one `wsim` number to the
//! full score provenance behind it.
//!
//! A Cupid mapping is justified by a single weighted similarity, but
//! that number is a composition: `wsim = w·ssim + (1−w)·lsim`, with
//! `lsim` built from categorized token similarities (thesaurus hits,
//! affix matches) and `ssim` from leaf-set propagation. The explain
//! entry points re-execute a prepared pair with instrumentation and
//! return the whole decomposition per kept mapping — and because pair
//! execution is a pure function of frozen prepared state, the captured
//! components recompose to the reported `wsim` **bit-exactly**.
//!
//! This example shows both ends of the stack:
//!
//! 1. in-process — [`MatchSession::explain_pair`] over the Figure 1
//!    schemas, printing per-mapping breakdowns;
//! 2. over the wire — the same provenance served by the daemon
//!    (`ServeClient::explain`), identical to the in-process answer.
//!
//! Run with: `cargo run --example explain`

use cupid::lexical::TokenSimProvenance;
use cupid::prelude::*;
use cupid::serve::CupidServeExt;

const PO_SDL: &str = "schema PO\n  element Lines\n    element Item\n      attr Line : int\n      \
                      attr Qty : decimal\n      attr Uom : string\n";
const PORDER_SDL: &str = "schema POrder\n  element Items\n    element Item\n      attr \
                          ItemNumber : int\n      attr Quantity : decimal\n      attr \
                          UnitOfMeasure : string\n";

fn print_breakdown(ex: &PairExplanation) {
    println!(
        "{} ~ {}: {} mappings ({} of {} element pairs compared, {} increases / {} decreases)",
        ex.source_name,
        ex.target_name,
        ex.mappings.len(),
        ex.compared_pairs,
        ex.total_pairs,
        ex.increases,
        ex.decreases
    );
    for m in &ex.mappings {
        println!(
            "  {} -> {}  [{}]",
            m.source_path,
            m.target_path,
            if m.leaf { "leaf" } else { "element" }
        );
        println!(
            "    wsim {:.3} = {:.2}*ssim {:.3} + {:.2}*lsim {:.3}   (accepted: >= {:.2}, \
             recomposes {})",
            m.wsim,
            m.w_struct,
            m.ssim,
            1.0 - m.w_struct,
            m.lsim,
            m.th_accept,
            if m.recomposes_exactly() { "bit-exactly" } else { "INEXACTLY" }
        );
        println!(
            "    structure: {}/{} source and {}/{} target leaves strongly linked",
            m.structure.source_strong_links,
            m.structure.source_leaves,
            m.structure.target_strong_links,
            m.structure.target_leaves
        );
        for p in &m.token_pairs {
            let provenance = match &p.provenance {
                TokenSimProvenance::ExactSymbol => "exact symbol".to_string(),
                TokenSimProvenance::Thesaurus => "thesaurus".to_string(),
                TokenSimProvenance::Affix { prefix_len, suffix_len, .. } => {
                    format!("affix prefix {prefix_len} / suffix {suffix_len}")
                }
                TokenSimProvenance::NoMatch => "no match".to_string(),
            };
            println!(
                "    token: {:?} ~ {:?}  sim {:.2}  ({provenance})",
                p.source_token, p.target_token, p.sim
            );
        }
    }
}

fn main() {
    let thesaurus = Thesaurus::parse(
        "abbrev Qty = quantity\n\
         abbrev UOM = unit of measure\n",
    )
    .expect("thesaurus is well-formed");
    let config = CupidConfig::default();

    // ---- 1. in-process: explain the Figure 1 pair ----------------------
    let po = cupid::io::parse_sdl(PO_SDL).expect("PO parses");
    let porder = cupid::io::parse_sdl(PORDER_SDL).expect("POrder parses");
    let mut session = MatchSession::new(&config, &thesaurus);
    let ids = session.add_corpus(&[po, porder]).expect("schemas prepare");
    let local = session.explain_pair(ids[0], ids[1]);
    print_breakdown(&local);
    assert!(local.recomposes_exactly(), "every mapping recomposes bit-exactly");

    // The explanation is the match's own arithmetic: the reported wsim
    // values equal match_pair's, down to the float bits.
    let summary = session.match_pair(ids[0], ids[1]);
    for (m, e) in summary.leaf_mappings.iter().zip(&local.mappings) {
        assert_eq!(m.wsim.to_bits(), e.wsim.to_bits(), "explanation is the match, bit for bit");
    }

    // ---- 2. over the wire: the daemon serves the same provenance -------
    let dir = std::env::temp_dir().join(format!("cupid-explain-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let cupid = Cupid::with_config(config, thesaurus.clone());
    let server = cupid.serve("127.0.0.1:0", &dir).expect("bind daemon");
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().expect("daemon run"));
        let mut client = ServeClient::connect(addr).expect("connect");
        client.add_sdl(PO_SDL).expect("add PO");
        client.add_sdl(PORDER_SDL).expect("add POrder");
        let served = client.explain("PO", "POrder").expect("explain over the wire");
        assert_eq!(served, local, "the wire answer is the in-process answer");
        let stats = client.stats().expect("stats");
        println!(
            "\ndaemon: served {} explanation(s); explain left the pair cache empty ({} cached, \
             {} executed)",
            stats.explanations_served, stats.cached_pairs, stats.pairs_executed
        );
        client.shutdown().expect("shutdown");
    });
    std::fs::remove_dir_all(&dir).ok();

    println!("\nEvery explanation recomposed to its reported wsim bit-exactly.");
}
