//! The persistent schema repository end to end (DESIGN.md §8).
//!
//! A matcher embedded in a data-integration service doesn't get to
//! re-prepare its corpus on every request: it must survive restarts,
//! absorb single-schema edits without re-matching the world, and
//! answer "what matches this schema?" without executing every pair.
//! This example walks that lifecycle over the paper's eight schemas:
//!
//! 1. **cold** — open a repository, add the corpus, match all 28 pairs,
//!    snapshot to disk;
//! 2. **warm** — reopen from the snapshot; all 28 pairs come back from
//!    the persisted cache with zero executions;
//! 3. **incremental** — edit one schema (via SDL export → patch →
//!    re-import); only its 7 pairs re-execute;
//! 4. **discovery** — the top-k index retrieves match candidates from
//!    leaf-token overlap, pruning the worklist.
//!
//! Run with: `cargo run --release --example repository`

use cupid::corpus::{cidx_excel, fig1, fig2, star_rdb, thesauri};
use cupid::eval::configs;
use cupid::io::parse_sdl;
use cupid::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join(format!("cupid-repository-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let cupid = Cupid::with_config(configs::shallow_xml(), thesauri::paper_thesaurus());

    // The paper's eight schemas, renamed to unique repository keys
    // (both Figure 1 and Figure 2 call their source schema `PO`).
    let corpus: Vec<Schema> = [
        ("fig1.PO", fig1::po()),
        ("fig1.POrder", fig1::porder()),
        ("fig2.PO", fig2::po()),
        ("fig2.PurchaseOrder", fig2::purchase_order()),
        ("CIDX", cidx_excel::cidx()),
        ("Excel", cidx_excel::excel()),
        ("RDB", star_rdb::rdb()),
        ("Star", star_rdb::star()),
    ]
    .into_iter()
    .map(|(label, mut s)| {
        s.rename(label);
        s
    })
    .collect();

    // ---- 1. cold: build, match, snapshot --------------------------------
    let mut repo = cupid.repository(&dir).expect("open repository");
    repo.add_corpus(&corpus).expect("corpus prepares");
    let cold = repo.match_all_pairs();
    println!(
        "cold build: {} schemas, {} pairs executed, vocabulary {} tokens, memo {} KiB",
        repo.len(),
        repo.pairs_executed(),
        repo.stats().session.vocab_size,
        repo.stats().session.sim_bytes / 1024,
    );
    repo.save().expect("snapshot");
    let size = std::fs::metadata(repo.path()).map(|m| m.len()).unwrap_or(0);
    println!("snapshot:   {} ({size} bytes)", repo.path().display());

    // ---- 2. warm: reopen, everything from disk --------------------------
    drop(repo);
    let mut repo = cupid.repository(&dir).expect("reopen repository");
    assert!(repo.was_loaded());
    let warm = repo.match_all_pairs();
    assert_eq!(warm, cold, "a loaded repository serves bit-identical summaries");
    println!(
        "warm load:  {} pairs served from the persisted cache, {} executed",
        warm.len(),
        repo.pairs_executed()
    );

    // ---- 3. incremental: edit one schema --------------------------------
    // Round-trip the CIDX schema through its SDL export, give the
    // purchase order an approval code, and put it back: only the 7
    // pairs involving CIDX re-execute.
    let mut sdl = repo.export_sdl("CIDX").expect("CIDX is SDL-expressible");
    sdl.push_str("  element ApprovalCode : string\n");
    let mut edited = parse_sdl(&sdl).expect("patched SDL parses");
    edited.rename("CIDX");
    repo.replace(&edited).expect("replace CIDX");
    let incremental = repo.match_all_pairs();
    println!(
        "incremental: edited `CIDX`, {} pairs re-executed (of {})",
        repo.pairs_executed(),
        incremental.len()
    );

    // ---- 4. discovery: index-pruned top-k -------------------------------
    let ranked = repo.top_k_pairs(2);
    let executed = ranked.len();
    let names = repo.names().to_vec();
    let mut ranked: Vec<&MatchSummary> = ranked.iter().collect();
    ranked.sort_by(|a, b| {
        b.best_wsim().partial_cmp(&a.best_wsim()).unwrap_or(std::cmp::Ordering::Equal)
    });
    println!("\ntop-2 discovery index retrieval ({executed} of 28 pairs in the worklist):");
    for s in ranked.iter().take(5) {
        println!(
            "  {:<32} best wsim {:.3}",
            format!("{} ~ {}", names[s.source.index()], names[s.target.index()]),
            s.best_wsim()
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
