//! Data-warehouse loading — the paper's second motivating scenario (§1):
//! map an operational relational schema onto a star warehouse schema
//! (Figure 8), exercising referential-constraint reification as join
//! views (§8.3).
//!
//! The schemas are written in SQL and imported through the DDL parser to
//! show the full pipeline from text to mapping.
//!
//! ```sh
//! cargo run -p cupid --example data_warehouse
//! ```

use cupid::corpus::{star_rdb, thesauri};
use cupid::io::parse_ddl;
use cupid::prelude::*;

const STAR_SQL: &str = "\
CREATE TABLE Geography (
    PostalCode VARCHAR(10) PRIMARY KEY,
    TerritoryID INTEGER NOT NULL,
    TerritoryDescription VARCHAR(50) NOT NULL,
    RegionID INTEGER NOT NULL,
    RegionDescription VARCHAR(50) NOT NULL
);
CREATE TABLE Customers (
    CustomerID INTEGER PRIMARY KEY,
    CustomerName VARCHAR(40) NOT NULL,
    CustomerTypeID INTEGER NOT NULL,
    CustomerTypeDescription VARCHAR(50) NOT NULL,
    PostalCode VARCHAR(10) NOT NULL,
    State VARCHAR(20) NOT NULL
);
CREATE TABLE Products (
    ProductID INTEGER PRIMARY KEY,
    ProductName VARCHAR(40) NOT NULL,
    BrandID INTEGER NOT NULL,
    BrandDescription VARCHAR(50) NOT NULL
);
CREATE TABLE Sales (
    OrderID INTEGER PRIMARY KEY,
    OrderDetailID INTEGER NOT NULL,
    CustomerID INTEGER NOT NULL,
    PostalCode VARCHAR(10) NOT NULL,
    ProductID INTEGER NOT NULL,
    OrderDate DATE NOT NULL,
    Quantity NUMERIC(10,2) NOT NULL,
    UnitPrice MONEY NOT NULL,
    Discount NUMERIC(4,2) NOT NULL,
    FOREIGN KEY (CustomerID) REFERENCES Customers (CustomerID),
    FOREIGN KEY (PostalCode) REFERENCES Geography (PostalCode),
    FOREIGN KEY (ProductID) REFERENCES Products (ProductID)
);
";

fn main() {
    // The operational schema comes from the built-in corpus (Figure 8's
    // 13 tables with 12 foreign keys); the warehouse side is parsed from
    // SQL to demonstrate the DDL importer.
    let rdb = star_rdb::rdb();
    let star = parse_ddl("Star", STAR_SQL).expect("DDL parses");

    // Relational configuration: join views make subtree sizes lopsided,
    // so the leaf-count pruning factor is raised (see
    // cupid_eval::configs::relational for the full rationale).
    let mut config = CupidConfig::default();
    config.c_inc = 1.35;
    config.leaf_ratio_prune = Some(4.0);
    config.expand = ExpandOptions::all(); // reify join views

    // §9.2: "There were no relevant synonym and hypernym entries in the
    // thesaurus."
    let outcome = Cupid::with_config(config, thesauri::empty_thesaurus())
        .match_schemas(&rdb, &star)
        .expect("schemas expand");

    println!("Table-level mappings (join views compete as first-class nodes):");
    for m in &outcome.nonleaf_mappings {
        println!("  {m}");
    }

    println!("\nColumn mappings into the Sales fact table:");
    for m in outcome.leaf_mappings.iter().filter(|m| m.target_path.starts_with("Star.Sales.")) {
        println!("  {m}");
    }

    println!("\nThe three Star PostalCode columns:");
    for m in outcome.leaf_mappings.iter().filter(|m| m.target_path.ends_with("PostalCode")) {
        println!("  {m}");
    }

    let sales_source = outcome
        .nonleaf_mappings
        .iter()
        .find(|m| m.target_path == "Star.Sales")
        .map(|m| m.source_path.as_str())
        .unwrap_or("(none)");
    println!(
        "\nSales is sourced from `{sales_source}` — the paper: \"Cupid matches \
         the join of Orders and OrderDetails to the Sales table.\""
    );
}
