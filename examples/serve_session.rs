//! The match daemon end to end (DESIGN.md §9).
//!
//! A resident matcher changes the shape of schema-matching workloads:
//! instead of a one-shot process that re-prepares its corpus per run,
//! a daemon keeps the session hot — interned vocabulary, similarity
//! memo, prepared schemas, pair cache — and answers clients over a
//! checksummed binary protocol. This example walks the full lifecycle
//! on a loopback port:
//!
//! 1. **serve** — bind `cupid.serve(addr, repo_path)` and run it on a
//!    daemon thread;
//! 2. **populate** — a client ships the paper's schemas as SDL;
//! 3. **match / discover** — match-pair and index-pruned top-k
//!    requests, answered from the warm session;
//! 4. **batch** — a pooled client ships a whole worklist as one
//!    checksummed frame; the daemon answers it under a single read
//!    lock, per-entry errors failing alone (DESIGN.md §11);
//! 5. **edit** — replace one schema; only its pairs re-execute;
//! 6. **persist** — save, shut down, and reopen the snapshot directly
//!    to show the daemon's work survives it.
//!
//! Run with: `cargo run --release --example serve_session`

use cupid::prelude::*;
use cupid::serve::CupidServeExt;

const CORPUS_SDL: &[&str] = &[
    "schema PO\n  element Item\n    attr Qty : int\n    attr Invoice : string\n",
    "schema Order\n  element Item\n    attr Quantity : int\n    attr Bill : string\n",
    "schema Sales\n  element Order\n    attr Quantity : int\n    attr SaleDate : date\n",
    "schema Inventory\n  element Thing\n    attr Stock : int\n",
];

fn main() {
    let dir = std::env::temp_dir().join(format!("cupid-serve-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let thesaurus =
        Thesaurus::parse("abbrev Qty = quantity\nsyn invoice bill 1.0").expect("thesaurus");
    let cupid = Cupid::new(thesaurus);

    // ---- 1. serve: daemon on a loopback port ---------------------------
    let server = cupid.serve("127.0.0.1:0", &dir).expect("bind daemon");
    let addr = server.local_addr();
    println!("daemon: listening on {addr}, repository {}", server.repo_path().display());

    std::thread::scope(|scope| {
        scope.spawn(move || server.run().expect("daemon run"));

        // ---- 2. populate: schemas travel as SDL ------------------------
        let mut client = ServeClient::connect(addr).expect("connect");
        for sdl in CORPUS_SDL {
            let name = client.add_sdl(sdl).expect("add schema");
            println!("client: added `{name}`");
        }

        // ---- 3. match and discover -------------------------------------
        let summary = client.match_pair("PO", "Order").expect("match");
        println!(
            "client: PO ~ Order  best wsim {:.3}, {} leaf mappings",
            summary.best_wsim(),
            summary.leaf_mappings.len()
        );
        for m in summary.leaf_mappings.iter().take(3) {
            println!("  {} -> {}  (wsim {:.3})", m.source_path, m.target_path, m.wsim);
        }
        let listing = client.top_k(2).expect("top-k");
        let mut ranked: Vec<_> = listing.summaries.iter().collect();
        ranked.sort_by(|a, b| {
            b.best_wsim().partial_cmp(&a.best_wsim()).unwrap_or(std::cmp::Ordering::Equal)
        });
        println!("client: top-2 discovery executed {} candidate pairs:", ranked.len());
        for s in ranked.iter().take(3) {
            println!(
                "  {} ~ {}  best wsim {:.3}",
                listing.names[s.source.index()],
                listing.names[s.target.index()],
                s.best_wsim()
            );
        }

        // ---- 4. batch: a worklist in one frame, via the pool -----------
        let pool = ServePool::new(addr.to_string(), 2);
        let mut pooled = pool.checkout().expect("checkout");
        let entries = pooled
            .match_pairs(&[("PO", "Order"), ("PO", "Sales"), ("PO", "Nope"), ("Order", "Sales")])
            .expect("batch");
        for (entry, (s, t)) in entries.iter().zip([
            ("PO", "Order"),
            ("PO", "Sales"),
            ("PO", "Nope"),
            ("Order", "Sales"),
        ]) {
            match entry {
                Ok(summary) => {
                    println!("batch:  {s} ~ {t}  best wsim {:.3}", summary.best_wsim());
                }
                Err(message) => println!("batch:  {s} ~ {t}  failed alone: {message}"),
            }
        }
        drop(pooled); // back to the pool's idle list, connection kept warm
        let latency = pool.checkout().expect("checkout").stats().expect("stats").latencies;
        if let Some(batch) = latency.iter().find(|l| l.kind == "batch") {
            println!(
                "batch:  daemon served {} batch frame(s), p50 {}ns",
                batch.count,
                batch.quantile_ns(0.50)
            );
        }

        // ---- 5. edit: incremental re-match under traffic ---------------
        let before = client.stats().expect("stats").pairs_executed;
        client
            .replace_sdl(
                "schema PO\n  element Item\n    attr Qty : int\n    attr Invoice : string\n    \
                 attr Total : decimal\n",
            )
            .expect("replace");
        client.match_pair("PO", "Order").expect("re-match");
        let after = client.stats().expect("stats").pairs_executed;
        println!("client: replaced `PO`; {} pair(s) re-executed", after - before);

        // ---- 6. persist and shut down ----------------------------------
        let bytes = client.save().expect("save");
        println!("client: snapshot saved ({bytes} bytes)");
        client.shutdown().expect("shutdown");
        println!("client: daemon shutting down");
    });

    // The daemon's work outlives it: reopen the snapshot directly.
    let mut warm = cupid.repository(&dir).expect("reopen snapshot");
    assert!(warm.was_loaded(), "snapshot present");
    let served = warm.match_pair("PO", "Order").expect("cached pair");
    println!(
        "reopened:   {} schemas, PO ~ Order served from cache (best wsim {:.3}, {} executed)",
        warm.len(),
        served.best_wsim(),
        warm.pairs_executed()
    );

    std::fs::remove_dir_all(&dir).ok();
}
