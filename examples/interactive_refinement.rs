//! Interactive refinement — the paper's user-in-the-loop story (§8.4):
//! *"The user can make corrections to a generated result map, and then
//! re-run the match with the corrected input map, thereby generating an
//! improved map."*
//!
//! Two schemas with opaque, unrelated vocabularies are matched; the
//! first pass finds nothing. The user then confirms the block structure
//! and three leaf correspondences as the initial mapping; the re-run
//! propagates those hints through the ancestors and recovers the two
//! remaining leaves (`Fld03`, `Fld05`) that were never seeded.
//!
//! ```sh
//! cargo run -p cupid --example interactive_refinement
//! ```

use cupid::prelude::*;

fn build_source() -> Schema {
    let mut b = SchemaBuilder::new("LegacyFeed");
    let grp = b.structured(b.root(), "Blk1", ElementKind::XmlElement);
    b.atomic(grp, "Fld01", ElementKind::XmlElement, DataType::String);
    b.atomic(grp, "Fld02", ElementKind::XmlElement, DataType::Date);
    b.atomic(grp, "Fld03", ElementKind::XmlElement, DataType::Money);
    let grp2 = b.structured(b.root(), "Blk2", ElementKind::XmlElement);
    b.atomic(grp2, "Fld04", ElementKind::XmlElement, DataType::String);
    b.atomic(grp2, "Fld05", ElementKind::XmlElement, DataType::Int);
    b.build().expect("schema is well-formed")
}

fn build_target() -> Schema {
    let mut b = SchemaBuilder::new("Canonical");
    let order = b.structured(b.root(), "OrderHeader", ElementKind::XmlElement);
    b.atomic(order, "CustomerRef", ElementKind::XmlElement, DataType::String);
    b.atomic(order, "PlacedOn", ElementKind::XmlElement, DataType::Date);
    b.atomic(order, "TotalDue", ElementKind::XmlElement, DataType::Money);
    let ship = b.structured(b.root(), "Shipment", ElementKind::XmlElement);
    b.atomic(ship, "Carrier", ElementKind::XmlElement, DataType::String);
    b.atomic(ship, "Parcels", ElementKind::XmlElement, DataType::Int);
    b.build().expect("schema is well-formed")
}

fn main() {
    let source = build_source();
    let target = build_target();

    // Shallow two-level schemas: the reinforcement factor follows the
    // schema-depth rule of Table 1 — with only two ancestors available to
    // reinforce a leaf, each boost must be larger.
    let mut config = CupidConfig::default();
    config.c_inc = 1.6;
    // With opaque vocabularies almost every comparison scores low; the
    // default th_low would erode the few seeded signals with repeated
    // decreases before the ancestors can reinforce them.
    config.th_low = 0.2;
    let cupid = Cupid::with_config(config, Thesaurus::with_default_stopwords());

    // Pass 1: opaque names, no linguistic evidence at all.
    let first = cupid.match_schemas(&source, &target).expect("schemas expand");
    println!("pass 1 (no hints): {} leaf mappings", first.leaf_mappings.len());

    // The user validates (§2: user validation is essential) and confirms
    // the block correspondences plus three leaves.
    let find = |s: &Schema, n: &str| s.find(n).expect("element exists");
    let seed = [
        (source.root(), target.root()),
        (find(&source, "Blk1"), find(&target, "OrderHeader")),
        (find(&source, "Blk2"), find(&target, "Shipment")),
        (find(&source, "Fld01"), find(&target, "CustomerRef")),
        (find(&source, "Fld02"), find(&target, "PlacedOn")),
        (find(&source, "Fld04"), find(&target, "Carrier")),
    ];

    // Pass 2: the seeded lsim lifts the confirmed pairs, which lifts the
    // blocks over th_high, which reinforces the *unseeded* siblings.
    let second = cupid.match_schemas_seeded(&source, &target, &seed).expect("schemas expand");
    println!(
        "pass 2 ({} confirmed correspondences): {} leaf mappings",
        seed.len(),
        second.leaf_mappings.len()
    );
    for m in &second.leaf_mappings {
        println!("  {m}");
    }

    assert!(
        second.leaf_mappings.len() > first.leaf_mappings.len(),
        "the user hints should unlock additional mappings"
    );
    // The never-seeded siblings are recovered through ancestor
    // reinforcement + data-type compatibility alone.
    assert!(
        second.has_leaf_mapping("LegacyFeed.Blk1.Fld03", "Canonical.OrderHeader.TotalDue"),
        "Fld03 -> TotalDue should be recovered structurally"
    );
    assert!(
        second.has_leaf_mapping("LegacyFeed.Blk2.Fld05", "Canonical.Shipment.Parcels"),
        "Fld05 -> Parcels should be recovered structurally"
    );
    println!("\nunseeded siblings (Fld03, Fld05) recovered through ancestor reinforcement.");
}
