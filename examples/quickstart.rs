//! Quickstart: match two small purchase-order schemas (Figure 1 of the
//! paper) and print the discovered mapping.
//!
//! ```sh
//! cargo run -p cupid --example quickstart
//! ```

use cupid::prelude::*;

fn main() {
    // Build the two schemas of Figure 1.
    let mut b = SchemaBuilder::new("PO");
    let lines = b.structured(b.root(), "Lines", ElementKind::XmlElement);
    let item = b.structured(lines, "Item", ElementKind::XmlElement);
    b.atomic(item, "Line", ElementKind::XmlElement, DataType::Int);
    b.atomic(item, "Qty", ElementKind::XmlElement, DataType::Decimal);
    b.atomic(item, "Uom", ElementKind::XmlElement, DataType::String);
    let po = b.build().expect("schema is well-formed");

    let mut b = SchemaBuilder::new("POrder");
    let items = b.structured(b.root(), "Items", ElementKind::XmlElement);
    let item = b.structured(items, "Item", ElementKind::XmlElement);
    b.atomic(item, "ItemNumber", ElementKind::XmlElement, DataType::Int);
    b.atomic(item, "Quantity", ElementKind::XmlElement, DataType::Decimal);
    b.atomic(item, "UnitOfMeasure", ElementKind::XmlElement, DataType::String);
    let porder = b.build().expect("schema is well-formed");

    // The auxiliary thesaurus: short forms and acronyms (§5.1).
    let thesaurus = Thesaurus::parse(
        "abbrev PO = purchase order\n\
         abbrev POrder = purchase order\n\
         abbrev Qty = quantity\n\
         abbrev UOM = unit of measure\n",
    )
    .expect("thesaurus is well-formed");

    // Shallow schemas get a slightly larger reinforcement factor
    // (Table 1: cinc is a function of schema depth).
    let mut config = CupidConfig::default();
    config.c_inc = 1.35;

    let cupid = Cupid::with_config(config, thesaurus);
    let outcome = cupid.match_schemas(&po, &porder).expect("schemas expand");

    println!("Leaf mappings:");
    for m in &outcome.leaf_mappings {
        println!("  {m}");
    }
    println!("\nElement mappings:");
    for m in &outcome.nonleaf_mappings {
        println!("  {m}");
    }
    // The famous structural match: Line -> ItemNumber has no thesaurus
    // support at all; it is carried by data-type compatibility and the
    // similarity of its context.
    assert!(
        outcome.has_leaf_mapping("PO.Lines.Item.Line", "POrder.Items.Item.ItemNumber"),
        "expected the structural Line -> ItemNumber match"
    );
    println!("\nLine -> ItemNumber found (purely structural).");
}
