//! The auxiliary thesauri used in the paper's experiments.

use cupid_lexical::{Thesaurus, ThesaurusBuilder};

/// The CIDX–Excel experiment thesaurus (§9.2): *"the thesauri had a total
/// of 4 abbreviations (UOM, PO, Qty, Num) and 2 synonymy entries
/// (Invoice,Bill; Ship,Deliver) that were relevant to the example"*.
pub fn paper_thesaurus() -> Thesaurus {
    ThesaurusBuilder::new()
        .abbreviation("UOM", &["unit", "of", "measure"])
        .abbreviation("PO", &["purchase", "order"])
        .abbreviation("Qty", &["quantity"])
        .abbreviation("Num", &["number"])
        .synonym("Invoice", "Bill", 1.0)
        .synonym("Ship", "Deliver", 1.0)
        .build()
        .expect("static thesaurus is valid")
}

/// The RDB–Star experiment used no domain thesaurus: *"There were no
/// relevant synonym and hypernym entries in the thesaurus"* (§9.2).
/// Stop words remain available (they are part of normalization, not of
/// the domain thesaurus).
pub fn empty_thesaurus() -> Thesaurus {
    Thesaurus::with_default_stopwords()
}

/// The §9.2 remark: matching `CustomerName` to `ContactFirstName` /
/// `ContactLastName` *"would have been possible if there had existed a
/// synonymy entry for (Customer:Contact) in the thesaurus"*. This
/// thesaurus adds exactly that entry, for the corresponding ablation.
pub fn star_rdb_customer_contact_thesaurus() -> Thesaurus {
    ThesaurusBuilder::new()
        .synonym("Customer", "Contact", 0.8)
        .build()
        .expect("static thesaurus is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_thesaurus_has_exactly_the_published_entries() {
        let t = paper_thesaurus();
        assert_eq!(t.abbreviation_count(), 4);
        assert_eq!(t.relation_count(), 2);
        assert_eq!(t.token_sim("bill", "invoice"), Some(1.0));
        assert_eq!(t.token_sim("ship", "deliver"), Some(1.0));
        assert_eq!(t.expand("UOM").unwrap().join(" "), "unit of measure");
        assert_eq!(t.expand("Num").unwrap(), ["number"]);
    }

    #[test]
    fn empty_thesaurus_still_normalizes() {
        let t = empty_thesaurus();
        assert_eq!(t.relation_count(), 0);
        assert_eq!(t.abbreviation_count(), 0);
        assert!(t.is_stopword("of"));
    }

    #[test]
    fn customer_contact_entry() {
        let t = star_rdb_customer_contact_thesaurus();
        assert_eq!(t.token_sim("customer", "contact"), Some(0.8));
    }
}
