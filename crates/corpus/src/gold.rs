//! Gold-standard mappings, expressed over context paths of the expanded
//! schema trees.

use std::collections::BTreeSet;

/// A gold-standard mapping: the set of correspondences a human validator
/// accepts. Pairs are `(source context path, target context path)`; when
/// a target has several acceptable sources (or a source legitimately maps
/// into several contexts, e.g. one CIDX `Contact` feeding both Excel
/// `Contact` copies), *all* acceptable pairs are enumerated.
#[derive(Debug, Clone, Default)]
pub struct GoldMapping {
    pairs: BTreeSet<(String, String)>,
}

impl GoldMapping {
    /// Build from a pair list.
    pub fn new<I, S1, S2>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S1, S2)>,
        S1: Into<String>,
        S2: Into<String>,
    {
        GoldMapping { pairs: pairs.into_iter().map(|(a, b)| (a.into(), b.into())).collect() }
    }

    /// Is a found correspondence correct?
    pub fn contains(&self, source_path: &str, target_path: &str) -> bool {
        self.pairs.contains(&(source_path.to_string(), target_path.to_string()))
    }

    /// All gold pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.pairs.iter().map(|(a, b)| (a.as_str(), b.as_str()))
    }

    /// Number of gold pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no gold pairs are recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The distinct target paths that have at least one acceptable
    /// source — the denominator of target-oriented recall.
    pub fn target_count(&self) -> usize {
        self.pairs.iter().map(|(_, t)| t.as_str()).collect::<BTreeSet<_>>().len()
    }

    /// True if the target path has any acceptable source.
    pub fn has_target(&self, target_path: &str) -> bool {
        self.pairs.iter().any(|(_, t)| t == target_path)
    }

    /// Merge another gold set into this one.
    pub fn extend(&mut self, other: &GoldMapping) {
        for (a, b) in other.pairs() {
            self.pairs.insert((a.to_string(), b.to_string()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_queries() {
        let g = GoldMapping::new([("A.x", "B.y"), ("A.x", "B.z")]);
        assert!(g.contains("A.x", "B.y"));
        assert!(!g.contains("A.x", "B.w"));
        assert_eq!(g.len(), 2);
        assert_eq!(g.target_count(), 2);
        assert!(g.has_target("B.z"));
        assert!(!g.has_target("B.w"));
    }

    #[test]
    fn extend_unions() {
        let mut g = GoldMapping::new([("a", "b")]);
        g.extend(&GoldMapping::new([("a", "b"), ("c", "d")]));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn empty() {
        let g = GoldMapping::default();
        assert!(g.is_empty());
        assert_eq!(g.target_count(), 0);
    }
}
