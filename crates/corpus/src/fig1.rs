//! Figure 1: the introductory example.
//!
//! ```text
//! PO                    POrder
//!   Lines                 Items
//!     Item                  Item
//!       Line                  ItemNumber
//!       Qty                   Quantity
//!       Uom                   UnitOfMeasure
//! ```

use cupid_lexical::{Thesaurus, ThesaurusBuilder};
use cupid_model::{DataType, ElementKind, Schema, SchemaBuilder};

use crate::gold::GoldMapping;

/// The experiment thesaurus for Figure 1: the paper's four abbreviations
/// plus the obvious short form `POrder` = purchase order (the root names
/// must be recognized as the same concept for the root comparison to
/// reinforce the leaves).
pub fn thesaurus() -> Thesaurus {
    ThesaurusBuilder::new()
        .abbreviation("UOM", &["unit", "of", "measure"])
        .abbreviation("PO", &["purchase", "order"])
        .abbreviation("POrder", &["purchase", "order"])
        .abbreviation("Qty", &["quantity"])
        .abbreviation("Num", &["number"])
        .synonym("Invoice", "Bill", 1.0)
        .synonym("Ship", "Deliver", 1.0)
        .build()
        .expect("static thesaurus is valid")
}

/// The `PO` schema (left side of Figure 1).
pub fn po() -> Schema {
    let mut b = SchemaBuilder::new("PO");
    let lines = b.structured(b.root(), "Lines", ElementKind::XmlElement);
    let item = b.structured(lines, "Item", ElementKind::XmlElement);
    b.atomic(item, "Line", ElementKind::XmlElement, DataType::Int);
    b.atomic(item, "Qty", ElementKind::XmlElement, DataType::Decimal);
    b.atomic(item, "Uom", ElementKind::XmlElement, DataType::String);
    b.build().expect("static schema is valid")
}

/// The `POrder` schema (right side of Figure 1).
pub fn porder() -> Schema {
    let mut b = SchemaBuilder::new("POrder");
    let items = b.structured(b.root(), "Items", ElementKind::XmlElement);
    let item = b.structured(items, "Item", ElementKind::XmlElement);
    b.atomic(item, "ItemNumber", ElementKind::XmlElement, DataType::Int);
    b.atomic(item, "Quantity", ElementKind::XmlElement, DataType::Decimal);
    b.atomic(item, "UnitOfMeasure", ElementKind::XmlElement, DataType::String);
    b.build().expect("static schema is valid")
}

/// The mapping §2 describes, including
/// `Lines.Item.Line → Items.Item.ItemNumber`.
pub fn gold() -> GoldMapping {
    GoldMapping::new([
        ("PO.Lines.Item.Line", "POrder.Items.Item.ItemNumber"),
        ("PO.Lines.Item.Qty", "POrder.Items.Item.Quantity"),
        ("PO.Lines.Item.Uom", "POrder.Items.Item.UnitOfMeasure"),
    ])
}

/// Gold correspondences at the XML-element (non-leaf) level.
pub fn gold_nonleaf() -> GoldMapping {
    GoldMapping::new([
        ("PO.Lines.Item", "POrder.Items.Item"),
        ("PO.Lines", "POrder.Items"),
        ("PO", "POrder"),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_have_the_figure_shape() {
        let po = po();
        assert_eq!(po.len(), 6);
        assert_eq!(po.containment_path(po.find("Qty").unwrap()), "PO.Lines.Item.Qty");
        let porder = porder();
        assert_eq!(porder.len(), 6);
        assert!(porder.find("UnitOfMeasure").is_some());
    }

    #[test]
    fn gold_covers_all_leaves() {
        assert_eq!(gold().len(), 3);
        assert_eq!(gold_nonleaf().len(), 3);
    }
}
