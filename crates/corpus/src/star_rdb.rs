//! Figure 8: the RDB (operational) and Star (warehouse) relational
//! schemas used to demonstrate referential constraints as join views
//! (§9.2).
//!
//! *"A good mapping would map the join of Territories and Region to
//! Geography, Customers to Customers, Products to Products, and Orders
//! or OrderDetails (or a join of the two) to Sales."*

use cupid_model::{DataType, ElementId, Schema, SchemaBuilder};

use crate::gold::GoldMapping;

struct Rel<'a> {
    b: &'a mut SchemaBuilder,
}

impl<'a> Rel<'a> {
    fn table(&mut self, name: &str, cols: &[(&str, DataType)]) -> (ElementId, Vec<ElementId>) {
        let t = self.b.table(name);
        let ids = cols.iter().map(|(n, dt)| self.b.column(t, *n, *dt)).collect();
        (t, ids)
    }

    /// Mark nullable columns: the relational realization of §8.4
    /// optionality (optional leaves unmatched on the other side are
    /// penalized less).
    fn nullable(&mut self, cols: &[ElementId]) {
        for &c in cols {
            self.b.set_optional(c, true);
        }
    }
}

/// The operational RDB schema (right side of Figure 8): 13 tables with
/// their foreign keys.
pub fn rdb() -> Schema {
    use DataType::*;
    let mut b = SchemaBuilder::new("RDB");
    let mut r = Rel { b: &mut b };

    let (ship_methods, sm_cols) =
        r.table("ShippingMethods", &[("ShippingMethodID", Int), ("ShippingMethod", String)]);
    let (region, rg_cols) = r.table("Region", &[("RegionID", Int), ("RegionDescription", String)]);
    let (pay_methods, pm_cols) =
        r.table("PaymentMethods", &[("PaymentMethodID", Int), ("PaymentMethod", String)]);
    let (brands, br_cols) = r.table("Brands", &[("BrandID", Int), ("BrandDescription", String)]);
    let (territories, tr_cols) =
        r.table("Territories", &[("TerritoryID", Int), ("TerritoryDescription", String)]);
    let (employees, em_cols) = r.table(
        "Employees",
        &[
            ("EmployeeID", Int),
            ("FirstName", String),
            ("LastName", String),
            ("Title", String),
            ("EmailName", String),
            ("Extension", String),
            ("Workphone", String),
        ],
    );
    let (products, pr_cols) = r.table(
        "Products",
        &[
            ("ProductID", Int),
            ("BrandID", Int),
            ("ProductName", String),
            ("BrandDescription", String),
        ],
    );
    let (customers, cu_cols) = r.table(
        "Customers",
        &[
            ("CustomerID", Int),
            ("CompanyName", String),
            ("ContactFirstName", String),
            ("ContactLastName", String),
            ("BillingAddress", String),
            ("City", String),
            ("StateOrProvince", String),
            ("PostalCode", String),
            ("Country", String),
            ("ContactTitle", String),
            ("PhoneNumber", String),
            ("FaxNumber", String),
        ],
    );
    let (orders, or_cols) = r.table(
        "Orders",
        &[
            ("OrderID", Int),
            ("ShippingMethodID", Int),
            ("EmployeeID", Int),
            ("CustomerID", Int),
            ("OrderDate", Date),
            ("Quantity", Decimal),
            ("UnitPrice", Money),
            ("Discount", Decimal),
            ("PurchaseOrdNumber", String),
            ("ShipName", String),
            ("ShipAddress", String),
            ("ShipDate", Date),
            ("FreightCharge", Money),
            ("SalesTaxRate", Decimal),
        ],
    );
    let (order_details, od_cols) = r.table(
        "OrderDetails",
        &[
            ("OrderDetailID", Int),
            ("OrderID", Int),
            ("ProductID", Int),
            ("Quantity", Decimal),
            ("UnitPrice", Money),
            ("Discount", Decimal),
        ],
    );
    let (payment, pa_cols) = r.table(
        "Payment",
        &[
            ("PaymentID", Int),
            ("OrderID", Int),
            ("PaymentMethodID", Int),
            ("PaymentAmount", Money),
            ("PaymentDate", Date),
            ("CreditCardNumber", String),
            ("CardholdersName", String),
            ("CredCardExpDate", Date),
        ],
    );
    let (territory_region, tg_cols) =
        r.table("TerritoryRegion", &[("TerritoryID", Int), ("RegionID", Int)]);
    let (employee_territory, et_cols) =
        r.table("EmployeeTerritory", &[("EmployeeID", Int), ("TerritoryID", Int)]);

    // Nullable (descriptive) columns, Northwind-style: purchase-order
    // number, shipping details and freight on Orders; contact/phone
    // details on Customers and Employees; card details on Payment.
    r.nullable(&or_cols_nullable(&or_cols));
    r.nullable(&[cu_cols[4], cu_cols[9], cu_cols[10], cu_cols[11]]);
    r.nullable(&[em_cols[3], em_cols[4], em_cols[5], em_cols[6]]);
    r.nullable(&[pa_cols[5], pa_cols[6], pa_cols[7]]);

    // primary keys
    let sm_pk = b.primary_key(ship_methods, &[sm_cols[0]]);
    let rg_pk = b.primary_key(region, &[rg_cols[0]]);
    let pm_pk = b.primary_key(pay_methods, &[pm_cols[0]]);
    let br_pk = b.primary_key(brands, &[br_cols[0]]);
    let tr_pk = b.primary_key(territories, &[tr_cols[0]]);
    let em_pk = b.primary_key(employees, &[em_cols[0]]);
    let pr_pk = b.primary_key(products, &[pr_cols[0]]);
    let cu_pk = b.primary_key(customers, &[cu_cols[0]]);
    let or_pk = b.primary_key(orders, &[or_cols[0]]);
    let od_pk = b.primary_key(order_details, &[od_cols[0]]);
    let pa_pk = b.primary_key(payment, &[pa_cols[0]]);
    let _ = (pa_pk, od_pk);

    // foreign keys (Figure 8's FK annotations)
    b.foreign_key(orders, "Orders-ShippingMethods-fk", &[or_cols[1]], sm_pk);
    b.foreign_key(orders, "Orders-Employees-fk", &[or_cols[2]], em_pk);
    b.foreign_key(orders, "Orders-Customers-fk", &[or_cols[3]], cu_pk);
    b.foreign_key(order_details, "OrderDetails-Orders-fk", &[od_cols[1]], or_pk);
    b.foreign_key(order_details, "OrderDetails-Products-fk", &[od_cols[2]], pr_pk);
    b.foreign_key(payment, "Payment-Orders-fk", &[pa_cols[1]], or_pk);
    b.foreign_key(payment, "Payment-PaymentMethods-fk", &[pa_cols[2]], pm_pk);
    b.foreign_key(products, "Products-Brands-fk", &[pr_cols[1]], br_pk);
    b.foreign_key(territory_region, "TerritoryRegion-Territories-fk", &[tg_cols[0]], tr_pk);
    b.foreign_key(territory_region, "TerritoryRegion-Region-fk", &[tg_cols[1]], rg_pk);
    b.foreign_key(employee_territory, "EmployeeTerritory-Employees-fk", &[et_cols[0]], em_pk);
    b.foreign_key(employee_territory, "EmployeeTerritory-Territories-fk", &[et_cols[1]], tr_pk);

    b.build().expect("static schema is valid")
}

/// Orders' nullable columns: PurchaseOrdNumber, ShipName, ShipAddress,
/// ShipDate, FreightCharge, SalesTaxRate (indices 8..14).
fn or_cols_nullable(or_cols: &[ElementId]) -> Vec<ElementId> {
    or_cols[8..14].to_vec()
}

/// The Star warehouse schema (left side of Figure 8): Sales fact table
/// plus Geography, Customers, Time and Products dimensions.
pub fn star() -> Schema {
    use DataType::*;
    let mut b = SchemaBuilder::new("Star");
    let mut r = Rel { b: &mut b };

    let (geography, ge_cols) = r.table(
        "Geography",
        &[
            ("PostalCode", String),
            ("TerritoryID", Int),
            ("TerritoryDescription", String),
            ("RegionID", Int),
            ("RegionDescription", String),
        ],
    );
    let (customers, cu_cols) = r.table(
        "Customers",
        &[
            ("CustomerID", Int),
            ("CustomerName", String),
            ("CustomerTypeID", Int),
            ("CustomerTypeDescription", String),
            ("PostalCode", String),
            ("State", String),
        ],
    );
    let (time, ti_cols) = r.table(
        "Time",
        &[
            ("Date", Date),
            ("DayOfWeek", String),
            ("Month", Int),
            ("Year", Int),
            ("Quarter", Int),
            ("DayOfYear", Int),
            ("Holiday", Bool),
            ("Weekend", Bool),
            ("YearMonth", String),
            ("WeekOfYear", Int),
        ],
    );
    let (products, pr_cols) = r.table(
        "Products",
        &[
            ("ProductID", Int),
            ("ProductName", String),
            ("BrandID", Int),
            ("BrandDescription", String),
        ],
    );
    let (sales, sa_cols) = r.table(
        "Sales",
        &[
            ("OrderID", Int),
            ("OrderDetailID", Int),
            ("CustomerID", Int),
            ("PostalCode", String),
            ("ProductID", Int),
            ("OrderDate", Date),
            ("Quantity", Decimal),
            ("UnitPrice", Money),
            ("Discount", Decimal),
        ],
    );

    let ge_pk = b.primary_key(geography, &[ge_cols[0]]);
    let cu_pk = b.primary_key(customers, &[cu_cols[0]]);
    let ti_pk = b.primary_key(time, &[ti_cols[0]]);
    let pr_pk = b.primary_key(products, &[pr_cols[0]]);
    b.primary_key(sales, &[sa_cols[0], sa_cols[1]]);

    b.foreign_key(sales, "Sales-Customers-fk", &[sa_cols[2]], cu_pk);
    b.foreign_key(sales, "Sales-Geography-fk", &[sa_cols[3]], ge_pk);
    b.foreign_key(sales, "Sales-Products-fk", &[sa_cols[4]], pr_pk);
    b.foreign_key(sales, "Sales-Time-fk", &[sa_cols[5]], ti_pk);

    b.build().expect("static schema is valid")
}

/// Column-level gold correspondences for RDB → Star that §9.2 calls out
/// explicitly: Products and Customers columns, the Geography columns
/// from Region/Territories, and *"the three PostalCode columns in the
/// Star Schema are all mapped to the Customers.PostalCode column in the
/// RDB schema"*.
pub fn gold_columns() -> GoldMapping {
    let mut pairs: Vec<(String, String)> = Vec::new();
    for c in ["ProductID", "ProductName", "BrandID", "BrandDescription"] {
        pairs.push((format!("RDB.Products.{c}"), format!("Star.Products.{c}")));
    }
    // Brands is the canonical home of the brand columns (Products carries
    // a denormalized copy in Figure 8); both are acceptable sources.
    pairs.push(("RDB.Brands.BrandID".into(), "Star.Products.BrandID".into()));
    pairs.push(("RDB.Brands.BrandDescription".into(), "Star.Products.BrandDescription".into()));
    pairs.push(("RDB.Customers.CustomerID".into(), "Star.Customers.CustomerID".into()));
    pairs.push(("RDB.Customers.PostalCode".into(), "Star.Customers.PostalCode".into()));
    pairs.push(("RDB.Customers.StateOrProvince".into(), "Star.Customers.State".into()));
    // CustomerName <- CompanyName is also defensible; the paper discusses
    // CustomerName vs ContactFirst/LastName as missed without a
    // Customer:Contact thesaurus entry.
    pairs.push(("RDB.Customers.CompanyName".into(), "Star.Customers.CustomerName".into()));
    // Geography columns come from Territories/Region (reached via the
    // TerritoryRegion join views).
    pairs.push(("RDB.Territories.TerritoryID".into(), "Star.Geography.TerritoryID".into()));
    pairs.push((
        "RDB.Territories.TerritoryDescription".into(),
        "Star.Geography.TerritoryDescription".into(),
    ));
    pairs.push(("RDB.Region.RegionID".into(), "Star.Geography.RegionID".into()));
    pairs.push(("RDB.Region.RegionDescription".into(), "Star.Geography.RegionDescription".into()));
    // TerritoryRegion's own FK columns are acceptable sources too (the
    // paper: "RegionID and TerritoryID map to the columns of the
    // Territory-Region table").
    pairs.push(("RDB.TerritoryRegion.TerritoryID".into(), "Star.Geography.TerritoryID".into()));
    pairs.push(("RDB.TerritoryRegion.RegionID".into(), "Star.Geography.RegionID".into()));
    // The three Star PostalCodes ← RDB Customers.PostalCode.
    for t in ["Star.Geography.PostalCode", "Star.Customers.PostalCode", "Star.Sales.PostalCode"] {
        pairs.push(("RDB.Customers.PostalCode".into(), t.into()));
    }
    // Sales measures from Orders/OrderDetails.
    for c in ["Quantity", "UnitPrice", "Discount"] {
        pairs.push((format!("RDB.OrderDetails.{c}"), format!("Star.Sales.{c}")));
        pairs.push((format!("RDB.Orders.{c}"), format!("Star.Sales.{c}")));
    }
    pairs.push(("RDB.Orders.OrderID".into(), "Star.Sales.OrderID".into()));
    pairs.push(("RDB.OrderDetails.OrderID".into(), "Star.Sales.OrderID".into()));
    pairs.push(("RDB.OrderDetails.OrderDetailID".into(), "Star.Sales.OrderDetailID".into()));
    pairs.push(("RDB.Orders.CustomerID".into(), "Star.Sales.CustomerID".into()));
    pairs.push(("RDB.OrderDetails.ProductID".into(), "Star.Sales.ProductID".into()));
    pairs.push(("RDB.Orders.OrderDate".into(), "Star.Sales.OrderDate".into()));
    pairs.push(("RDB.Orders.OrderDate".into(), "Star.Time.Date".into()));
    GoldMapping::new(pairs)
}

/// Table-level expectations from §9.2 (any of the listed sources is the
/// paper-sanctioned match for the target).
pub fn gold_tables() -> GoldMapping {
    GoldMapping::new([
        ("RDB.Products", "Star.Products"),
        ("RDB.Customers", "Star.Customers"),
        // "map the join of Territories and Region to Geography"
        ("RDB.TerritoryRegion-Territories-fk", "Star.Geography"),
        ("RDB.TerritoryRegion-Region-fk", "Star.Geography"),
        // "Orders or OrderDetails (or a join of the two) to Sales"
        ("RDB.Orders", "Star.Sales"),
        ("RDB.OrderDetails", "Star.Sales"),
        ("RDB.OrderDetails-Orders-fk", "Star.Sales"),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_model::{expand, ElementKind, ExpandOptions};

    #[test]
    fn rdb_shape() {
        let s = rdb();
        let t = expand(&s, &ExpandOptions::none()).unwrap();
        // 13 tables
        assert_eq!(
            s.children(s.root())
                .iter()
                .filter(|&&c| s.element(c).kind == ElementKind::Table)
                .count(),
            13
        );
        assert!(t.find_path("RDB.Orders.PurchaseOrdNumber").is_some());
        assert_eq!(s.foreign_keys().len(), 12);
    }

    #[test]
    fn star_shape() {
        let s = star();
        let t = expand(&s, &ExpandOptions::none()).unwrap();
        assert!(t.find_path("Star.Sales.OrderDetailID").is_some());
        assert_eq!(s.foreign_keys().len(), 4);
        // 5 + 6 + 10 + 4 + 9 = 34 columns
        assert_eq!(t.leaf_count(), 34);
    }

    #[test]
    fn join_views_reify() {
        let s = rdb();
        let t = expand(&s, &ExpandOptions::all()).unwrap();
        let join = t.find_path("RDB.OrderDetails-Orders-fk").expect("join view");
        // children: 6 OrderDetails + 14 Orders columns
        assert_eq!(t.node(join).children.len(), 20);
        assert!(t.find_path("RDB.TerritoryRegion-Territories-fk").is_some());
        assert!(t.find_path("RDB.TerritoryRegion-Region-fk").is_some());
    }

    #[test]
    fn gold_paths_exist_in_expanded_trees() {
        let t1 = expand(&rdb(), &ExpandOptions::all()).unwrap();
        let t2 = expand(&star(), &ExpandOptions::all()).unwrap();
        for (s, t) in gold_columns().pairs() {
            assert!(t1.find_path(s).is_some(), "missing RDB path {s}");
            assert!(t2.find_path(t).is_some(), "missing Star path {t}");
        }
        for (s, t) in gold_tables().pairs() {
            assert!(t1.find_path(s).is_some(), "missing RDB table path {s}");
            assert!(t2.find_path(t).is_some(), "missing Star table path {t}");
        }
    }
}
