//! Figure 7: the CIDX and Excel XML purchase orders from BizTalk.org —
//! the paper's real-world example (§9.2, Table 3).
//!
//! *"We chose these particular schemas because, while somewhat similar,
//! they also have XML elements with differences in nesting, some missing
//! elements, non-matching data types and slightly different names."*
//!
//! In the Excel schema, the `Address` and `Contact` structures are shared
//! types instantiated under both `DeliverTo` and `InvoiceTo` — these are
//! the XML attributes occurring in multiple contexts that §9.3(3) counts.
//! The CIDX schema nests the address fields directly under
//! `POShipTo`/`POBillTo` (no intermediate `Address` level) and keeps a
//! single `Contact` element at top level: the nesting differences the
//! paper highlights.

use cupid_model::{DataType, ElementId, ElementKind, Schema, SchemaBuilder};

use crate::gold::GoldMapping;

const ADDRESS_FIELDS: [&str; 8] =
    ["Street1", "Street2", "Street3", "Street4", "City", "StateProvince", "PostalCode", "Country"];

fn lower_first(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_lowercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

fn address_fields(b: &mut SchemaBuilder, parent: ElementId, capitalized: bool) {
    for f in ADDRESS_FIELDS {
        let name = if capitalized { f.to_string() } else { lower_first(f) };
        b.atomic(parent, name, ElementKind::XmlAttribute, DataType::String);
    }
}

/// The CIDX purchase order (left side of Figure 7).
pub fn cidx() -> Schema {
    let mut b = SchemaBuilder::new("PO");
    let header = b.structured(b.root(), "POHeader", ElementKind::XmlElement);
    b.atomic(header, "PONumber", ElementKind::XmlAttribute, DataType::String);
    b.atomic(header, "PODate", ElementKind::XmlAttribute, DataType::Date);

    let contact = b.structured(b.root(), "Contact", ElementKind::XmlElement);
    b.atomic(contact, "ContactName", ElementKind::XmlAttribute, DataType::String);
    b.atomic(contact, "ContactEmail", ElementKind::XmlAttribute, DataType::String);
    b.atomic(contact, "ContactPhone", ElementKind::XmlAttribute, DataType::String);
    b.atomic(contact, "ContactFunctionCode", ElementKind::XmlAttribute, DataType::String);

    for part in ["POShipTo", "POBillTo"] {
        let p = b.structured(b.root(), part, ElementKind::XmlElement);
        address_fields(&mut b, p, true);
        let attn = b.atomic(p, "attn", ElementKind::XmlAttribute, DataType::String);
        b.set_optional(attn, true);
        let eid = b.atomic(p, "entityIdentifier", ElementKind::XmlAttribute, DataType::String);
        b.set_optional(eid, true);
    }

    let start = b.atomic(b.root(), "startAt", ElementKind::XmlAttribute, DataType::Date);
    b.set_optional(start, true);

    let lines = b.structured(b.root(), "POLines", ElementKind::XmlElement);
    b.atomic(lines, "count", ElementKind::XmlAttribute, DataType::Int);
    let item = b.structured(lines, "Item", ElementKind::XmlElement);
    b.atomic(item, "line", ElementKind::XmlAttribute, DataType::Int);
    b.atomic(item, "partno", ElementKind::XmlAttribute, DataType::String);
    b.atomic(item, "qty", ElementKind::XmlAttribute, DataType::Decimal);
    b.atomic(item, "uom", ElementKind::XmlAttribute, DataType::String);
    b.atomic(item, "unitPrice", ElementKind::XmlAttribute, DataType::Money);
    b.build().expect("static schema is valid")
}

/// The Excel purchase order (right side of Figure 7). `Address` and
/// `Contact` are shared complex types; `DeliverTo` and `InvoiceTo` each
/// contain an `Address` and a `Contact` element deriving from them.
pub fn excel() -> Schema {
    let mut b = SchemaBuilder::new("PurchaseOrder");
    let header = b.structured(b.root(), "Header", ElementKind::XmlElement);
    b.atomic(header, "orderNum", ElementKind::XmlAttribute, DataType::String);
    b.atomic(header, "orderDate", ElementKind::XmlAttribute, DataType::Date);
    b.atomic(header, "yourAccountCode", ElementKind::XmlAttribute, DataType::String);
    b.atomic(header, "ourAccountCode", ElementKind::XmlAttribute, DataType::String);

    let addr_type = b.type_def("AddressType");
    address_fields(&mut b, addr_type, false);
    let contact_type = b.type_def("ContactType");
    b.atomic(contact_type, "companyName", ElementKind::XmlAttribute, DataType::String);
    b.atomic(contact_type, "contactName", ElementKind::XmlAttribute, DataType::String);
    b.atomic(contact_type, "e-mail", ElementKind::XmlAttribute, DataType::String);
    b.atomic(contact_type, "telephone", ElementKind::XmlAttribute, DataType::String);

    for part in ["DeliverTo", "InvoiceTo"] {
        let p = b.structured(b.root(), part, ElementKind::XmlElement);
        let a = b.structured(p, "Address", ElementKind::XmlElement);
        b.derive_from(a, addr_type);
        let c = b.structured(p, "Contact", ElementKind::XmlElement);
        b.derive_from(c, contact_type);
    }

    let items = b.structured(b.root(), "Items", ElementKind::XmlElement);
    b.atomic(items, "itemCount", ElementKind::XmlAttribute, DataType::Int);
    let item = b.structured(items, "Item", ElementKind::XmlElement);
    b.atomic(item, "itemNumber", ElementKind::XmlAttribute, DataType::Int);
    b.atomic(item, "partNumber", ElementKind::XmlAttribute, DataType::String);
    let ypn = b.atomic(item, "yourPartNumber", ElementKind::XmlAttribute, DataType::String);
    b.set_optional(ypn, true);
    let pd = b.atomic(item, "partDescription", ElementKind::XmlAttribute, DataType::String);
    b.set_optional(pd, true);
    b.atomic(item, "Quantity", ElementKind::XmlAttribute, DataType::Decimal);
    b.atomic(item, "unitOfMeasure", ElementKind::XmlAttribute, DataType::String);
    b.atomic(item, "unitPrice", ElementKind::XmlAttribute, DataType::Money);

    let footer = b.structured(b.root(), "Footer", ElementKind::XmlElement);
    b.atomic(footer, "totalValue", ElementKind::XmlAttribute, DataType::Money);
    b.build().expect("static schema is valid")
}

/// Leaf-level gold for CIDX → Excel. Context-dependent: `POShipTo`'s
/// address feeds `DeliverTo.Address`, `POBillTo`'s feeds
/// `InvoiceTo.Address`. The single CIDX `Contact` legitimately feeds both
/// Excel `Contact` copies (a 1:n mapping).
pub fn gold() -> GoldMapping {
    let mut pairs: Vec<(String, String)> = vec![
        ("PO.POHeader.PONumber".into(), "PurchaseOrder.Header.orderNum".into()),
        ("PO.POHeader.PODate".into(), "PurchaseOrder.Header.orderDate".into()),
        ("PO.POLines.count".into(), "PurchaseOrder.Items.itemCount".into()),
        ("PO.POLines.Item.line".into(), "PurchaseOrder.Items.Item.itemNumber".into()),
        ("PO.POLines.Item.partno".into(), "PurchaseOrder.Items.Item.partNumber".into()),
        ("PO.POLines.Item.qty".into(), "PurchaseOrder.Items.Item.Quantity".into()),
        ("PO.POLines.Item.uom".into(), "PurchaseOrder.Items.Item.unitOfMeasure".into()),
        ("PO.POLines.Item.unitPrice".into(), "PurchaseOrder.Items.Item.unitPrice".into()),
    ];
    for (cidx_part, excel_part) in [("POShipTo", "DeliverTo"), ("POBillTo", "InvoiceTo")] {
        for field in ADDRESS_FIELDS {
            pairs.push((
                format!("PO.{cidx_part}.{field}"),
                format!("PurchaseOrder.{excel_part}.Address.{}", lower_first(field)),
            ));
        }
    }
    for excel_part in ["DeliverTo", "InvoiceTo"] {
        pairs.push((
            "PO.Contact.ContactName".into(),
            format!("PurchaseOrder.{excel_part}.Contact.contactName"),
        ));
        pairs.push((
            "PO.Contact.ContactEmail".into(),
            format!("PurchaseOrder.{excel_part}.Contact.e-mail"),
        ));
        pairs.push((
            "PO.Contact.ContactPhone".into(),
            format!("PurchaseOrder.{excel_part}.Contact.telephone"),
        ));
    }
    GoldMapping::new(pairs)
}

/// The XML-element level correspondences of Table 3.
pub fn gold_elements() -> GoldMapping {
    GoldMapping::new([
        ("PO.POHeader", "PurchaseOrder.Header"),
        ("PO.POLines.Item", "PurchaseOrder.Items.Item"),
        ("PO.POLines", "PurchaseOrder.Items"),
        ("PO.POBillTo", "PurchaseOrder.InvoiceTo"),
        ("PO.POShipTo", "PurchaseOrder.DeliverTo"),
        ("PO.Contact", "PurchaseOrder.DeliverTo.Contact"),
        ("PO.Contact", "PurchaseOrder.InvoiceTo.Contact"),
        ("PO", "PurchaseOrder"),
    ])
}

/// The Table 3 rows: (label, CIDX path, acceptable Excel paths).
pub fn table3_rows() -> Vec<(&'static str, &'static str, Vec<&'static str>)> {
    vec![
        ("POHeader -> Header", "PO.POHeader", vec!["PurchaseOrder.Header"]),
        ("Item -> Item", "PO.POLines.Item", vec!["PurchaseOrder.Items.Item"]),
        ("POLines -> Items", "PO.POLines", vec!["PurchaseOrder.Items"]),
        ("POBillTo -> InvoiceTo", "PO.POBillTo", vec!["PurchaseOrder.InvoiceTo"]),
        ("POShipTo -> DeliverTo", "PO.POShipTo", vec!["PurchaseOrder.DeliverTo"]),
        (
            "Contact -> Contact",
            "PO.Contact",
            vec!["PurchaseOrder.DeliverTo.Contact", "PurchaseOrder.InvoiceTo.Contact"],
        ),
        ("PO -> PurchaseOrder", "PO", vec!["PurchaseOrder"]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_model::{expand, ExpandOptions};

    #[test]
    fn cidx_shape() {
        let s = cidx();
        let t = expand(&s, &ExpandOptions::none()).unwrap();
        // 2 header + 4 contact + 2×10 addresses + startAt + count + 5 item
        assert_eq!(t.leaf_count(), 33);
        assert!(t.find_path("PO.POShipTo.Street4").is_some());
        assert!(t.find_path("PO.POLines.Item.unitPrice").is_some());
    }

    #[test]
    fn excel_shape_with_shared_types() {
        let s = excel();
        let t = expand(&s, &ExpandOptions::none()).unwrap();
        // 4 header + 2×(8 addr + 4 contact) + itemCount + 7 item + 1 footer
        assert_eq!(t.leaf_count(), 37);
        assert!(t.find_path("PurchaseOrder.DeliverTo.Address.street2").is_some());
        assert!(t.find_path("PurchaseOrder.InvoiceTo.Contact.telephone").is_some());
        // the 12 shared attributes appear in two contexts each
        let shared: usize = s.iter().filter(|(id, _)| t.nodes_of_element(*id).len() > 1).count();
        assert_eq!(shared, 12);
    }

    #[test]
    fn gold_paths_exist() {
        let t1 = expand(&cidx(), &ExpandOptions::none()).unwrap();
        let t2 = expand(&excel(), &ExpandOptions::none()).unwrap();
        for (s, t) in gold().pairs() {
            assert!(t1.find_path(s).is_some(), "missing CIDX path {s}");
            assert!(t2.find_path(t).is_some(), "missing Excel path {t}");
        }
        for (s, t) in gold_elements().pairs() {
            assert!(t1.find_path(s).is_some(), "missing CIDX element {s}");
            assert!(t2.find_path(t).is_some(), "missing Excel element {t}");
        }
        for (_, s, ts) in table3_rows() {
            assert!(t1.find_path(s).is_some(), "missing table3 source {s}");
            for t in ts {
                assert!(t2.find_path(t).is_some(), "missing table3 target {t}");
            }
        }
    }

    #[test]
    fn optional_attributes_marked() {
        let s = cidx();
        let attn = s.iter().find(|(_, e)| e.name == "attn").map(|(id, _)| id).unwrap();
        assert!(s.element(attn).optional);
        let e = excel();
        let ypn = e.iter().find(|(_, el)| el.name == "yourPartNumber").map(|(id, _)| id).unwrap();
        assert!(e.element(ypn).optional);
    }
}
