//! # cupid-corpus — the evaluation corpus of the Cupid paper
//!
//! Faithful transcriptions of every schema in the paper's figures and
//! experiments, with gold-standard mappings and the exact auxiliary
//! thesauri the paper describes:
//!
//! * [`fig1`] — the introductory PO / POrder example (Figure 1);
//! * [`fig2`] — the running example: PO vs PurchaseOrder (Figure 2);
//! * [`canonical`] — the six canonical examples of §9.1 (identical
//!   schemas, data-type variation, name variation, class renaming,
//!   nesting differences, type substitution);
//! * [`cidx_excel`] — the CIDX and Excel purchase orders from
//!   BizTalk.org (Figure 7, Table 3);
//! * [`star_rdb`] — the RDB → Star warehouse schemas (Figure 8);
//! * [`thesauri`] — the experiment thesauri (§9.2: *"the thesauri had a
//!   total of 4 abbreviations (UOM, PO, Qty, Num) and 2 synonymy entries
//!   (Invoice,Bill; Ship,Deliver)"*);
//! * [`gold`] — gold-standard mapping representation;
//! * [`synthetic`] — a seeded random schema-pair generator with a
//!   perturbation model, for the scalability analysis the paper calls
//!   for in its future work (§10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod cidx_excel;
pub mod fig1;
pub mod fig2;
pub mod gold;
pub mod star_rdb;
pub mod synthetic;
pub mod thesauri;

pub use gold::GoldMapping;
