//! The six canonical examples of §9.1, used for Table 2.
//!
//! *"The test schemas used were object-oriented schemas with a small
//! number of class definitions."* Each case isolates one matching
//! property: data types, names, class names, nesting, type substitution.

use cupid_model::{DataType, ElementKind, Schema, SchemaBuilder};

use crate::gold::GoldMapping;

/// One canonical test case: a schema pair, gold leaf mapping, and the
/// paper's reported verdicts (Table 2).
#[derive(Debug, Clone)]
pub struct CanonicalCase {
    /// Case number (1–6) as in Table 2.
    pub id: usize,
    /// Table 2's description.
    pub description: &'static str,
    /// Source schema (Schema1).
    pub schema1: Schema,
    /// Target schema (Schema2).
    pub schema2: Schema,
    /// Gold leaf-level correspondences.
    pub gold: GoldMapping,
    /// Table 2 verdicts: (Cupid, DIKE, MOMIS-ARTEMIS).
    pub paper_verdicts: (bool, bool, bool),
}

fn customer_class(
    b: &mut SchemaBuilder,
    class: &str,
    attrs: &[(&str, DataType)],
) -> cupid_model::ElementId {
    let c = b.structured(b.root(), class, ElementKind::Class);
    for (name, dt) in attrs {
        b.atomic(c, *name, ElementKind::Attribute, *dt);
    }
    c
}

/// Case 1 — identical schemas: `Customer(Customer_Number: integer (key),
/// Name: string, Address: string)`.
pub fn case1() -> CanonicalCase {
    let attrs: [(&str, DataType); 3] = [
        ("CustomerNumber", DataType::Int),
        ("Name", DataType::String),
        ("Address", DataType::String),
    ];
    let mut b = SchemaBuilder::new("Schema1");
    customer_class(&mut b, "Customer", &attrs);
    let s1 = b.build().unwrap();
    let mut b = SchemaBuilder::new("Schema2");
    customer_class(&mut b, "Customer", &attrs);
    let s2 = b.build().unwrap();
    CanonicalCase {
        id: 1,
        description: "Identical schemas",
        schema1: s1,
        schema2: s2,
        gold: GoldMapping::new([
            ("Schema1.Customer.CustomerNumber", "Schema2.Customer.CustomerNumber"),
            ("Schema1.Customer.Name", "Schema2.Customer.Name"),
            ("Schema1.Customer.Address", "Schema2.Customer.Address"),
        ]),
        paper_verdicts: (true, true, true),
    }
}

/// Case 2 — same names, different data types: `Telephone` is a string in
/// Schema1 and an integer in Schema2.
pub fn case2() -> CanonicalCase {
    let mut b = SchemaBuilder::new("Schema1");
    customer_class(
        &mut b,
        "Customer",
        &[
            ("CustomerNumber", DataType::Int),
            ("Name", DataType::String),
            ("Address", DataType::String),
            ("Telephone", DataType::String),
        ],
    );
    let s1 = b.build().unwrap();
    let mut b = SchemaBuilder::new("Schema2");
    customer_class(
        &mut b,
        "Customer",
        &[
            ("CustomerNumber", DataType::Int),
            ("Name", DataType::String),
            ("Address", DataType::String),
            ("Telephone", DataType::Int),
        ],
    );
    let s2 = b.build().unwrap();
    CanonicalCase {
        id: 2,
        description: "Atomic elements with same names, but different data types",
        schema1: s1,
        schema2: s2,
        gold: GoldMapping::new([
            ("Schema1.Customer.CustomerNumber", "Schema2.Customer.CustomerNumber"),
            ("Schema1.Customer.Name", "Schema2.Customer.Name"),
            ("Schema1.Customer.Address", "Schema2.Customer.Address"),
            ("Schema1.Customer.Telephone", "Schema2.Customer.Telephone"),
        ]),
        paper_verdicts: (true, true, true),
    }
}

/// Case 3 — same data types, names with a prefix/suffix added:
/// `Address` → `StreetAddress`, `Name` → `CustomerName`, etc.
pub fn case3() -> CanonicalCase {
    let mut b = SchemaBuilder::new("Schema1");
    customer_class(
        &mut b,
        "Customer",
        &[
            ("CustomerNumber", DataType::Int),
            ("Name", DataType::String),
            ("Address", DataType::String),
        ],
    );
    let s1 = b.build().unwrap();
    let mut b = SchemaBuilder::new("Schema2");
    customer_class(
        &mut b,
        "Customer",
        &[
            ("CustomerNumberId", DataType::Int),
            ("CustomerName", DataType::String),
            ("StreetAddress", DataType::String),
        ],
    );
    let s2 = b.build().unwrap();
    CanonicalCase {
        id: 3,
        description: "Same data types, slightly different names (prefix/suffix added)",
        schema1: s1,
        schema2: s2,
        gold: GoldMapping::new([
            ("Schema1.Customer.CustomerNumber", "Schema2.Customer.CustomerNumberId"),
            ("Schema1.Customer.Name", "Schema2.Customer.CustomerName"),
            ("Schema1.Customer.Address", "Schema2.Customer.StreetAddress"),
        ]),
        paper_verdicts: (true, true, true), // DIKE needs LSPD entries; MOMIS needs user synonyms
    }
}

/// Case 4 — class renamed (`Customer` → `Person`), attributes unchanged.
pub fn case4() -> CanonicalCase {
    let attrs: [(&str, DataType); 3] = [
        ("CustomerNumber", DataType::Int),
        ("Name", DataType::String),
        ("Address", DataType::String),
    ];
    let mut b = SchemaBuilder::new("Schema1");
    customer_class(&mut b, "Customer", &attrs);
    let s1 = b.build().unwrap();
    let mut b = SchemaBuilder::new("Schema2");
    customer_class(&mut b, "Person", &attrs);
    let s2 = b.build().unwrap();
    CanonicalCase {
        id: 4,
        description: "Different class names, atomic elements with same names and data types",
        schema1: s1,
        schema2: s2,
        gold: GoldMapping::new([
            ("Schema1.Customer.CustomerNumber", "Schema2.Person.CustomerNumber"),
            ("Schema1.Customer.Name", "Schema2.Person.Name"),
            ("Schema1.Customer.Address", "Schema2.Person.Address"),
        ]),
        paper_verdicts: (true, true, true),
    }
}

/// Case 5 — different nesting: the nested schema groups name and address
/// parts into sub-elements; the flat schema does not.
pub fn case5() -> CanonicalCase {
    // Nested-Schema: Customer(SSN, Telephone, Name(FirstName, LastName),
    //                         Address(Street, City, State, Zip))
    let mut b = SchemaBuilder::new("Schema1");
    let c = b.structured(b.root(), "Customer", ElementKind::Class);
    b.atomic(c, "SSN", ElementKind::Attribute, DataType::String);
    b.atomic(c, "Telephone", ElementKind::Attribute, DataType::String);
    let name = b.structured(c, "Name", ElementKind::Class);
    b.atomic(name, "FirstName", ElementKind::Attribute, DataType::String);
    b.atomic(name, "LastName", ElementKind::Attribute, DataType::String);
    let addr = b.structured(c, "Address", ElementKind::Class);
    b.atomic(addr, "Street", ElementKind::Attribute, DataType::String);
    b.atomic(addr, "City", ElementKind::Attribute, DataType::String);
    b.atomic(addr, "State", ElementKind::Attribute, DataType::String);
    b.atomic(addr, "Zip", ElementKind::Attribute, DataType::String);
    let s1 = b.build().unwrap();

    // Flat-Schema: Customer(SSN, Telephone, FirstName, LastName, Street,
    //                       City, State, Zip)
    let mut b = SchemaBuilder::new("Schema2");
    customer_class(
        &mut b,
        "Customer",
        &[
            ("SSN", DataType::String),
            ("Telephone", DataType::String),
            ("FirstName", DataType::String),
            ("LastName", DataType::String),
            ("Street", DataType::String),
            ("City", DataType::String),
            ("State", DataType::String),
            ("Zip", DataType::String),
        ],
    );
    let s2 = b.build().unwrap();
    CanonicalCase {
        id: 5,
        description: "Different nesting of the data (nested vs flat structures)",
        schema1: s1,
        schema2: s2,
        gold: GoldMapping::new([
            ("Schema1.Customer.SSN", "Schema2.Customer.SSN"),
            ("Schema1.Customer.Telephone", "Schema2.Customer.Telephone"),
            ("Schema1.Customer.Name.FirstName", "Schema2.Customer.FirstName"),
            ("Schema1.Customer.Name.LastName", "Schema2.Customer.LastName"),
            ("Schema1.Customer.Address.Street", "Schema2.Customer.Street"),
            ("Schema1.Customer.Address.City", "Schema2.Customer.City"),
            ("Schema1.Customer.Address.State", "Schema2.Customer.State"),
            ("Schema1.Customer.Address.Zip", "Schema2.Customer.Zip"),
        ]),
        paper_verdicts: (true, true, false),
    }
}

/// Case 6 — type substitution / context-dependent mapping. `Address` is
/// a shared class in Schema1; Schema2 uses separate but identical
/// `ShipTo` / `BillTo` classes.
pub fn case6() -> CanonicalCase {
    let address_attrs: [(&str, DataType); 5] = [
        ("Name", DataType::String),
        ("Street", DataType::String),
        ("City", DataType::String),
        ("Zip", DataType::String),
        ("Telephone", DataType::String),
    ];
    let mut b = SchemaBuilder::new("Schema1");
    let po = b.structured(b.root(), "PurchaseOrder", ElementKind::Class);
    b.atomic(po, "OrderNumber", ElementKind::Attribute, DataType::Int);
    b.atomic(po, "ProductName", ElementKind::Attribute, DataType::String);
    let addr = b.type_def("Address");
    for (n, dt) in &address_attrs {
        b.atomic(addr, *n, ElementKind::Attribute, *dt);
    }
    let ship = b.structured(po, "ShippingAddress", ElementKind::Class);
    b.derive_from(ship, addr);
    let bill = b.structured(po, "BillingAddress", ElementKind::Class);
    b.derive_from(bill, addr);
    let s1 = b.build().unwrap();

    let mut b = SchemaBuilder::new("Schema2");
    let po = b.structured(b.root(), "PurchaseOrder", ElementKind::Class);
    b.atomic(po, "OrderNumber", ElementKind::Attribute, DataType::Int);
    b.atomic(po, "ProductName", ElementKind::Attribute, DataType::String);
    let shipto = b.type_def("ShipTo");
    for (n, dt) in &address_attrs {
        b.atomic(shipto, *n, ElementKind::Attribute, *dt);
    }
    let billto = b.type_def("BillTo");
    for (n, dt) in &address_attrs {
        b.atomic(billto, *n, ElementKind::Attribute, *dt);
    }
    let ship = b.structured(po, "ShippingAddress", ElementKind::Class);
    b.derive_from(ship, shipto);
    let bill = b.structured(po, "BillingAddress", ElementKind::Class);
    b.derive_from(bill, billto);
    let s2 = b.build().unwrap();

    let mut pairs: Vec<(String, String)> = vec![
        ("Schema1.PurchaseOrder.OrderNumber".into(), "Schema2.PurchaseOrder.OrderNumber".into()),
        ("Schema1.PurchaseOrder.ProductName".into(), "Schema2.PurchaseOrder.ProductName".into()),
    ];
    for ctx in ["ShippingAddress", "BillingAddress"] {
        for (n, _) in &address_attrs {
            pairs.push((
                format!("Schema1.PurchaseOrder.{ctx}.{n}"),
                format!("Schema2.PurchaseOrder.{ctx}.{n}"),
            ));
        }
    }
    CanonicalCase {
        id: 6,
        description: "Type substitution / context-dependent mapping",
        schema1: s1,
        schema2: s2,
        gold: GoldMapping::new(pairs),
        paper_verdicts: (true, false, false),
    }
}

/// All six cases, in Table 2 order.
pub fn all_cases() -> Vec<CanonicalCase> {
    vec![case1(), case2(), case3(), case4(), case5(), case6()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_model::{expand, ExpandOptions};

    #[test]
    fn all_cases_build_and_expand() {
        for case in all_cases() {
            let t1 = expand(&case.schema1, &ExpandOptions::none()).unwrap();
            let t2 = expand(&case.schema2, &ExpandOptions::none()).unwrap();
            assert!(t1.leaf_count() >= 3, "case {} s1", case.id);
            assert!(t2.leaf_count() >= 3, "case {} s2", case.id);
            // every gold path exists in the expanded trees
            for (s, t) in case.gold.pairs() {
                assert!(t1.find_path(s).is_some(), "case {}: missing source path {s}", case.id);
                assert!(t2.find_path(t).is_some(), "case {}: missing target path {t}", case.id);
            }
        }
    }

    #[test]
    fn case6_has_context_copies() {
        let case = case6();
        let t1 = expand(&case.schema1, &ExpandOptions::none()).unwrap();
        assert!(t1.find_path("Schema1.PurchaseOrder.ShippingAddress.Street").is_some());
        assert!(t1.find_path("Schema1.PurchaseOrder.BillingAddress.Street").is_some());
    }

    #[test]
    fn paper_verdicts_follow_table_2() {
        let cases = all_cases();
        let cupid: Vec<bool> = cases.iter().map(|c| c.paper_verdicts.0).collect();
        let dike: Vec<bool> = cases.iter().map(|c| c.paper_verdicts.1).collect();
        let momis: Vec<bool> = cases.iter().map(|c| c.paper_verdicts.2).collect();
        assert_eq!(cupid, [true; 6].to_vec());
        assert_eq!(dike, vec![true, true, true, true, true, false]);
        assert_eq!(momis, vec![true, true, true, true, false, false]);
    }
}
