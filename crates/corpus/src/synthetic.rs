//! Seeded synthetic schema-pair generator.
//!
//! The paper's future work calls for scalability analysis (§10:
//! *"Scalability analysis and testing are necessary to study the
//! performance on large-sized schemas"*). This module generates schema
//! pairs of controlled size with a perturbation model that mirrors the
//! real-world variation of Figure 7: word-level renames via synonyms,
//! abbreviations, dropped elements, flattened nesting and child
//! reordering — together with the gold mapping induced by construction
//! and a thesaurus covering exactly the introduced renames.

use cupid_lexical::{Thesaurus, ThesaurusBuilder};
use cupid_model::{DataType, ElementId, ElementKind, Schema, SchemaBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::gold::GoldMapping;

/// Word pool with synonym partners used for renames. The synonym pairs
/// are registered in the generated thesaurus with coefficient 0.9.
const WORD_PAIRS: &[(&str, &str)] = &[
    ("order", "purchase"),
    ("customer", "client"),
    ("price", "cost"),
    ("quantity", "amount"),
    ("street", "road"),
    ("phone", "telephone"),
    ("bill", "invoice"),
    ("ship", "deliver"),
    ("item", "article"),
    ("vendor", "supplier"),
    ("payment", "remittance"),
    ("freight", "cargo"),
    ("employee", "worker"),
    ("region", "zone"),
    ("category", "group"),
    ("product", "goods"),
    ("account", "ledger"),
    ("branch", "office"),
    ("warehouse", "depot"),
    ("discount", "rebate"),
];

/// Second words for compound names (never renamed, so every name keeps a
/// recognizable token).
const SUFFIX_WORDS: &[&str] =
    &["id", "name", "code", "number", "date", "total", "status", "type", "flag", "line"];

const LEAF_TYPES: &[DataType] = &[
    DataType::Int,
    DataType::String,
    DataType::Decimal,
    DataType::Date,
    DataType::Bool,
    DataType::Money,
];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// RNG seed; equal seeds give identical pairs.
    pub seed: u64,
    /// Approximate number of leaves in the source schema.
    pub target_leaves: usize,
    /// Maximum children per internal node.
    pub max_fanout: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Probability a leaf/internal word is replaced by its synonym.
    pub rename_prob: f64,
    /// Probability a name is abbreviated (prefix truncation, registered
    /// in the thesaurus).
    pub abbreviate_prob: f64,
    /// Probability a leaf is dropped from the target.
    pub drop_prob: f64,
    /// Probability an internal node is flattened (children spliced into
    /// its parent), changing nesting as in canonical example 5.
    pub flatten_prob: f64,
    /// Shuffle child order in the target.
    pub shuffle: bool,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            seed: 42,
            target_leaves: 32,
            max_fanout: 6,
            max_depth: 5,
            rename_prob: 0.25,
            abbreviate_prob: 0.1,
            drop_prob: 0.08,
            flatten_prob: 0.15,
            shuffle: true,
        }
    }
}

impl SyntheticConfig {
    /// Convenience: a pair with roughly `leaves` leaves.
    pub fn sized(leaves: usize, seed: u64) -> Self {
        SyntheticConfig { target_leaves: leaves, seed, ..Default::default() }
    }
}

/// A generated pair: source/target schemas, the thesaurus covering the
/// introduced renames, and the construction-induced gold mapping.
#[derive(Debug, Clone)]
pub struct SyntheticPair {
    /// Source schema.
    pub source: Schema,
    /// Perturbed target schema.
    pub target: Schema,
    /// Thesaurus with the synonym/abbreviation entries the perturbation
    /// used.
    pub thesaurus: Thesaurus,
    /// Gold leaf mapping (source path → target path for surviving
    /// leaves).
    pub gold: GoldMapping,
}

#[derive(Debug, Clone)]
struct GenNode {
    key: u64,
    words: Vec<String>,
    dtype: DataType,
    children: Vec<GenNode>,
}

impl GenNode {
    fn name(&self) -> String {
        self.words
            .iter()
            .map(|w| {
                let mut c = w.chars();
                match c.next() {
                    Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                    None => String::new(),
                }
            })
            .collect()
    }

    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

struct Generator {
    rng: StdRng,
    next_key: u64,
    leaves_made: usize,
}

impl Generator {
    fn fresh_key(&mut self) -> u64 {
        self.next_key += 1;
        self.next_key
    }

    fn word(&mut self) -> String {
        WORD_PAIRS[self.rng.gen_range(0..WORD_PAIRS.len())].0.to_string()
    }

    fn compound(&mut self) -> Vec<String> {
        let first = self.word();
        if self.rng.gen_bool(0.7) {
            let suffix = SUFFIX_WORDS[self.rng.gen_range(0..SUFFIX_WORDS.len())];
            vec![first, suffix.to_string()]
        } else {
            vec![first]
        }
    }

    fn build(&mut self, cfg: &SyntheticConfig, depth: usize) -> GenNode {
        let key = self.fresh_key();
        let words = self.compound();
        let want_internal = depth < cfg.max_depth
            && depth > 0
            && self.leaves_made < cfg.target_leaves
            && self.rng.gen_bool(0.35);
        if depth == 0 || want_internal {
            let fanout = self.rng.gen_range(2..=cfg.max_fanout.max(2));
            let mut children = Vec::new();
            for _ in 0..fanout {
                if self.leaves_made < cfg.target_leaves || depth == 0 {
                    children.push(self.build(cfg, depth + 1));
                }
            }
            if !children.is_empty() {
                return GenNode { key, words, dtype: DataType::Complex, children };
            }
        }
        self.leaves_made += 1;
        let dtype = LEAF_TYPES[self.rng.gen_range(0..LEAF_TYPES.len())];
        GenNode { key, words, dtype, children: Vec::new() }
    }
}

fn synonym_of(word: &str) -> Option<&'static str> {
    WORD_PAIRS.iter().find_map(|(a, b)| {
        if *a == word {
            Some(*b)
        } else if *b == word {
            Some(*a)
        } else {
            None
        }
    })
}

struct Perturber<'a> {
    rng: StdRng,
    cfg: &'a SyntheticConfig,
    thesaurus: ThesaurusBuilder,
}

impl<'a> Perturber<'a> {
    /// Perturb a subtree; `None` means the node was dropped.
    fn perturb(&mut self, node: &GenNode) -> Option<GenNode> {
        if node.is_leaf() && self.rng.gen_bool(self.cfg.drop_prob) {
            return None;
        }
        let mut out = node.clone();
        // word-level renames via synonyms
        for w in &mut out.words {
            if self.rng.gen_bool(self.cfg.rename_prob) {
                if let Some(s) = synonym_of(w) {
                    let (a, b) = (w.clone(), s.to_string());
                    self.thesaurus = self.thesaurus.clone().synonym(&a, &b, 0.9);
                    *w = b;
                }
            }
        }
        // abbreviation of the first word
        if out.words[0].len() > 4 && self.rng.gen_bool(self.cfg.abbreviate_prob) {
            let full = out.words[0].clone();
            let short: String = full.chars().take(3).collect();
            self.thesaurus = self.thesaurus.clone().abbreviation(&short, &[&full]);
            out.words[0] = short;
        }
        // children
        let mut new_children: Vec<GenNode> = Vec::new();
        for c in &node.children {
            if let Some(mut pc) = self.perturb(c) {
                if !pc.is_leaf() && self.rng.gen_bool(self.cfg.flatten_prob) {
                    // flatten: splice grandchildren in (canonical case 5)
                    new_children.append(&mut pc.children);
                } else {
                    new_children.push(pc);
                }
            }
        }
        if self.cfg.shuffle {
            new_children.shuffle(&mut self.rng);
        }
        if !node.is_leaf() && new_children.is_empty() {
            return None; // container lost all content
        }
        out.children = new_children;
        Some(out)
    }
}

fn emit(
    node: &GenNode,
    b: &mut SchemaBuilder,
    parent: ElementId,
    paths: &mut Vec<(u64, String)>,
    prefix: &str,
) {
    let name = node.name();
    let path = format!("{prefix}.{name}");
    let id = if node.is_leaf() {
        b.atomic(parent, name, ElementKind::XmlElement, node.dtype)
    } else {
        b.structured(parent, name, ElementKind::XmlElement)
    };
    let _ = id;
    paths.push((node.key, path.clone()));
    for c in &node.children {
        emit(c, b, id, paths, &path);
    }
}

fn emit_schema(root_name: &str, root: &GenNode) -> (Schema, Vec<(u64, String)>) {
    let mut b = SchemaBuilder::new(root_name);
    let mut paths = Vec::new();
    let root_id = b.root();
    for c in &root.children {
        emit(c, &mut b, root_id, &mut paths, root_name);
    }
    (b.build().expect("generated schema is valid"), paths)
}

/// Generate a schema pair.
pub fn generate(cfg: &SyntheticConfig) -> SyntheticPair {
    let mut g = Generator { rng: StdRng::seed_from_u64(cfg.seed), next_key: 0, leaves_made: 0 };
    let mut source_root = g.build(cfg, 0);
    // Keep adding top-level subtrees until the leaf budget is met (a
    // single recursive descent can bottom out early on small budgets).
    while g.leaves_made < cfg.target_leaves {
        let extra = g.build(cfg, 1);
        source_root.children.push(extra);
    }
    let mut p = Perturber {
        rng: StdRng::seed_from_u64(cfg.seed.wrapping_add(0x9E37_79B9_7F4A_7C15)),
        cfg,
        thesaurus: ThesaurusBuilder::new(),
    };
    let target_root = p
        .perturb(&source_root)
        .unwrap_or_else(|| GenNode { children: vec![], ..source_root.clone() });

    let (source, src_paths) = emit_schema("SourceDoc", &source_root);
    let (target, tgt_paths) = emit_schema("TargetDoc", &target_root);

    // gold: leaves present on both sides, matched by generation key
    let mut pairs: Vec<(String, String)> = Vec::new();
    let leaf_keys: std::collections::HashMap<u64, &str> =
        collect_leaves(&source_root).into_iter().map(|k| (k, "")).collect();
    let tgt_map: std::collections::HashMap<u64, &String> =
        tgt_paths.iter().map(|(k, p)| (*k, p)).collect();
    for (k, sp) in &src_paths {
        if leaf_keys.contains_key(k) {
            if let Some(tp) = tgt_map.get(k) {
                pairs.push((sp.clone(), (*tp).clone()));
            }
        }
    }
    SyntheticPair {
        source,
        target,
        thesaurus: p.thesaurus.build().expect("generated thesaurus is valid"),
        gold: GoldMapping::new(pairs),
    }
}

fn collect_leaves(node: &GenNode) -> Vec<u64> {
    let mut out = Vec::new();
    let mut stack = vec![node];
    while let Some(n) = stack.pop() {
        if n.is_leaf() {
            out.push(n.key);
        }
        stack.extend(n.children.iter());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_model::{expand, ExpandOptions};

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = generate(&SyntheticConfig::default());
        let b = generate(&SyntheticConfig::default());
        assert_eq!(a.source.len(), b.source.len());
        assert_eq!(a.target.len(), b.target.len());
        assert_eq!(a.gold.len(), b.gold.len());
        let c = generate(&SyntheticConfig { seed: 7, ..Default::default() });
        // different seed, almost surely different shape
        assert!(
            a.source.len() != c.source.len() || a.gold.len() != c.gold.len(),
            "different seeds should differ"
        );
    }

    #[test]
    fn sizes_scale_with_target() {
        for leaves in [8, 32, 128] {
            let p = generate(&SyntheticConfig::sized(leaves, 1));
            let t = expand(&p.source, &ExpandOptions::none()).unwrap();
            assert!(
                t.leaf_count() >= leaves / 2 && t.leaf_count() <= leaves * 2 + 8,
                "requested ~{leaves} leaves, got {}",
                t.leaf_count()
            );
        }
    }

    #[test]
    fn gold_paths_exist_in_both_trees() {
        let p = generate(&SyntheticConfig::sized(48, 3));
        let t1 = expand(&p.source, &ExpandOptions::none()).unwrap();
        let t2 = expand(&p.target, &ExpandOptions::none()).unwrap();
        assert!(!p.gold.is_empty());
        for (s, t) in p.gold.pairs() {
            assert!(t1.find_path(s).is_some(), "missing source path {s}");
            assert!(t2.find_path(t).is_some(), "missing target path {t}");
        }
    }

    #[test]
    fn perturbation_produces_differences() {
        let p = generate(&SyntheticConfig::sized(64, 11));
        let t1 = expand(&p.source, &ExpandOptions::none()).unwrap();
        let t2 = expand(&p.target, &ExpandOptions::none()).unwrap();
        // some drops or renames should have happened
        let src_names: std::collections::BTreeSet<String> =
            t1.iter().map(|(_, n)| n.name.clone()).collect();
        let tgt_names: std::collections::BTreeSet<String> =
            t2.iter().map(|(_, n)| n.name.clone()).collect();
        assert_ne!(src_names, tgt_names, "perturbation should change names");
        assert!(p.thesaurus.relation_count() + p.thesaurus.abbreviation_count() > 0);
    }

    #[test]
    fn gold_never_maps_dropped_leaves() {
        let p = generate(&SyntheticConfig { drop_prob: 0.5, ..SyntheticConfig::sized(40, 5) });
        let t2 = expand(&p.target, &ExpandOptions::none()).unwrap();
        for (_, t) in p.gold.pairs() {
            assert!(t2.find_path(t).is_some());
        }
    }
}
