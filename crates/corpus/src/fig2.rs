//! Figure 2: the running example — two XML purchase-order schemas with
//! naming and structural variation.
//!
//! ```text
//! PO                          PurchaseOrder
//!   POShipTo                    DeliverTo
//!     Street City                 Address (shared)
//!   POBillTo                        Street City
//!     Street City                InvoiceTo
//!   POLines                       Address (shared)
//!     Count                     Items
//!     Item                        ItemCount
//!       Line Qty UoM              Item
//!                                   ItemNumber Quantity UnitOfMeasure
//! ```
//!
//! In `PurchaseOrder`, `Address` is modeled as a shared type referenced
//! by both `DeliverTo` and `InvoiceTo` (the variation §8.2 discusses),
//! so context-dependent mappings are required.

use cupid_model::{DataType, ElementKind, Schema, SchemaBuilder};

use crate::gold::GoldMapping;

/// The `PO` schema (left side of Figure 2).
pub fn po() -> Schema {
    let mut b = SchemaBuilder::new("PO");
    for part in ["POShipTo", "POBillTo"] {
        let p = b.structured(b.root(), part, ElementKind::XmlElement);
        b.atomic(p, "Street", ElementKind::XmlElement, DataType::String);
        b.atomic(p, "City", ElementKind::XmlElement, DataType::String);
    }
    let lines = b.structured(b.root(), "POLines", ElementKind::XmlElement);
    b.atomic(lines, "Count", ElementKind::XmlElement, DataType::Int);
    let item = b.structured(lines, "Item", ElementKind::XmlElement);
    b.atomic(item, "Line", ElementKind::XmlElement, DataType::Int);
    b.atomic(item, "Qty", ElementKind::XmlElement, DataType::Decimal);
    b.atomic(item, "UoM", ElementKind::XmlElement, DataType::String);
    b.build().expect("static schema is valid")
}

/// The `PurchaseOrder` schema (right side of Figure 2), with `Address`
/// as a shared type under both `DeliverTo` and `InvoiceTo`.
pub fn purchase_order() -> Schema {
    let mut b = SchemaBuilder::new("PurchaseOrder");
    let addr = b.type_def("Address");
    b.atomic(addr, "Street", ElementKind::XmlElement, DataType::String);
    b.atomic(addr, "City", ElementKind::XmlElement, DataType::String);
    for part in ["DeliverTo", "InvoiceTo"] {
        let p = b.structured(b.root(), part, ElementKind::XmlElement);
        b.derive_from(p, addr);
    }
    let items = b.structured(b.root(), "Items", ElementKind::XmlElement);
    b.atomic(items, "ItemCount", ElementKind::XmlElement, DataType::Int);
    let item = b.structured(items, "Item", ElementKind::XmlElement);
    b.atomic(item, "ItemNumber", ElementKind::XmlElement, DataType::Int);
    b.atomic(item, "Quantity", ElementKind::XmlElement, DataType::Decimal);
    b.atomic(item, "UnitOfMeasure", ElementKind::XmlElement, DataType::String);
    b.build().expect("static schema is valid")
}

/// Leaf-level gold (context-dependent: POShipTo's leaves must land under
/// DeliverTo, POBillTo's under InvoiceTo — §4's worked example).
pub fn gold() -> GoldMapping {
    GoldMapping::new([
        ("PO.POShipTo.Street", "PurchaseOrder.DeliverTo.Street"),
        ("PO.POShipTo.City", "PurchaseOrder.DeliverTo.City"),
        ("PO.POBillTo.Street", "PurchaseOrder.InvoiceTo.Street"),
        ("PO.POBillTo.City", "PurchaseOrder.InvoiceTo.City"),
        ("PO.POLines.Count", "PurchaseOrder.Items.ItemCount"),
        ("PO.POLines.Item.Line", "PurchaseOrder.Items.Item.ItemNumber"),
        ("PO.POLines.Item.Qty", "PurchaseOrder.Items.Item.Quantity"),
        ("PO.POLines.Item.UoM", "PurchaseOrder.Items.Item.UnitOfMeasure"),
    ])
}

/// Element-level gold.
pub fn gold_nonleaf() -> GoldMapping {
    GoldMapping::new([
        ("PO.POShipTo", "PurchaseOrder.DeliverTo"),
        ("PO.POBillTo", "PurchaseOrder.InvoiceTo"),
        ("PO.POLines", "PurchaseOrder.Items"),
        ("PO.POLines.Item", "PurchaseOrder.Items.Item"),
        ("PO", "PurchaseOrder"),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_model::{expand, ExpandOptions};

    #[test]
    fn purchase_order_expands_shared_address_into_two_contexts() {
        let t = expand(&purchase_order(), &ExpandOptions::none()).unwrap();
        assert!(t.find_path("PurchaseOrder.DeliverTo.Street").is_some());
        assert!(t.find_path("PurchaseOrder.InvoiceTo.Street").is_some());
        assert!(t.find_path("PurchaseOrder.DeliverTo.City").is_some());
        assert!(t.find_path("PurchaseOrder.InvoiceTo.City").is_some());
    }

    #[test]
    fn po_is_a_plain_tree() {
        let t = expand(&po(), &ExpandOptions::none()).unwrap();
        assert_eq!(t.leaf_count(), 8);
        assert!(t.find_path("PO.POBillTo.City").is_some());
    }

    #[test]
    fn gold_is_context_dependent() {
        let g = gold();
        assert!(g.contains("PO.POBillTo.City", "PurchaseOrder.InvoiceTo.City"));
        assert!(!g.contains("PO.POBillTo.City", "PurchaseOrder.DeliverTo.City"));
        assert_eq!(g.len(), 8);
    }
}
