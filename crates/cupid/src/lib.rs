//! # cupid — generic schema matching
//!
//! A complete, from-scratch Rust implementation of *Generic Schema
//! Matching with Cupid* (Madhavan, Bernstein, Rahm; VLDB 2001), including
//! the generic schema model, the three-phase match algorithm, the
//! extensions for shared types and referential constraints, the DIKE and
//! MOMIS/ARTEMIS baselines of the paper's comparative study, the full
//! evaluation corpus, and schema importers.
//!
//! ## Quick start
//!
//! ```
//! use cupid::prelude::*;
//!
//! // Two purchase-order schemas with different vocabularies.
//! let mut b = SchemaBuilder::new("PO");
//! let item = b.structured(b.root(), "Item", ElementKind::XmlElement);
//! b.atomic(item, "Qty", ElementKind::XmlAttribute, DataType::Int);
//! b.atomic(item, "UoM", ElementKind::XmlAttribute, DataType::String);
//! let po = b.build().unwrap();
//!
//! let mut b = SchemaBuilder::new("Order");
//! let item = b.structured(b.root(), "Item", ElementKind::XmlElement);
//! b.atomic(item, "Quantity", ElementKind::XmlAttribute, DataType::Int);
//! b.atomic(item, "UnitOfMeasure", ElementKind::XmlAttribute, DataType::String);
//! let order = b.build().unwrap();
//!
//! // A thesaurus resolving the short forms (§5.1).
//! let thesaurus = Thesaurus::parse(
//!     "abbrev Qty = quantity\nabbrev UoM = unit of measure",
//! ).unwrap();
//!
//! let outcome = Cupid::new(thesaurus).match_schemas(&po, &order).unwrap();
//! assert!(outcome.has_leaf_mapping("PO.Item.Qty", "Order.Item.Quantity"));
//! assert!(outcome.has_leaf_mapping("PO.Item.UoM", "Order.Item.UnitOfMeasure"));
//!
//! // Corpus-scale batch matching (DESIGN.md §7): prepare each schema
//! // once, share one token-similarity memo across all pairs, shard the
//! // pair worklist across threads — bit-identical to single-pair calls.
//! let thesaurus = Thesaurus::parse(
//!     "abbrev Qty = quantity\nabbrev UoM = unit of measure",
//! ).unwrap();
//! let corpus = [po, order];
//! let result = Cupid::new(thesaurus).match_corpus(&corpus).unwrap();
//! assert_eq!(result.summaries.len(), 1);
//! assert!(result.summaries[0].has_leaf_mapping("PO.Item.Qty", "Order.Item.Quantity"));
//! ```
//!
//! See the crate-level docs of the member crates for the algorithmic
//! details: [`cupid_core`] (the matcher), [`cupid_model`] (the schema
//! model), [`cupid_lexical`] (the linguistic substrate),
//! [`cupid_baselines`] (DIKE / MOMIS-ARTEMIS), [`cupid_corpus`] (the
//! paper's schemas and gold mappings), [`cupid_io`] (importers and the
//! SDL writer), [`cupid_repo`] (the persistent schema repository:
//! on-disk session snapshots, incremental re-matching, top-k
//! discovery), [`cupid_serve`] (the long-running match daemon: wire
//! protocol, TCP server, client) and [`cupid_eval`] (the experiment
//! harness).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cupid_baselines as baselines;
pub use cupid_core as core;
pub use cupid_corpus as corpus;
pub use cupid_eval as eval;
pub use cupid_io as io;
pub use cupid_lexical as lexical;
pub use cupid_model as model;
pub use cupid_repo as repo;
pub use cupid_serve as serve;

/// The commonly used types, for glob import.
pub mod prelude {
    pub use cupid_core::{
        Cardinality, CorpusMatch, Cupid, CupidConfig, Explanation, MappingElement, MatchOutcome,
        MatchSession, MatchSummary, PairExplanation, SchemaId, SessionStats,
    };
    pub use cupid_lexical::{Thesaurus, ThesaurusBuilder};
    pub use cupid_model::{
        expand, DataType, ElementId, ElementKind, ExpandOptions, Schema, SchemaBuilder, SchemaTree,
    };
    pub use cupid_repo::{CupidRepositoryExt, DiscoveryIndex, RepoError, Repository};
    pub use cupid_serve::{
        ClientBuilder, CupidServeExt, PooledClient, RetryPolicy, ServeClient, ServeError,
        ServeOptions, ServePool, Server, ShutdownHandle,
    };
}
