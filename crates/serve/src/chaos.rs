//! An in-process chaos TCP proxy for hostile-network testing
//! (DESIGN.md §12.4).
//!
//! [`ChaosProxy`] sits between a client and a daemon on loopback,
//! parses the raw [`cupid_model::wire`] frame boundaries flowing
//! through it (magic + kind + length prefix — it never validates
//! checksums or decodes payloads), and injects one fault per frame as
//! decided by a caller-supplied schedule:
//!
//! * [`Fault::Delay`] — hold the frame, then forward it intact.
//! * [`Fault::Drop`] — swallow the frame; the connection stays up.
//! * [`Fault::Reset`] — tear the whole connection down mid-exchange.
//! * [`Fault::PartialWrite`] — forward only half the frame's bytes,
//!   then tear the connection down (a truncated frame on the wire).
//! * [`Fault::BlackHole`] — swallow this frame and everything after it
//!   in the same direction while keeping the connection open: the
//!   reading side sees pure silence until its own deadline fires.
//!
//! The schedule is an arbitrary `Fn(FrameCtx) -> Fault`, keyed by
//! connection id, direction and frame index — [`FaultMix::schedule`]
//! builds the standard seeded-random one, so a failing chaos run
//! reproduces from its seed alone. Everything here is std-only
//! (threads + blocking sockets with poll-loop timeouts), mirroring the
//! daemon's own runtime model.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::retry::splitmix64;

/// Which way a frame is travelling through the proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Request frames: client → daemon.
    ClientToServer,
    /// Response frames: daemon → client.
    ServerToClient,
}

/// The coordinates of one frame in a proxied exchange — what a
/// schedule decides faults from. All three fields are deterministic
/// for a fixed connect/request order.
#[derive(Debug, Clone, Copy)]
pub struct FrameCtx {
    /// Proxied connection index, in accept order (0-based).
    pub conn: u64,
    /// Which way the frame is going.
    pub direction: Direction,
    /// Frame index within this connection and direction (0-based).
    pub frame: u64,
}

/// What to do to one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward untouched.
    Pass,
    /// Hold the frame this long, then forward it intact.
    Delay(Duration),
    /// Swallow the frame; keep pumping the ones after it.
    Drop,
    /// Tear the proxied connection down (both directions, both legs).
    Reset,
    /// Forward only the first half of the frame's bytes, then tear the
    /// connection down — a truncated frame from the reader's view.
    PartialWrite,
    /// Swallow this frame and every later byte in this direction,
    /// keeping the connection open: the reader gets silence, not EOF.
    BlackHole,
}

/// Index of a fault in the injection counters (Pass is not counted).
fn fault_slot(fault: Fault) -> Option<usize> {
    match fault {
        Fault::Pass => None,
        Fault::Delay(_) => Some(0),
        Fault::Drop => Some(1),
        Fault::Reset => Some(2),
        Fault::PartialWrite => Some(3),
        Fault::BlackHole => Some(4),
    }
}

/// Labels matching the counter slots of [`ChaosProxy::injected`].
const FAULT_LABELS: [&str; 5] = ["delay", "drop", "reset", "partial_write", "black_hole"];

/// A weighted random fault profile: each frame rolls one `u32` from
/// the seeded stream and picks the first threshold it falls under, so
/// `FaultMix { drop: 5, out_of: 100, .. }` drops ~5% of frames. Equal
/// [`FrameCtx`] always rolls the same fault for the same seed.
#[derive(Debug, Clone, Copy)]
pub struct FaultMix {
    /// Weight of [`Fault::Delay`] (delay drawn up to `max_delay`).
    pub delay: u32,
    /// Weight of [`Fault::Drop`].
    pub drop: u32,
    /// Weight of [`Fault::Reset`].
    pub reset: u32,
    /// Weight of [`Fault::PartialWrite`].
    pub partial_write: u32,
    /// Weight of [`Fault::BlackHole`].
    pub black_hole: u32,
    /// Total weight of one roll; the remainder after the fault weights
    /// is [`Fault::Pass`]. Must be at least the sum of the weights.
    pub out_of: u32,
    /// Upper bound of injected delays (the draw is uniform in
    /// `[max_delay/4, max_delay]`, keeping delays meaningfully long).
    pub max_delay: Duration,
}

impl FaultMix {
    /// A profile that injects nothing (useful as the clean baseline
    /// with identical proxy topology).
    pub fn clean() -> FaultMix {
        FaultMix {
            delay: 0,
            drop: 0,
            reset: 0,
            partial_write: 0,
            black_hole: 0,
            out_of: 100,
            max_delay: Duration::ZERO,
        }
    }

    /// Build the seeded schedule function for this mix. The roll for a
    /// frame depends only on `(seed, conn, direction, frame)`, so runs
    /// with the same seed and connect order inject identical faults.
    pub fn schedule(self, seed: u64) -> impl Fn(FrameCtx) -> Fault + Send + Sync + 'static {
        move |ctx: FrameCtx| {
            let dir_bit = match ctx.direction {
                Direction::ClientToServer => 0x5bd1_e995u64,
                Direction::ServerToClient => 0xc2b2_ae35u64,
            };
            let key = splitmix64(
                seed ^ splitmix64(ctx.conn ^ dir_bit) ^ ctx.frame.wrapping_mul(0x9E37_79B9),
            );
            let total = self
                .out_of
                .max(self.delay + self.drop + self.reset + self.partial_write + self.black_hole)
                .max(1);
            let mut roll = (key % u64::from(total)) as u32;
            for (fault, weight) in [
                (Fault::Drop, self.drop),
                (Fault::Reset, self.reset),
                (Fault::PartialWrite, self.partial_write),
                (Fault::BlackHole, self.black_hole),
            ] {
                if roll < weight {
                    return fault;
                }
                roll -= weight;
            }
            if roll < self.delay {
                let max = self.max_delay.as_millis().max(1) as u64;
                let span = max - max / 4 + 1;
                let ms = max / 4 + splitmix64(key) % span;
                return Fault::Delay(Duration::from_millis(ms));
            }
            Fault::Pass
        }
    }
}

/// How long a pump waits in one blocking read before re-checking the
/// proxy's stop flag — the granularity of [`ChaosProxy::stop`], not a
/// protocol deadline.
const POLL: Duration = Duration::from_millis(20);

/// Frame header: 4-byte magic + 1-byte kind + 4-byte LE length.
const HEADER: usize = 9;
/// Trailer: the 8-byte FNV checksum after the payload.
const TRAILER: usize = 8;

/// Shared state of a running proxy.
struct ProxyShared {
    upstream: SocketAddr,
    stop: AtomicBool,
    schedule: Box<dyn Fn(FrameCtx) -> Fault + Send + Sync>,
    conns: AtomicU64,
    injected: [AtomicU64; FAULT_LABELS.len()],
    pumps: Mutex<Vec<JoinHandle<()>>>,
}

/// A live loopback proxy in front of `upstream`, injecting faults per
/// frame as its schedule dictates. Point clients at
/// [`ChaosProxy::addr`] instead of the daemon; call
/// [`ChaosProxy::stop`] to tear it down (joining every pump thread).
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Start a proxy on an OS-assigned loopback port forwarding to
    /// `upstream`, injecting per the schedule (see
    /// [`FaultMix::schedule`] for the standard seeded one).
    pub fn start(
        upstream: SocketAddr,
        schedule: impl Fn(FrameCtx) -> Fault + Send + Sync + 'static,
    ) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            upstream,
            stop: AtomicBool::new(false),
            schedule: Box::new(schedule),
            conns: AtomicU64::new(0),
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
            pumps: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(ChaosProxy { addr, shared, accept: Some(accept) })
    }

    /// The loopback address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Faults injected so far, labelled `delay` / `drop` / `reset` /
    /// `partial_write` / `black_hole` — lets a suite assert its seed
    /// actually exercised every fault class.
    pub fn injected(&self) -> Vec<(&'static str, u64)> {
        FAULT_LABELS
            .iter()
            .zip(&self.shared.injected)
            .map(|(label, n)| (*label, n.load(Ordering::Relaxed)))
            .collect()
    }

    /// Connections proxied so far.
    pub fn connections(&self) -> u64 {
        self.shared.conns.load(Ordering::Relaxed)
    }

    /// Stop accepting, unblock and join every pump thread, drop the
    /// listener. Idempotent via take(); in-flight client calls fail
    /// with transport errors, which is rather the point.
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        TcpStream::connect(self.addr).ok();
        if let Some(accept) = self.accept.take() {
            accept.join().ok();
        }
        let pumps =
            std::mem::take(&mut *self.shared.pumps.lock().unwrap_or_else(|e| e.into_inner()));
        for pump in pumps {
            pump.join().ok();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ProxyShared>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(client) = conn else { continue };
        let conn_id = shared.conns.fetch_add(1, Ordering::Relaxed);
        let Ok(server) = TcpStream::connect(shared.upstream) else {
            client.shutdown(Shutdown::Both).ok();
            continue;
        };
        client.set_nodelay(true).ok();
        server.set_nodelay(true).ok();
        let (Ok(client_rx), Ok(server_rx)) = (client.try_clone(), server.try_clone()) else {
            continue;
        };
        let up = PumpEnd { from: client_rx, to: server, direction: Direction::ClientToServer };
        let down = PumpEnd { from: server_rx, to: client, direction: Direction::ServerToClient };
        let mut pumps = shared.pumps.lock().unwrap_or_else(|e| e.into_inner());
        for end in [up, down] {
            let shared = Arc::clone(shared);
            pumps.push(std::thread::spawn(move || pump(end, conn_id, &shared)));
        }
    }
}

/// One direction of a proxied connection.
struct PumpEnd {
    from: TcpStream,
    to: TcpStream,
    direction: Direction,
}

/// Why a pump stopped reading.
enum ReadOutcome {
    /// The buffer was filled.
    Full,
    /// Clean EOF before any byte of the current frame.
    Eof,
    /// The proxy is stopping, or the socket died.
    Abort,
}

/// Fill `buf` from a poll-looped blocking read, aborting on proxy stop
/// or socket death. EOF at offset 0 is clean; EOF mid-buffer is a
/// truncated frame from upstream and aborts (nothing sane to forward).
fn read_full(stream: &mut TcpStream, buf: &mut [u8], shared: &ProxyShared) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        if shared.stop.load(Ordering::SeqCst) {
            return ReadOutcome::Abort;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 { ReadOutcome::Eof } else { ReadOutcome::Abort };
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return ReadOutcome::Abort,
        }
    }
    ReadOutcome::Full
}

/// Sleep `total` in poll-sized chunks so `stop()` is never held up by
/// a long injected delay.
fn chunked_sleep(total: Duration, shared: &ProxyShared) {
    let mut left = total;
    while !left.is_zero() && !shared.stop.load(Ordering::SeqCst) {
        let step = left.min(POLL);
        std::thread::sleep(step);
        left = left.saturating_sub(step);
    }
}

/// Pump frames one way, injecting scheduled faults. Runs until either
/// side closes, a Reset/PartialWrite tears the connection down, or the
/// proxy stops.
fn pump(mut end: PumpEnd, conn_id: u64, shared: &ProxyShared) {
    end.from.set_read_timeout(Some(POLL)).ok();
    end.to.set_write_timeout(Some(Duration::from_secs(5))).ok();
    let mut frame_index = 0u64;
    let mut black_holed = false;
    loop {
        let mut header = [0u8; HEADER];
        match read_full(&mut end.from, &mut header, shared) {
            ReadOutcome::Full => {}
            ReadOutcome::Eof => {
                // Propagate the half-close so the far side's reader
                // unblocks (the daemon parks on idle peers otherwise).
                end.to.shutdown(Shutdown::Write).ok();
                return;
            }
            ReadOutcome::Abort => {
                tear_down(&end);
                return;
            }
        }
        let len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes")) as usize;
        let mut body = vec![0u8; len + TRAILER];
        if !matches!(read_full(&mut end.from, &mut body, shared), ReadOutcome::Full) {
            tear_down(&end);
            return;
        }
        let fault = if black_holed {
            Fault::BlackHole
        } else {
            (shared.schedule)(FrameCtx {
                conn: conn_id,
                direction: end.direction,
                frame: frame_index,
            })
        };
        frame_index += 1;
        if let Some(slot) = fault_slot(fault) {
            if !black_holed {
                shared.injected[slot].fetch_add(1, Ordering::Relaxed);
            }
        }
        match fault {
            Fault::Pass => {
                if forward(&mut end.to, &header, &body).is_err() {
                    tear_down(&end);
                    return;
                }
            }
            Fault::Delay(by) => {
                chunked_sleep(by, shared);
                if forward(&mut end.to, &header, &body).is_err() {
                    tear_down(&end);
                    return;
                }
            }
            Fault::Drop => {}
            Fault::Reset => {
                tear_down(&end);
                return;
            }
            Fault::PartialWrite => {
                let whole = [&header[..], &body[..]].concat();
                end.to.write_all(&whole[..whole.len() / 2]).ok();
                tear_down(&end);
                return;
            }
            Fault::BlackHole => {
                // Keep consuming frames so the sender never blocks on a
                // full send buffer, but forward nothing ever again.
                black_holed = true;
            }
        }
    }
}

/// Write one frame through, retrying timeout-kind write errors.
fn forward(to: &mut TcpStream, header: &[u8], body: &[u8]) -> std::io::Result<()> {
    to.write_all(header)?;
    to.write_all(body)
}

/// Tear both legs of the proxied connection down.
fn tear_down(end: &PumpEnd) {
    end.from.shutdown(Shutdown::Both).ok();
    end.to.shutdown(Shutdown::Both).ok();
}
