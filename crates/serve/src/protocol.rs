//! The daemon's wire protocol (DESIGN.md §9.2).
//!
//! Every message is one checksummed frame
//! ([`cupid_model::wire::write_frame`]): the frame kind byte is the
//! message discriminator, the payload is the message body in the
//! workspace's hand-rolled wire format ([`WireWriter`]/[`WireReader`]
//! — little-endian integers, `f64` by bits, length-prefixed UTF-8).
//! Requests use kinds `0x01..=0x0A`; responses set the high bit
//! (`0x81..=0x8B`), so a stray response on a request stream (or vice
//! versa) is rejected as an unknown kind rather than mis-decoded. The
//! batch kinds (`0x09`/`0x8A`, DESIGN.md §11) carry a worklist of
//! read-side requests — [`BatchItem`] entries in, per-entry
//! [`BatchOutcome`]-or-error statuses out — so one frame round-trip
//! amortizes across many requests. The robustness kinds (`0x0A`/`0x8B`,
//! DESIGN.md §12) carry id-stamped mutations for retry deduplication
//! and the admission controller's typed overload shed.
//!
//! Schema payloads travel as SDL text (`cupid-io`'s schema description
//! language), the reproduction's native review/exchange format — the
//! daemon parses, validates and prepares on its side, so a client
//! never ships prepared state, only content. Match results travel as
//! [`MatchSummary`] wire bytes, similarity bits included: a summary
//! decoded from the daemon compares `==` to one computed in-process,
//! which is what the bit-identity integration suite asserts.
//!
//! Decoding is strict both ways: unknown kinds, malformed payloads and
//! trailing bytes are loud [`WireError`]s, and the frame layer already
//! rejected any byte corruption via its FNV-1a checksum.

use std::io::{Read, Write};

use cupid_core::{MatchSummary, PairExplanation};
use cupid_model::wire::{
    BATCH_REQUEST, BATCH_RESPONSE, EXPLAIN_REQUEST, EXPLAIN_RESPONSE, MUTATE_REQUEST,
    OVERLOADED_RESPONSE, SLOW_LOG_REQUEST, SLOW_LOG_RESPONSE,
};
use cupid_model::{read_frame, write_frame, FrameError, WireError, WireReader, WireWriter};

use crate::histogram::KindLatency;
use crate::trace::TraceRecord;

/// A request a client sends to the daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Add a new schema, shipped as SDL text. Fails if the schema's
    /// name is already present.
    AddSchema {
        /// The schema as an SDL document.
        sdl: String,
    },
    /// Replace the stored schema with the same name (incremental
    /// re-match: only the edited schema's pairs lose their cache).
    ReplaceSchema {
        /// The replacement schema as an SDL document.
        sdl: String,
    },
    /// Remove the schema stored under this name.
    RemoveSchema {
        /// The repository key.
        name: String,
    },
    /// Match one pair of stored schemas by name.
    MatchPair {
        /// Source schema name.
        source: String,
        /// Target schema name.
        target: String,
    },
    /// Index-pruned top-`k` discovery over the whole corpus.
    TopK {
        /// Candidates kept per schema.
        k: u32,
    },
    /// Repository and session counters.
    Stats,
    /// Persist the repository snapshot now.
    Save,
    /// Stop accepting connections and exit after a final save.
    Shutdown,
    /// A worklist of read-side requests in one frame (DESIGN.md §11).
    /// The daemon answers with [`Response::Batch`], one status per
    /// entry in order: a bad entry fails alone, the rest still serve.
    Batch {
        /// The worklist, executed under one read-lock acquisition.
        items: Vec<BatchItem>,
    },
    /// A schema mutation carrying a client-assigned request id
    /// (DESIGN.md §12). The daemon remembers recently executed ids and
    /// answers a duplicate with the *original* response instead of
    /// re-applying — which is what makes mutation retries safe when an
    /// acknowledgment is lost to a reset: the retried `Add` gets its
    /// `Added` back, not an "already in repository" error, and the
    /// mutation applies exactly once.
    Mutate {
        /// Client-assigned id, unique per logical mutation; a retry
        /// resends the same id with the same payload.
        request_id: u64,
        /// The mutation itself.
        op: MutationOp,
    },
    /// Query the daemon's slow-log ring (DESIGN.md §13.2): the
    /// slowest-N requests seen so far, each carried whole with its
    /// per-stage latency breakdown, slowest first.
    SlowLog,
    /// Explain one stored pair by name (DESIGN.md §14): per-mapping
    /// score provenance — the lsim/ssim/wsim breakdown, top token
    /// pairs with their similarity sources, and the structural context
    /// behind each kept mapping. Never consults or fills the pair
    /// cache; the match hot path is untouched.
    Explain {
        /// Source schema name.
        source: String,
        /// Target schema name.
        target: String,
    },
}

/// The operation inside a [`Request::Mutate`] frame — the same three
/// schema mutations as the id-less legacy kinds, grouped under one
/// frame kind so the request id travels uniformly.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationOp {
    /// Add a new schema, shipped as SDL text ([`Request::AddSchema`]).
    Add {
        /// The schema as an SDL document.
        sdl: String,
    },
    /// Replace the stored schema with the same name
    /// ([`Request::ReplaceSchema`]).
    Replace {
        /// The replacement schema as an SDL document.
        sdl: String,
    },
    /// Remove the schema stored under this name
    /// ([`Request::RemoveSchema`]).
    Remove {
        /// The repository key.
        name: String,
    },
}

/// One entry of a [`Request::Batch`] worklist. Only read-side requests
/// batch — mutations stay unary so each keeps its own durability
/// acknowledgment (DESIGN.md §10.4).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchItem {
    /// Match one stored pair by name ([`Request::MatchPair`]).
    MatchPair {
        /// Source schema name.
        source: String,
        /// Target schema name.
        target: String,
    },
    /// Index-pruned top-`k` discovery ([`Request::TopK`]).
    TopK {
        /// Candidates kept per schema.
        k: u32,
    },
    /// Repository and session counters ([`Request::Stats`]).
    Stats,
}

/// The successful result of one [`BatchItem`]; mirrors the unary
/// response variant of the same request kind, so batched and unary
/// results compare bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOutcome {
    /// [`BatchItem::MatchPair`] result ([`Response::Matched`]).
    Matched {
        /// Source schema name, echoed back.
        source: String,
        /// Target schema name, echoed back.
        target: String,
        /// The match result, bit-identical to the unary path.
        summary: MatchSummary,
    },
    /// [`BatchItem::TopK`] result ([`Response::TopKList`]).
    TopKList {
        /// Schema names, in repository order.
        names: Vec<String>,
        /// Executed candidate pairs' summaries.
        summaries: Vec<MatchSummary>,
    },
    /// [`BatchItem::Stats`] result ([`Response::Stats`]).
    Stats(StatsReport),
}

/// Aggregate daemon counters, as served by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReport {
    /// Schemas in the repository.
    pub schemas: u64,
    /// Pair summaries currently cached.
    pub cached_pairs: u64,
    /// Full pair executions since the daemon opened the repository.
    pub pairs_executed: u64,
    /// Distinct interned tokens across the corpus.
    pub vocab_size: u64,
    /// Approximate heap bytes held by the interned token table
    /// (strings, ids and the canonical-form map).
    pub vocab_bytes: u64,
    /// Distinct token pairs memoized in the session store.
    pub distinct_pairs_computed: u64,
    /// Chunks allocated by the similarity memo.
    pub sim_chunks: u64,
    /// Bytes committed by those chunks.
    pub sim_bytes: u64,
    /// Requests the daemon has served since it started.
    pub requests_served: u64,
    /// Mutation records in the write-ahead journal (fold to 0 at every
    /// save/compaction; DESIGN.md §10.6).
    pub journal_records: u64,
    /// Bytes in the journal file, header included.
    pub journal_bytes: u64,
    /// Journal records replayed when the daemon opened the repository.
    pub replayed_records: u64,
    /// Times the journal was folded into a snapshot since open.
    pub compactions: u64,
    /// The repository's most recent persistence failure, or empty when
    /// durability is healthy — how autosave degradation reaches
    /// operators instead of dying in the daemon's stderr.
    pub last_fsync_error: String,
    /// Requests refused by admission control because the in-flight cap
    /// stayed full past the queue deadline (DESIGN.md §12).
    pub shed_requests: u64,
    /// Connections closed for sitting idle past the idle read deadline
    /// without sending a frame — each one a reclaimed worker slot.
    pub idle_disconnects: u64,
    /// Connections cut for stalling mid-frame (read or write) past the
    /// frame deadline — a misbehaving peer, not an idle one.
    pub deadline_cuts: u64,
    /// Mutations answered from the request-id dedup table instead of
    /// re-applied — each one a retry whose original ack was lost.
    pub deduped_mutations: u64,
    /// Requests slower than the slow-log threshold since daemon start
    /// (whether or not they are still resident in the ring).
    pub slow_requests: u64,
    /// Traces currently held in the slow-log ring.
    pub slow_log_entries: u64,
    /// HTTP `/metrics` scrapes answered since daemon start.
    pub metrics_scrapes: u64,
    /// Explain requests answered since daemon start (DESIGN.md §14).
    pub explanations_served: u64,
    /// Per-request-kind latency histograms (log2 buckets; DESIGN.md
    /// §11), one entry per kind the daemon records, in the daemon's
    /// fixed kind order.
    pub latencies: Vec<KindLatency>,
    /// Per-(request kind, stage) attribution histograms (DESIGN.md
    /// §13.1), labeled `"<kind>/<stage>"`, non-empty cells only —
    /// where each kind's wall time actually goes.
    pub stage_latencies: Vec<KindLatency>,
}

/// A response the daemon sends back. Every request gets exactly one.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The schema was added under this name.
    Added {
        /// The repository key the schema is now stored under.
        name: String,
    },
    /// The schema was replaced (or found content-identical).
    Replaced {
        /// The repository key that was replaced.
        name: String,
    },
    /// The schema was removed.
    Removed {
        /// The repository key that was removed.
        name: String,
    },
    /// The result of a [`Request::MatchPair`].
    Matched {
        /// Source schema name, echoed back.
        source: String,
        /// Target schema name, echoed back.
        target: String,
        /// The match result, bit-identical to an in-process run.
        summary: MatchSummary,
    },
    /// The result of a [`Request::TopK`]: the executed candidate pairs
    /// in `(i, j)` index order, plus the repository's name table so the
    /// client can render `SchemaId` indices.
    TopKList {
        /// Schema names, in repository order (summary ids index this).
        names: Vec<String>,
        /// Executed candidate pairs' summaries.
        summaries: Vec<MatchSummary>,
    },
    /// Counters ([`Request::Stats`]).
    Stats(StatsReport),
    /// The snapshot was persisted ([`Request::Save`]).
    Saved {
        /// Size of the written snapshot file, in bytes.
        bytes: u64,
    },
    /// The daemon acknowledged [`Request::Shutdown`] and will exit.
    ShuttingDown,
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable failure description.
        message: String,
    },
    /// Admission control shed the request: the daemon's in-flight cap
    /// stayed full past its queue deadline (DESIGN.md §12). The
    /// connection stays usable and the request is safe to retry after
    /// backing off — nothing was executed.
    Overloaded {
        /// The daemon's in-flight cap at the time of the shed.
        max_inflight: u64,
        /// How long the request waited for a slot before being shed,
        /// in milliseconds (the daemon's queue deadline).
        queue_deadline_ms: u64,
    },
    /// The result of a [`Request::Batch`]: one status per worklist
    /// entry, in order. An `Err` entry carries the failure message and
    /// fails alone — the other entries still carry their results.
    Batch {
        /// Per-entry statuses, in worklist order.
        entries: Vec<Result<BatchOutcome, String>>,
    },
    /// The result of a [`Request::SlowLog`]: the ring contents,
    /// slowest first.
    SlowLog {
        /// The slowest requests the daemon has retained, each with its
        /// full stage breakdown.
        entries: Vec<TraceRecord>,
    },
    /// The result of a [`Request::Explain`]: per-mapping score
    /// provenance for the pair. Every mapping's explanation recomposes
    /// to its reported `wsim` bit-exactly
    /// ([`PairExplanation::recomposes_exactly`]).
    Explanation(PairExplanation),
}

// Frame kind codes. Append-only, like every enum code in the wire
// format: new messages get new numbers, existing numbers never change
// meaning.
const REQ_ADD: u8 = 0x01;
const REQ_REPLACE: u8 = 0x02;
const REQ_REMOVE: u8 = 0x03;
const REQ_MATCH_PAIR: u8 = 0x04;
const REQ_TOP_K: u8 = 0x05;
const REQ_STATS: u8 = 0x06;
const REQ_SAVE: u8 = 0x07;
const REQ_SHUTDOWN: u8 = 0x08;
const RESP_ADDED: u8 = 0x81;
const RESP_REPLACED: u8 = 0x82;
const RESP_REMOVED: u8 = 0x83;
const RESP_MATCHED: u8 = 0x84;
const RESP_TOP_K: u8 = 0x85;
const RESP_STATS: u8 = 0x86;
const RESP_SAVED: u8 = 0x87;
const RESP_SHUTTING_DOWN: u8 = 0x88;
const RESP_ERROR: u8 = 0x89;
// Batch frame kinds live in `cupid_model::wire` with the rest of the
// workspace kind-space bookkeeping (0x09 request / 0x8A response).

// Inner tag bytes of batch worklist entries and their statuses
// (same append-only discipline as frame kinds).
const ITEM_MATCH_PAIR: u8 = 0x01;
const ITEM_TOP_K: u8 = 0x02;
const ITEM_STATS: u8 = 0x03;
const MUTATE_ADD: u8 = 0x01;
const MUTATE_REPLACE: u8 = 0x02;
const MUTATE_REMOVE: u8 = 0x03;
const ENTRY_ERR: u8 = 0x00;
const ENTRY_MATCHED: u8 = 0x01;
const ENTRY_TOP_K: u8 = 0x02;
const ENTRY_STATS: u8 = 0x03;

impl Request {
    /// Encode into (frame kind, payload bytes).
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = WireWriter::new();
        let kind = match self {
            Request::AddSchema { sdl } => {
                w.put_str(sdl);
                REQ_ADD
            }
            Request::ReplaceSchema { sdl } => {
                w.put_str(sdl);
                REQ_REPLACE
            }
            Request::RemoveSchema { name } => {
                w.put_str(name);
                REQ_REMOVE
            }
            Request::MatchPair { source, target } => {
                w.put_str(source);
                w.put_str(target);
                REQ_MATCH_PAIR
            }
            Request::TopK { k } => {
                w.put_u32(*k);
                REQ_TOP_K
            }
            Request::Stats => REQ_STATS,
            Request::Save => REQ_SAVE,
            Request::Shutdown => REQ_SHUTDOWN,
            Request::Batch { items } => {
                w.put_len(items.len());
                for item in items {
                    item.write_wire(&mut w);
                }
                BATCH_REQUEST
            }
            Request::Mutate { request_id, op } => {
                w.put_u64(*request_id);
                match op {
                    MutationOp::Add { sdl } => {
                        w.put_u8(MUTATE_ADD);
                        w.put_str(sdl);
                    }
                    MutationOp::Replace { sdl } => {
                        w.put_u8(MUTATE_REPLACE);
                        w.put_str(sdl);
                    }
                    MutationOp::Remove { name } => {
                        w.put_u8(MUTATE_REMOVE);
                        w.put_str(name);
                    }
                }
                MUTATE_REQUEST
            }
            Request::SlowLog => SLOW_LOG_REQUEST,
            Request::Explain { source, target } => {
                w.put_str(source);
                w.put_str(target);
                EXPLAIN_REQUEST
            }
        };
        (kind, w.into_bytes())
    }

    /// Decode a frame's kind + payload. Strict: unknown kinds and
    /// trailing bytes are errors.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Request, WireError> {
        let mut r = WireReader::new(payload);
        let req = match kind {
            REQ_ADD => Request::AddSchema { sdl: r.get_str()? },
            REQ_REPLACE => Request::ReplaceSchema { sdl: r.get_str()? },
            REQ_REMOVE => Request::RemoveSchema { name: r.get_str()? },
            REQ_MATCH_PAIR => Request::MatchPair { source: r.get_str()?, target: r.get_str()? },
            REQ_TOP_K => Request::TopK { k: r.get_u32()? },
            REQ_STATS => Request::Stats,
            REQ_SAVE => Request::Save,
            REQ_SHUTDOWN => Request::Shutdown,
            BATCH_REQUEST => {
                let n = r.get_len()?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(BatchItem::read_wire(&mut r)?);
                }
                Request::Batch { items }
            }
            MUTATE_REQUEST => {
                let request_id = r.get_u64()?;
                let op = match r.get_u8()? {
                    MUTATE_ADD => MutationOp::Add { sdl: r.get_str()? },
                    MUTATE_REPLACE => MutationOp::Replace { sdl: r.get_str()? },
                    MUTATE_REMOVE => MutationOp::Remove { name: r.get_str()? },
                    other => return Err(r.err(format!("unknown mutation tag {other:#04x}"))),
                };
                Request::Mutate { request_id, op }
            }
            SLOW_LOG_REQUEST => Request::SlowLog,
            EXPLAIN_REQUEST => Request::Explain { source: r.get_str()?, target: r.get_str()? },
            other => return Err(r.err(format!("unknown request kind {other:#04x}"))),
        };
        r.finish()?;
        Ok(req)
    }

    /// Write this request as one frame.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), FrameError> {
        let (kind, payload) = self.encode();
        write_frame(w, kind, &payload)
    }

    /// Read one request frame; `None` on clean end-of-stream.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Request>, FrameError> {
        match read_frame(r)? {
            None => Ok(None),
            Some((kind, payload)) => Request::decode(kind, &payload)
                .map(Some)
                .map_err(|e| FrameError::Malformed(e.to_string())),
        }
    }
}

impl BatchItem {
    fn write_wire(&self, w: &mut WireWriter) {
        match self {
            BatchItem::MatchPair { source, target } => {
                w.put_u8(ITEM_MATCH_PAIR);
                w.put_str(source);
                w.put_str(target);
            }
            BatchItem::TopK { k } => {
                w.put_u8(ITEM_TOP_K);
                w.put_u32(*k);
            }
            BatchItem::Stats => w.put_u8(ITEM_STATS),
        }
    }

    fn read_wire(r: &mut WireReader<'_>) -> Result<BatchItem, WireError> {
        Ok(match r.get_u8()? {
            ITEM_MATCH_PAIR => BatchItem::MatchPair { source: r.get_str()?, target: r.get_str()? },
            ITEM_TOP_K => BatchItem::TopK { k: r.get_u32()? },
            ITEM_STATS => BatchItem::Stats,
            other => return Err(r.err(format!("unknown batch item tag {other:#04x}"))),
        })
    }
}

/// Shared TopK listing body (the unary response and the batch outcome
/// carry the same shape).
fn write_top_k(w: &mut WireWriter, names: &[String], summaries: &[MatchSummary]) {
    w.put_len(names.len());
    for n in names {
        w.put_str(n);
    }
    w.put_len(summaries.len());
    for s in summaries {
        s.write_wire(w);
    }
}

#[allow(clippy::type_complexity)]
fn read_top_k(r: &mut WireReader<'_>) -> Result<(Vec<String>, Vec<MatchSummary>), WireError> {
    let n = r.get_len()?;
    let mut names = Vec::with_capacity(n);
    for _ in 0..n {
        names.push(r.get_str()?);
    }
    let n = r.get_len()?;
    let mut summaries = Vec::with_capacity(n);
    for _ in 0..n {
        summaries.push(MatchSummary::read_wire(r)?);
    }
    Ok((names, summaries))
}

impl BatchOutcome {
    fn write_entry(entry: &Result<BatchOutcome, String>, w: &mut WireWriter) {
        match entry {
            Err(message) => {
                w.put_u8(ENTRY_ERR);
                w.put_str(message);
            }
            Ok(BatchOutcome::Matched { source, target, summary }) => {
                w.put_u8(ENTRY_MATCHED);
                w.put_str(source);
                w.put_str(target);
                summary.write_wire(w);
            }
            Ok(BatchOutcome::TopKList { names, summaries }) => {
                w.put_u8(ENTRY_TOP_K);
                write_top_k(w, names, summaries);
            }
            Ok(BatchOutcome::Stats(report)) => {
                w.put_u8(ENTRY_STATS);
                report.write_wire(w);
            }
        }
    }

    fn read_entry(r: &mut WireReader<'_>) -> Result<Result<BatchOutcome, String>, WireError> {
        Ok(match r.get_u8()? {
            ENTRY_ERR => Err(r.get_str()?),
            ENTRY_MATCHED => Ok(BatchOutcome::Matched {
                source: r.get_str()?,
                target: r.get_str()?,
                summary: MatchSummary::read_wire(r)?,
            }),
            ENTRY_TOP_K => {
                let (names, summaries) = read_top_k(r)?;
                Ok(BatchOutcome::TopKList { names, summaries })
            }
            ENTRY_STATS => Ok(BatchOutcome::Stats(StatsReport::read_wire(r)?)),
            other => return Err(r.err(format!("unknown batch entry tag {other:#04x}"))),
        })
    }
}

/// Shared encoding of a latency-histogram list (the per-kind wall
/// histograms and the per-(kind, stage) attribution histograms use the
/// same shape).
fn write_latencies(w: &mut WireWriter, latencies: &[KindLatency]) {
    w.put_len(latencies.len());
    for l in latencies {
        w.put_str(&l.kind);
        w.put_u64(l.count);
        w.put_u64(l.total_ns);
        w.put_len(l.buckets.len());
        for &b in &l.buckets {
            w.put_u64(b);
        }
    }
}

fn read_latencies(r: &mut WireReader<'_>) -> Result<Vec<KindLatency>, WireError> {
    let n = r.get_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = r.get_str()?;
        let count = r.get_u64()?;
        let total_ns = r.get_u64()?;
        let buckets_len = r.get_len()?;
        let mut buckets = Vec::with_capacity(buckets_len);
        for _ in 0..buckets_len {
            buckets.push(r.get_u64()?);
        }
        out.push(KindLatency { kind, count, total_ns, buckets });
    }
    Ok(out)
}

impl StatsReport {
    fn write_wire(&self, w: &mut WireWriter) {
        for v in [
            self.schemas,
            self.cached_pairs,
            self.pairs_executed,
            self.vocab_size,
            self.distinct_pairs_computed,
            self.sim_chunks,
            self.sim_bytes,
            self.requests_served,
            self.journal_records,
            self.journal_bytes,
            self.replayed_records,
            self.compactions,
            self.shed_requests,
            self.idle_disconnects,
            self.deadline_cuts,
            self.deduped_mutations,
            self.slow_requests,
            self.slow_log_entries,
            self.metrics_scrapes,
            // Appended fields keep the append-only discipline: new
            // counters go after every older one.
            self.vocab_bytes,
            self.explanations_served,
        ] {
            w.put_u64(v);
        }
        w.put_str(&self.last_fsync_error);
        write_latencies(w, &self.latencies);
        write_latencies(w, &self.stage_latencies);
    }

    fn read_wire(r: &mut WireReader<'_>) -> Result<StatsReport, WireError> {
        Ok(StatsReport {
            schemas: r.get_u64()?,
            cached_pairs: r.get_u64()?,
            pairs_executed: r.get_u64()?,
            vocab_size: r.get_u64()?,
            distinct_pairs_computed: r.get_u64()?,
            sim_chunks: r.get_u64()?,
            sim_bytes: r.get_u64()?,
            requests_served: r.get_u64()?,
            journal_records: r.get_u64()?,
            journal_bytes: r.get_u64()?,
            replayed_records: r.get_u64()?,
            compactions: r.get_u64()?,
            shed_requests: r.get_u64()?,
            idle_disconnects: r.get_u64()?,
            deadline_cuts: r.get_u64()?,
            deduped_mutations: r.get_u64()?,
            slow_requests: r.get_u64()?,
            slow_log_entries: r.get_u64()?,
            metrics_scrapes: r.get_u64()?,
            // Struct-literal order is evaluation order: the appended
            // counters decode after the older ones, matching the wire.
            vocab_bytes: r.get_u64()?,
            explanations_served: r.get_u64()?,
            last_fsync_error: r.get_str()?,
            latencies: read_latencies(r)?,
            stage_latencies: read_latencies(r)?,
        })
    }
}

impl TraceRecord {
    fn write_wire(&self, w: &mut WireWriter) {
        w.put_u64(self.trace_id);
        w.put_str(&self.kind);
        w.put_u64(self.total_ns);
        w.put_u64(self.finished_unix_ms);
        w.put_len(self.stage_ns.len());
        for &ns in &self.stage_ns {
            w.put_u64(ns);
        }
    }

    fn read_wire(r: &mut WireReader<'_>) -> Result<TraceRecord, WireError> {
        Ok(TraceRecord {
            trace_id: r.get_u64()?,
            kind: r.get_str()?,
            total_ns: r.get_u64()?,
            finished_unix_ms: r.get_u64()?,
            stage_ns: {
                let n = r.get_len()?;
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    out.push(r.get_u64()?);
                }
                out
            },
        })
    }
}

impl Response {
    /// Encode into (frame kind, payload bytes).
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = WireWriter::new();
        let kind = match self {
            Response::Added { name } => {
                w.put_str(name);
                RESP_ADDED
            }
            Response::Replaced { name } => {
                w.put_str(name);
                RESP_REPLACED
            }
            Response::Removed { name } => {
                w.put_str(name);
                RESP_REMOVED
            }
            Response::Matched { source, target, summary } => {
                w.put_str(source);
                w.put_str(target);
                summary.write_wire(&mut w);
                RESP_MATCHED
            }
            Response::TopKList { names, summaries } => {
                write_top_k(&mut w, names, summaries);
                RESP_TOP_K
            }
            Response::Stats(report) => {
                report.write_wire(&mut w);
                RESP_STATS
            }
            Response::Saved { bytes } => {
                w.put_u64(*bytes);
                RESP_SAVED
            }
            Response::ShuttingDown => RESP_SHUTTING_DOWN,
            Response::Error { message } => {
                w.put_str(message);
                RESP_ERROR
            }
            Response::Overloaded { max_inflight, queue_deadline_ms } => {
                w.put_u64(*max_inflight);
                w.put_u64(*queue_deadline_ms);
                OVERLOADED_RESPONSE
            }
            Response::Batch { entries } => {
                w.put_len(entries.len());
                for entry in entries {
                    BatchOutcome::write_entry(entry, &mut w);
                }
                BATCH_RESPONSE
            }
            Response::SlowLog { entries } => {
                w.put_len(entries.len());
                for entry in entries {
                    entry.write_wire(&mut w);
                }
                SLOW_LOG_RESPONSE
            }
            Response::Explanation(explanation) => {
                explanation.write_wire(&mut w);
                EXPLAIN_RESPONSE
            }
        };
        (kind, w.into_bytes())
    }

    /// Decode a frame's kind + payload. Strict, like
    /// [`Request::decode`].
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Response, WireError> {
        let mut r = WireReader::new(payload);
        let resp = match kind {
            RESP_ADDED => Response::Added { name: r.get_str()? },
            RESP_REPLACED => Response::Replaced { name: r.get_str()? },
            RESP_REMOVED => Response::Removed { name: r.get_str()? },
            RESP_MATCHED => Response::Matched {
                source: r.get_str()?,
                target: r.get_str()?,
                summary: MatchSummary::read_wire(&mut r)?,
            },
            RESP_TOP_K => {
                let (names, summaries) = read_top_k(&mut r)?;
                Response::TopKList { names, summaries }
            }
            RESP_STATS => Response::Stats(StatsReport::read_wire(&mut r)?),
            RESP_SAVED => Response::Saved { bytes: r.get_u64()? },
            RESP_SHUTTING_DOWN => Response::ShuttingDown,
            RESP_ERROR => Response::Error { message: r.get_str()? },
            OVERLOADED_RESPONSE => {
                Response::Overloaded { max_inflight: r.get_u64()?, queue_deadline_ms: r.get_u64()? }
            }
            BATCH_RESPONSE => {
                let n = r.get_len()?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(BatchOutcome::read_entry(&mut r)?);
                }
                Response::Batch { entries }
            }
            SLOW_LOG_RESPONSE => {
                let n = r.get_len()?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(TraceRecord::read_wire(&mut r)?);
                }
                Response::SlowLog { entries }
            }
            EXPLAIN_RESPONSE => Response::Explanation(PairExplanation::read_wire(&mut r)?),
            other => return Err(r.err(format!("unknown response kind {other:#04x}"))),
        };
        r.finish()?;
        Ok(resp)
    }

    /// Write this response as one frame.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), FrameError> {
        let (kind, payload) = self.encode();
        write_frame(w, kind, &payload)
    }

    /// Read one response frame; `None` on clean end-of-stream.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Response>, FrameError> {
        match read_frame(r)? {
            None => Ok(None),
            Some((kind, payload)) => Response::decode(kind, &payload)
                .map(Some)
                .map_err(|e| FrameError::Malformed(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_core::{Explanation, StructuralContext, TokenPairScore};
    use cupid_lexical::{TokenSimProvenance, TokenType};
    use cupid_model::NodeId;

    /// A hand-built explanation exercising every payload shape: token
    /// pairs with distinct provenances, structural flags, and the
    /// pair-level counters.
    fn sample_explanation() -> PairExplanation {
        PairExplanation {
            source_name: "PO".into(),
            target_name: "Order".into(),
            mappings: vec![Explanation {
                source: NodeId::from_index(2),
                target: NodeId::from_index(3),
                source_path: "PO.Item.Qty".into(),
                target_path: "Order.Item.Quantity".into(),
                leaf: true,
                wsim: 0.75,
                ssim: 0.9,
                lsim: 0.6,
                w_struct: 0.5,
                th_accept: 0.5,
                name_similarity: 0.6,
                category_scale: 1.0,
                token_pairs: vec![
                    TokenPairScore {
                        source_token: "quantity".into(),
                        target_token: "quantity".into(),
                        token_type: TokenType::Concept,
                        sim: 1.0,
                        provenance: TokenSimProvenance::Thesaurus,
                    },
                    TokenPairScore {
                        source_token: "addr".into(),
                        target_token: "address".into(),
                        token_type: TokenType::Content,
                        sim: 0.55,
                        provenance: TokenSimProvenance::Affix {
                            prefix_len: 4,
                            suffix_len: 0,
                            capped: true,
                        },
                    },
                ],
                structure: StructuralContext {
                    source_leaves: 2,
                    target_leaves: 2,
                    source_strong_links: 2,
                    target_strong_links: 1,
                    main_pass_wsim: 0.7,
                    pruned: false,
                    increased: true,
                    decreased: false,
                },
            }],
            compared_pairs: 9,
            total_pairs: 16,
            increases: 1,
            decreases: 0,
        }
    }

    #[test]
    fn explain_frames_round_trip() {
        let req = Request::Explain { source: "PO".into(), target: "Order".into() };
        let (kind, payload) = req.encode();
        assert_eq!(Request::decode(kind, &payload).unwrap(), req);
        // Request kind on a response stream must not decode.
        assert!(Response::decode(kind, &payload).is_err());

        let want = Response::Explanation(sample_explanation());
        let (kind, payload) = want.encode();
        assert_eq!(Response::decode(kind, &payload).unwrap(), want);
        assert!(Request::decode(kind, &payload).is_err());
        // Trailing bytes are rejected, like every frame.
        let (kind, mut payload) = want.encode();
        payload.push(0);
        assert!(Response::decode(kind, &payload).is_err());
    }

    #[test]
    fn request_kinds_round_trip() {
        let requests = [
            Request::AddSchema { sdl: "schema S\n  attr A : int\n".into() },
            Request::ReplaceSchema { sdl: String::new() },
            Request::RemoveSchema { name: "Sales".into() },
            Request::MatchPair { source: "PO".into(), target: "Order".into() },
            Request::TopK { k: 3 },
            Request::Stats,
            Request::Save,
            Request::Shutdown,
            Request::Batch {
                items: vec![
                    BatchItem::MatchPair { source: "PO".into(), target: "Order".into() },
                    BatchItem::TopK { k: 2 },
                    BatchItem::Stats,
                ],
            },
            Request::Batch { items: Vec::new() },
            Request::Mutate {
                request_id: 0xDEAD_BEEF_0BAD_CAFE,
                op: MutationOp::Add { sdl: "schema S\n  attr A : int\n".into() },
            },
            Request::Mutate { request_id: 0, op: MutationOp::Replace { sdl: String::new() } },
            Request::Mutate { request_id: u64::MAX, op: MutationOp::Remove { name: "S".into() } },
            Request::SlowLog,
            Request::Explain { source: "PO".into(), target: "Order".into() },
        ];
        let mut buf = Vec::new();
        for req in &requests {
            req.write_to(&mut buf).unwrap();
        }
        let mut r = &buf[..];
        for req in &requests {
            assert_eq!(Request::read_from(&mut r).unwrap().as_ref(), Some(req));
        }
        assert_eq!(Request::read_from(&mut r).unwrap(), None);
    }

    #[test]
    fn request_response_kind_spaces_are_disjoint() {
        // A response frame on a request stream must not decode.
        let (kind, payload) = Response::ShuttingDown.encode();
        assert!(Request::decode(kind, &payload).is_err());
        let (kind, payload) = Request::Stats.encode();
        assert!(Response::decode(kind, &payload).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (kind, mut payload) = Request::TopK { k: 9 }.encode();
        payload.push(0);
        assert!(Request::decode(kind, &payload).is_err());
        let (kind, mut payload) = Response::Saved { bytes: 17 }.encode();
        payload.push(0);
        assert!(Response::decode(kind, &payload).is_err());
        let (kind, mut payload) = Request::Batch { items: vec![BatchItem::Stats] }.encode();
        payload.push(0);
        assert!(Request::decode(kind, &payload).is_err());
    }

    #[test]
    fn overloaded_response_round_trips() {
        let want = Response::Overloaded { max_inflight: 32, queue_deadline_ms: 100 };
        let (kind, payload) = want.encode();
        assert_eq!(Response::decode(kind, &payload).unwrap(), want);
        // The shed is a response kind: it must not decode as a request.
        assert!(Request::decode(kind, &payload).is_err());
        let (kind, mut payload) = want.encode();
        payload.push(0);
        assert!(Response::decode(kind, &payload).is_err());
    }

    #[test]
    fn mutation_tags_are_strict() {
        let (kind, mut payload) =
            Request::Mutate { request_id: 7, op: MutationOp::Remove { name: "X".into() } }.encode();
        payload[8] = 0x7f; // the op tag byte, after the u64 request id
        assert!(Request::decode(kind, &payload).is_err());
    }

    #[test]
    fn batch_response_round_trips_per_entry_statuses() {
        let entries = vec![
            Err("no schema `Ghost` in the repository".to_string()),
            Ok(BatchOutcome::TopKList { names: vec!["A".into(), "B".into()], summaries: vec![] }),
        ];
        let want = Response::Batch { entries };
        let (kind, payload) = want.encode();
        assert_eq!(Response::decode(kind, &payload).unwrap(), want);
        // An unknown entry tag is a loud decode error.
        let (kind, mut payload) = Response::Batch { entries: vec![Err("x".into())] }.encode();
        payload[4] = 0x7f; // the first entry's tag byte (after the u32 count)
        assert!(Response::decode(kind, &payload).is_err());
    }

    #[test]
    fn slow_log_response_round_trips() {
        let want = Response::SlowLog {
            entries: vec![
                TraceRecord {
                    trace_id: 42,
                    kind: "batch".into(),
                    total_ns: 2_000_000,
                    finished_unix_ms: 1_754_000_000_000,
                    stage_ns: vec![0, 1_000, 0, 0, 1_900_000, 0, 50_000, 49_000],
                },
                TraceRecord {
                    trace_id: 7,
                    kind: "match_pair".into(),
                    total_ns: 1_200_000,
                    finished_unix_ms: 0,
                    stage_ns: Vec::new(),
                },
            ],
        };
        let (kind, payload) = want.encode();
        assert_eq!(Response::decode(kind, &payload).unwrap(), want);
        // Empty ring round-trips too.
        let empty = Response::SlowLog { entries: Vec::new() };
        let (kind, payload) = empty.encode();
        assert_eq!(Response::decode(kind, &payload).unwrap(), empty);
        // Trailing bytes are rejected, like every frame.
        let (kind, mut payload) = want.encode();
        payload.push(0);
        assert!(Response::decode(kind, &payload).is_err());
    }
}
