//! `cupid-serve` — the match daemon's command line.
//!
//! Daemon mode (the default) runs a [`cupid_serve::Server`] over a
//! repository snapshot with the default matcher configuration and the
//! default-stopword thesaurus:
//!
//! ```text
//! cupid-serve <addr> <repo-path> [--max-conns N] [--autosave N] [--compact-after N]
//!             [--max-inflight N] [--queue-deadline MS] [--idle-timeout MS] [--frame-deadline MS]
//!             [--no-trace] [--slow-log-capacity N] [--slow-threshold-ms MS] [--log-level LEVEL]
//! ```
//!
//! `--max-inflight` / `--queue-deadline` enable admission control
//! (shed with a typed `Overloaded` frame instead of queueing);
//! `--idle-timeout` / `--frame-deadline` bound how long a silent or
//! stalling peer can hold a connection (DESIGN.md §12). The
//! observability knobs (DESIGN.md §13) tune per-request stage tracing,
//! the slow-log ring and the structured stderr log; the daemon also
//! answers `GET /metrics` on its own port with a Prometheus text
//! exposition.
//!
//! Client mode sends one request to a running daemon and prints the
//! reply:
//!
//! ```text
//! cupid-serve --client <addr> stats
//! cupid-serve --client <addr> slowlog
//! cupid-serve --client <addr> add <schema.sdl>
//! cupid-serve --client <addr> replace <schema.sdl>
//! cupid-serve --client <addr> remove <name>
//! cupid-serve --client <addr> match <source> <target>
//! cupid-serve --client <addr> explain <source> <target>
//! cupid-serve --client <addr> topk <k>
//! cupid-serve --client <addr> save
//! cupid-serve --client <addr> shutdown
//! ```

use cupid_core::CupidConfig;
use cupid_lexical::Thesaurus;
use cupid_serve::{Level, ServeClient, ServeOptions, Server, STAGE_NAMES};

const USAGE: &str = "usage:
  cupid-serve <addr> <repo-path> [--max-conns N] [--autosave N] [--compact-after N]
              [--max-inflight N] [--queue-deadline MS] [--idle-timeout MS] [--frame-deadline MS]
              [--no-trace] [--slow-log-capacity N] [--slow-threshold-ms MS] [--log-level LEVEL]
  cupid-serve --client <addr> <command> [args]

daemon flags:
  --max-conns N        concurrent connection cap (default 64)
  --autosave N         fsync the journal every N mutations
  --compact-after N    fold the journal into a snapshot at N records
  --max-inflight N     admission control: at most N requests execute at
                       once; arrivals over the cap are shed with a typed
                       Overloaded frame after --queue-deadline
  --queue-deadline MS  how long a request may wait for a slot (default 100)
  --idle-timeout MS    close connections idle between frames this long
                       (default 300000; 0 disables)
  --frame-deadline MS  cut connections stalled mid-frame this long
                       (default 30000; 0 disables)
  --no-trace           disable per-request stage tracing (stage
                       histograms and the slow log stay empty)
  --slow-log-capacity N  slowest traces retained for `slowlog` (default
                       32; 0 disables the ring)
  --slow-threshold-ms MS  requests at least this slow enter the slow
                       log (default 1)
  --log-level LEVEL    structured stderr log level: debug, info, warn,
                       error, off (default info)

the daemon also answers HTTP `GET /metrics` on the same port with a
Prometheus text exposition of every counter and histogram.

client commands:
  stats                      daemon counters, latency and stage tables
  slowlog                    the slowest retained requests, stage by stage
  add <schema.sdl>           add a schema from an SDL file
  replace <schema.sdl>       replace the schema with the same name
  remove <name>              remove a schema
  match <source> <target>    match one stored pair
  explain <source> <target>  per-mapping score provenance for one pair
  topk <k>                   index-pruned top-k discovery
  save                       persist the snapshot now
  shutdown                   stop the daemon (it saves on the way out)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = if args.first().map(String::as_str) == Some("--client") {
        run_client(&args[1..])
    } else {
        run_daemon(&args)
    };
    if let Err(message) = result {
        eprintln!("cupid-serve: {message}");
        std::process::exit(1);
    }
}

fn run_daemon(args: &[String]) -> Result<(), String> {
    let mut positional = Vec::new();
    let mut options = ServeOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-conns" => {
                options.max_connections = flag_value(args, &mut i, "--max-conns")? as usize;
            }
            "--autosave" => {
                options.autosave_every = Some(flag_value(args, &mut i, "--autosave")?);
            }
            "--compact-after" => {
                options.compact_after = Some(flag_value(args, &mut i, "--compact-after")?);
            }
            "--max-inflight" => {
                options.max_inflight = Some(flag_value(args, &mut i, "--max-inflight")? as usize);
            }
            "--queue-deadline" => {
                options.queue_deadline =
                    std::time::Duration::from_millis(flag_value(args, &mut i, "--queue-deadline")?);
            }
            "--idle-timeout" => {
                let ms = flag_value(args, &mut i, "--idle-timeout")?;
                options.idle_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--frame-deadline" => {
                let ms = flag_value(args, &mut i, "--frame-deadline")?;
                options.frame_deadline = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--no-trace" => {
                options.tracing = false;
            }
            "--slow-log-capacity" => {
                options.slow_log_capacity =
                    flag_value(args, &mut i, "--slow-log-capacity")? as usize;
            }
            "--slow-threshold-ms" => {
                options.slow_threshold = std::time::Duration::from_millis(flag_value(
                    args,
                    &mut i,
                    "--slow-threshold-ms",
                )?);
            }
            "--log-level" => {
                i += 1;
                options.log_level = args.get(i).and_then(|v| Level::parse(v)).ok_or_else(|| {
                    "--log-level needs one of: debug, info, warn, error, off".to_string()
                })?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{USAGE}"));
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    let [addr, repo_path] = positional.as_slice() else {
        return Err(USAGE.to_string());
    };
    let config = CupidConfig::default();
    let thesaurus = Thesaurus::with_default_stopwords();
    let server = Server::bind(addr.as_str(), repo_path, &config, &thesaurus, options)
        .map_err(|e| e.to_string())?;
    println!(
        "cupid-serve: listening on {} over {}",
        server.local_addr(),
        server.repo_path().display()
    );
    server.run().map_err(|e| e.to_string())?;
    println!("cupid-serve: shut down, snapshot saved");
    Ok(())
}

/// Render nanoseconds with a unit the eye can scan in a table:
/// sub-microsecond stays in ns, sub-millisecond in µs, the rest in ms.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    }
}

/// Render a token-pair similarity's source for the explain table.
fn provenance_label(p: &cupid_lexical::TokenSimProvenance) -> String {
    match p {
        cupid_lexical::TokenSimProvenance::ExactSymbol => "exact symbol".into(),
        cupid_lexical::TokenSimProvenance::Thesaurus => "thesaurus".into(),
        cupid_lexical::TokenSimProvenance::Affix { prefix_len, suffix_len, capped } => format!(
            "affix (prefix {prefix_len}, suffix {suffix_len}{})",
            if *capped { ", capped" } else { "" }
        ),
        cupid_lexical::TokenSimProvenance::NoMatch => "no match".into(),
    }
}

fn flag_value(args: &[String], i: &mut usize, flag: &str) -> Result<u64, String> {
    *i += 1;
    args.get(*i).and_then(|v| v.parse().ok()).ok_or_else(|| format!("{flag} needs a numeric value"))
}

fn run_client(args: &[String]) -> Result<(), String> {
    let [addr, command, rest @ ..] = args else {
        return Err(USAGE.to_string());
    };
    let mut client = ServeClient::connect(addr.as_str()).map_err(|e| e.to_string())?;
    let remote = |e: cupid_serve::ServeError| e.to_string();
    match (command.as_str(), rest) {
        ("stats", []) => {
            let s = client.stats().map_err(remote)?;
            println!(
                "schemas {}  cached pairs {}  pairs executed {}\n\
                 vocabulary {} tokens ({} KiB)  memoized token pairs {}  \
                 memo {} chunks ({} KiB)\n\
                 journal {} records ({} bytes)  replayed {}  compactions {}\n\
                 requests served {}  explanations served {}",
                s.schemas,
                s.cached_pairs,
                s.pairs_executed,
                s.vocab_size,
                s.vocab_bytes / 1024,
                s.distinct_pairs_computed,
                s.sim_chunks,
                s.sim_bytes / 1024,
                s.journal_records,
                s.journal_bytes,
                s.replayed_records,
                s.compactions,
                s.requests_served,
                s.explanations_served
            );
            if s.shed_requests + s.idle_disconnects + s.deadline_cuts + s.deduped_mutations > 0 {
                println!(
                    "hostile-network: shed {}  idle disconnects {}  deadline cuts {}  \
                     deduped mutations {}",
                    s.shed_requests, s.idle_disconnects, s.deadline_cuts, s.deduped_mutations
                );
            }
            if s.slow_requests + s.slow_log_entries + s.metrics_scrapes > 0 {
                println!(
                    "observability: slow requests {}  slow-log entries {}  metrics scrapes {}",
                    s.slow_requests, s.slow_log_entries, s.metrics_scrapes
                );
            }
            if !s.last_fsync_error.is_empty() {
                println!("DEGRADED: last fsync error: {}", s.last_fsync_error);
            }
            let served: Vec<_> = s.latencies.iter().filter(|l| l.count > 0).collect();
            if !served.is_empty() {
                println!("latency (per request kind, log2 buckets):");
                println!(
                    "  {:<12} {:>9} {:>10} {:>10} {:>10} {:>10}",
                    "kind", "count", "mean", "p50", "p99", "p999"
                );
                for l in served {
                    println!(
                        "  {:<12} {:>9} {:>10} {:>10} {:>10} {:>10}",
                        l.kind,
                        l.count,
                        fmt_ns(l.mean_ns()),
                        fmt_ns(l.quantile_ns(0.50)),
                        fmt_ns(l.quantile_ns(0.99)),
                        fmt_ns(l.quantile_ns(0.999))
                    );
                }
            }
            if !s.stage_latencies.is_empty() {
                println!("stage attribution (share of each kind's total wall time):");
                println!(
                    "  {:<28} {:>9} {:>10} {:>10} {:>7}",
                    "kind/stage", "count", "total", "mean", "share"
                );
                for stage in &s.stage_latencies {
                    let kind = stage.kind.split('/').next().unwrap_or("");
                    let kind_total_ns = s
                        .latencies
                        .iter()
                        .find(|l| l.kind == kind)
                        .map(|l| l.total_ns)
                        .unwrap_or(0);
                    let share = if kind_total_ns > 0 {
                        100.0 * stage.total_ns as f64 / kind_total_ns as f64
                    } else {
                        0.0
                    };
                    println!(
                        "  {:<28} {:>9} {:>10} {:>10} {:>6.1}%",
                        stage.kind,
                        stage.count,
                        fmt_ns(stage.total_ns),
                        fmt_ns(stage.mean_ns()),
                        share
                    );
                }
            }
        }
        ("slowlog", []) => {
            let entries = client.slow_log().map_err(remote)?;
            if entries.is_empty() {
                println!("slow log is empty (no request cleared the daemon's threshold)");
            }
            for e in &entries {
                println!(
                    "trace {}  {}  total {}  finished@{}ms",
                    e.trace_id,
                    e.kind,
                    fmt_ns(e.total_ns),
                    e.finished_unix_ms
                );
                for (name, &ns) in STAGE_NAMES.iter().zip(&e.stage_ns) {
                    if ns > 0 {
                        println!(
                            "  {:<16} {:>10}  {:>5.1}%",
                            name,
                            fmt_ns(ns),
                            100.0 * ns as f64 / e.total_ns.max(1) as f64
                        );
                    }
                }
            }
        }
        ("add", [file]) => {
            let sdl = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            println!("added `{}`", client.add_sdl(&sdl).map_err(remote)?);
        }
        ("replace", [file]) => {
            let sdl = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            println!("replaced `{}`", client.replace_sdl(&sdl).map_err(remote)?);
        }
        ("remove", [name]) => {
            client.remove(name).map_err(remote)?;
            println!("removed `{name}`");
        }
        ("match", [source, target]) => {
            let summary = client.match_pair(source, target).map_err(remote)?;
            println!(
                "{source} ~ {target}: best wsim {:.3}, {} leaf mappings",
                summary.best_wsim(),
                summary.leaf_mappings.len()
            );
            for m in summary.leaf_mappings.iter().take(10) {
                println!("  {} -> {}  (wsim {:.3})", m.source_path, m.target_path, m.wsim);
            }
        }
        ("explain", [source, target]) => {
            let x = client.explain(source, target).map_err(remote)?;
            println!(
                "{} ~ {}: {} mappings explained  \
                 (compared {} of {} element pairs; {} increases, {} decreases)",
                x.source_name,
                x.target_name,
                x.mappings.len(),
                x.compared_pairs,
                x.total_pairs,
                x.increases,
                x.decreases
            );
            for m in &x.mappings {
                println!(
                    "{} -> {}  {}",
                    m.source_path,
                    m.target_path,
                    if m.leaf { "[leaf]" } else { "[non-leaf]" }
                );
                println!(
                    "  wsim {:.4} = {:.2}*ssim {:.4} + {:.2}*lsim {:.4}  \
                     (th_accept {:.2}, recomposes {})",
                    m.wsim,
                    m.w_struct,
                    m.ssim,
                    1.0 - m.w_struct,
                    m.lsim,
                    m.th_accept,
                    if m.recomposes_exactly() { "bit-exactly" } else { "INEXACTLY" }
                );
                println!(
                    "  lsim = ns {:.4} x category scale {:.4}",
                    m.name_similarity, m.category_scale
                );
                let s = &m.structure;
                let passes = match (s.pruned, s.increased, s.decreased) {
                    (true, ..) => "pruned",
                    (_, true, _) => "increased",
                    (_, _, true) => "decreased",
                    _ => "unchanged",
                };
                println!(
                    "  structure: leaves {}/{}  strong links {}/{}  \
                     main-pass wsim {:.4} ({passes})",
                    s.source_leaves,
                    s.target_leaves,
                    s.source_strong_links,
                    s.target_strong_links,
                    s.main_pass_wsim
                );
                if !m.token_pairs.is_empty() {
                    println!(
                        "  {:<16} {:<16} {:<8} {:>7}  provenance",
                        "source token", "target token", "type", "sim"
                    );
                    for t in &m.token_pairs {
                        println!(
                            "  {:<16} {:<16} {:<8} {:>7.4}  {}",
                            t.source_token,
                            t.target_token,
                            format!("{:?}", t.token_type).to_lowercase(),
                            t.sim,
                            provenance_label(&t.provenance)
                        );
                    }
                }
            }
        }
        ("topk", [k]) => {
            let k: usize = k.parse().map_err(|_| "topk needs a number".to_string())?;
            let listing = client.top_k(k).map_err(remote)?;
            println!("{} candidate pairs executed:", listing.summaries.len());
            let mut ranked: Vec<_> = listing.summaries.iter().collect();
            ranked.sort_by(|a, b| {
                b.best_wsim().partial_cmp(&a.best_wsim()).unwrap_or(std::cmp::Ordering::Equal)
            });
            for s in ranked.iter().take(10) {
                println!(
                    "  {} ~ {}  best wsim {:.3}",
                    listing.names[s.source.index()],
                    listing.names[s.target.index()],
                    s.best_wsim()
                );
            }
        }
        ("save", []) => {
            println!("snapshot saved ({} bytes)", client.save().map_err(remote)?);
        }
        ("shutdown", []) => {
            client.shutdown().map_err(remote)?;
            println!("daemon shutting down");
        }
        _ => return Err(format!("unknown client command `{command}`\n{USAGE}")),
    }
    Ok(())
}
