//! Prometheus text exposition of the daemon's counters and histograms
//! (DESIGN.md §13.3).
//!
//! The daemon publishes everything the `Stats` frame carries — the
//! repository/session/journal/hostile-network counters plus the
//! per-request-kind wall histograms and the per-(kind, stage)
//! attribution histograms — in the Prometheus text format (version
//! 0.0.4), hand-rolled like the rest of the stack: the exposition is
//! plain `name{labels} value` lines, so no dependency is needed or
//! wanted. The daemon serves it over HTTP on the *same* port as the
//! frame protocol: an accepted connection whose first bytes are
//! `GET ` (vs the `CPDF` frame magic) is answered as an HTTP/1.1
//! request for `/metrics` and closed — so `curl
//! http://host:port/metrics` works against any running daemon with no
//! extra listener, flag, or port.
//!
//! Histograms translate directly: the log2 bucket `i` of a
//! [`KindLatency`] covers `(2^i - 1, 2^(i+1) - 1]` nanoseconds, so its
//! inclusive upper bound becomes the `le` boundary in seconds and the
//! running total becomes the cumulative count Prometheus expects.
//! Trailing all-zero buckets are elided (the `+Inf` bucket closes every
//! series), which keeps a full scrape in the tens of kilobytes.

use crate::histogram::{bucket_upper_ns, KindLatency};
use crate::protocol::StatsReport;

/// Render a full exposition from one stats snapshot.
pub fn render_prometheus(report: &StatsReport) -> String {
    let mut out = String::with_capacity(8 << 10);
    let mut gauge = |name: &str, help: &str, value: u64| {
        scalar(&mut out, name, help, "gauge", value);
    };
    gauge("cupid_schemas", "Schemas resident in the repository.", report.schemas);
    gauge("cupid_cached_pairs", "Pair summaries currently cached.", report.cached_pairs);
    gauge("cupid_vocab_size", "Distinct interned tokens across the corpus.", report.vocab_size);
    gauge(
        "cupid_vocab_bytes",
        "Approximate heap bytes held by the interned token table.",
        report.vocab_bytes,
    );
    gauge(
        "cupid_distinct_token_pairs",
        "Distinct token pairs memoized in the similarity store.",
        report.distinct_pairs_computed,
    );
    gauge("cupid_sim_chunks", "Chunks allocated by the similarity memo.", report.sim_chunks);
    gauge("cupid_sim_bytes", "Bytes committed by the similarity memo.", report.sim_bytes);
    gauge(
        "cupid_journal_records",
        "Mutation records in the write-ahead journal (folds to 0 at compaction).",
        report.journal_records,
    );
    gauge(
        "cupid_journal_bytes",
        "Bytes in the journal file, header included.",
        report.journal_bytes,
    );
    gauge(
        "cupid_slow_log_entries",
        "Traces currently held in the slow-log ring.",
        report.slow_log_entries,
    );
    gauge(
        "cupid_durability_degraded",
        "1 when the repository's last journal fsync failed, 0 when healthy.",
        u64::from(!report.last_fsync_error.is_empty()),
    );
    let mut counter = |name: &str, help: &str, value: u64| {
        scalar(&mut out, name, help, "counter", value);
    };
    counter(
        "cupid_pairs_executed_total",
        "Full pair executions since the daemon opened the repository.",
        report.pairs_executed,
    );
    counter("cupid_requests_total", "Requests served since daemon start.", report.requests_served);
    counter(
        "cupid_replayed_records_total",
        "Journal records replayed when the daemon opened the repository.",
        report.replayed_records,
    );
    counter(
        "cupid_compactions_total",
        "Times the journal was folded into a snapshot since open.",
        report.compactions,
    );
    counter(
        "cupid_shed_requests_total",
        "Requests refused by admission control past the queue deadline.",
        report.shed_requests,
    );
    counter(
        "cupid_idle_disconnects_total",
        "Connections closed for idling past the idle read deadline.",
        report.idle_disconnects,
    );
    counter(
        "cupid_deadline_cuts_total",
        "Connections cut for stalling mid-frame past the frame deadline.",
        report.deadline_cuts,
    );
    counter(
        "cupid_deduped_mutations_total",
        "Mutation retries answered from the request-id replay table.",
        report.deduped_mutations,
    );
    counter(
        "cupid_slow_requests_total",
        "Requests slower than the slow-log threshold since daemon start.",
        report.slow_requests,
    );
    counter(
        "cupid_metrics_scrapes_total",
        "HTTP /metrics scrapes answered since daemon start.",
        report.metrics_scrapes,
    );
    counter(
        "cupid_explanations_served_total",
        "Explain requests answered since daemon start.",
        report.explanations_served,
    );

    histogram_family(
        &mut out,
        "cupid_request_duration_seconds",
        "Request wall time by request kind (log2 buckets).",
        report.latencies.iter().map(|l| (vec![("kind", l.kind.as_str())], l)),
    );
    histogram_family(
        &mut out,
        "cupid_stage_duration_seconds",
        "Per-request stage time by request kind and pipeline stage (log2 buckets).",
        report.stage_latencies.iter().map(|l| {
            // Stage snapshots are labeled "<kind>/<stage>".
            let (kind, stage) = l.kind.split_once('/').unwrap_or((l.kind.as_str(), "unknown"));
            (vec![("kind", kind), ("stage", stage)], l)
        }),
    );
    out
}

/// One `# HELP` / `# TYPE` / value triple for a label-less scalar.
fn scalar(out: &mut String, name: &str, help: &str, kind: &str, value: u64) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"));
}

/// A histogram family: one `_bucket`/`_sum`/`_count` series per
/// labeled [`KindLatency`]. Series with zero samples are skipped —
/// an absent series is valid exposition, an all-zero 40-bucket ladder
/// is noise.
fn histogram_family<'a>(
    out: &mut String,
    name: &str,
    help: &str,
    series: impl Iterator<Item = (Vec<(&'a str, &'a str)>, &'a KindLatency)>,
) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    for (labels, latency) in series {
        if latency.count == 0 {
            continue;
        }
        let label_body = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect::<Vec<_>>()
            .join(",");
        let last_live = latency.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
        let mut cumulative = 0u64;
        for (i, &n) in latency.buckets.iter().enumerate().take(last_live + 1) {
            cumulative += n;
            let le = bucket_upper_ns(i) as f64 / 1e9;
            out.push_str(&format!("{name}_bucket{{{label_body},le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{name}_bucket{{{label_body},le=\"+Inf\"}} {}\n", latency.count));
        out.push_str(&format!("{name}_sum{{{label_body}}} {}\n", latency.total_ns as f64 / 1e9));
        out.push_str(&format!("{name}_count{{{label_body}}} {}\n", latency.count));
    }
}

/// Escape a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// A minimal HTTP/1.1 response with the exposition content type.
pub(crate) fn http_response(status: &str, content_type: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// The exposition content type (text format version 0.0.4).
pub(crate) const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::LatencyHistogram;
    use std::time::Duration;

    fn report() -> StatsReport {
        let wall = LatencyHistogram::new();
        wall.record(Duration::from_micros(3));
        wall.record(Duration::from_millis(2));
        let stage = LatencyHistogram::new();
        stage.record(Duration::from_micros(1));
        StatsReport {
            schemas: 4,
            cached_pairs: 6,
            pairs_executed: 6,
            vocab_size: 100,
            vocab_bytes: 4096,
            distinct_pairs_computed: 50,
            sim_chunks: 2,
            sim_bytes: 65536,
            requests_served: 9,
            journal_records: 3,
            journal_bytes: 200,
            replayed_records: 0,
            compactions: 1,
            last_fsync_error: String::new(),
            shed_requests: 0,
            idle_disconnects: 0,
            deadline_cuts: 0,
            deduped_mutations: 0,
            slow_requests: 1,
            slow_log_entries: 1,
            metrics_scrapes: 0,
            explanations_served: 2,
            latencies: vec![wall.snapshot("match_pair"), KindLatency::empty("save")],
            stage_latencies: vec![stage.snapshot("match_pair/decode")],
        }
    }

    #[test]
    fn exposition_carries_every_counter_family() {
        let text = render_prometheus(&report());
        for family in [
            "cupid_schemas",
            "cupid_cached_pairs",
            "cupid_pairs_executed_total",
            "cupid_vocab_size",
            "cupid_vocab_bytes",
            "cupid_distinct_token_pairs",
            "cupid_sim_chunks",
            "cupid_sim_bytes",
            "cupid_requests_total",
            "cupid_journal_records",
            "cupid_journal_bytes",
            "cupid_replayed_records_total",
            "cupid_compactions_total",
            "cupid_shed_requests_total",
            "cupid_idle_disconnects_total",
            "cupid_deadline_cuts_total",
            "cupid_deduped_mutations_total",
            "cupid_slow_requests_total",
            "cupid_slow_log_entries",
            "cupid_metrics_scrapes_total",
            "cupid_explanations_served_total",
            "cupid_durability_degraded",
            "cupid_request_duration_seconds",
            "cupid_stage_duration_seconds",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "family {family} missing from exposition:\n{text}"
            );
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_closed_by_inf() {
        let text = render_prometheus(&report());
        // Two samples for match_pair: the +Inf bucket must say 2 and
        // the _count line must agree.
        assert!(text
            .contains("cupid_request_duration_seconds_bucket{kind=\"match_pair\",le=\"+Inf\"} 2"));
        assert!(text.contains("cupid_request_duration_seconds_count{kind=\"match_pair\"} 2"));
        // The empty "save" kind is elided entirely.
        assert!(!text.contains("kind=\"save\""));
        // Stage series split the "kind/stage" label.
        assert!(text.contains(
            "cupid_stage_duration_seconds_bucket{kind=\"match_pair\",stage=\"decode\",le=\""
        ));
        // Every line is either a comment or name{...} value / name value.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line.rsplit_once(' ').is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
                "unparseable exposition line: {line}"
            );
        }
    }

    #[test]
    fn degraded_flag_follows_fsync_error() {
        let mut r = report();
        assert!(render_prometheus(&r).contains("cupid_durability_degraded 0"));
        r.last_fsync_error = "fsync: injected".into();
        assert!(render_prometheus(&r).contains("cupid_durability_degraded 1"));
    }

    #[test]
    fn http_response_frames_the_body() {
        let resp = http_response("200 OK", EXPOSITION_CONTENT_TYPE, "x 1\n");
        let text = String::from_utf8(resp).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(text.ends_with("\r\n\r\nx 1\n"));
    }
}
