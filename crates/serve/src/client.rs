//! The daemon's client library: one blocking TCP connection, one
//! request/response exchange per call.
//!
//! A [`ServeClient`] is deliberately thin — it owns a single stream and
//! runs the protocol synchronously, so "N concurrent clients" is N
//! `ServeClient`s on N threads, which is exactly how the integration
//! suite and the throughput bench drive the daemon.

use std::net::{TcpStream, ToSocketAddrs};

use cupid_core::MatchSummary;

use crate::protocol::{Request, Response, StatsReport};
use crate::ServeError;

/// A connected daemon client.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
}

/// The result of a top-`k` discovery request: the executed candidate
/// pairs plus the daemon's name table for rendering summary ids.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKListing {
    /// Schema names, in repository order.
    pub names: Vec<String>,
    /// Executed candidate pairs' summaries, in `(i, j)` index order.
    pub summaries: Vec<MatchSummary>,
}

impl ServeClient {
    /// Connect to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient, ServeError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ServeError::Io { context: "connect".into(), message: e.to_string() })?;
        stream.set_nodelay(true).ok();
        Ok(ServeClient { stream })
    }

    /// One request/response exchange.
    fn roundtrip(&mut self, request: &Request) -> Result<Response, ServeError> {
        request.write_to(&mut self.stream).map_err(ServeError::Frame)?;
        match Response::read_from(&mut self.stream).map_err(ServeError::Frame)? {
            Some(Response::Error { message }) => Err(ServeError::Remote(message)),
            Some(response) => Ok(response),
            None => Err(ServeError::Closed),
        }
    }

    fn unexpected(response: Response) -> ServeError {
        ServeError::Unexpected(format!("unexpected response variant: {response:?}"))
    }

    /// Add a schema from SDL text; returns the stored name.
    pub fn add_sdl(&mut self, sdl: &str) -> Result<String, ServeError> {
        match self.roundtrip(&Request::AddSchema { sdl: sdl.to_string() })? {
            Response::Added { name } => Ok(name),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Replace the stored schema with the same name, from SDL text.
    pub fn replace_sdl(&mut self, sdl: &str) -> Result<String, ServeError> {
        match self.roundtrip(&Request::ReplaceSchema { sdl: sdl.to_string() })? {
            Response::Replaced { name } => Ok(name),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Remove the schema stored under `name`.
    pub fn remove(&mut self, name: &str) -> Result<(), ServeError> {
        match self.roundtrip(&Request::RemoveSchema { name: name.to_string() })? {
            Response::Removed { .. } => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Match one stored pair by name. The summary is bit-identical to
    /// an in-process match of the same schemas.
    pub fn match_pair(&mut self, source: &str, target: &str) -> Result<MatchSummary, ServeError> {
        let request = Request::MatchPair { source: source.to_string(), target: target.to_string() };
        match self.roundtrip(&request)? {
            Response::Matched { summary, .. } => Ok(summary),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Index-pruned top-`k` discovery over the daemon's corpus.
    pub fn top_k(&mut self, k: usize) -> Result<TopKListing, ServeError> {
        match self.roundtrip(&Request::TopK { k: k as u32 })? {
            Response::TopKList { names, summaries } => Ok(TopKListing { names, summaries }),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Daemon counters.
    pub fn stats(&mut self) -> Result<StatsReport, ServeError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Persist the daemon's snapshot now; returns its size in bytes.
    pub fn save(&mut self) -> Result<u64, ServeError> {
        match self.roundtrip(&Request::Save)? {
            Response::Saved { bytes } => Ok(bytes),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Ask the daemon to shut down (it saves a dirty repository on the
    /// way out).
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }
}
