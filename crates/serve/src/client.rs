//! The daemon's client library: blocking connections, batched frames,
//! and a checkout/checkin connection pool.
//!
//! A [`ServeClient`] is deliberately thin — it owns a single stream and
//! runs the protocol synchronously, so "N concurrent clients" is N
//! `ServeClient`s on N threads, which is exactly how the integration
//! suite and the throughput bench drive the daemon. Three layers sit
//! on top of that core:
//!
//! * **Timeouts** — [`ClientBuilder`] dials with a connect timeout and
//!   arms a read timeout on the socket, so a hung daemon surfaces as a
//!   loud [`cupid_model::FrameError::Io`] instead of parking the client
//!   thread forever.
//! * **Batching** — [`ServeClient::batch`] ships a worklist of
//!   match/top-k/stats requests in one frame
//!   ([`crate::protocol::Request::Batch`]); the daemon executes it
//!   under one read-lock acquisition and one memo clone, which is
//!   where the ≥3× unary throughput win comes from. Each entry carries
//!   its own status, so one bad entry fails alone.
//! * **Pooling** — [`ServePool`] hands out connections with
//!   checkout/checkin semantics: capped size, lazy dial, and eviction
//!   of connections whose transport broke mid-exchange (tracked by the
//!   client's poison flag — a framing error desynchronizes the stream
//!   beyond recovery, so the pool drops it and dials fresh).
//! * **Retries** — a [`RetryPolicy`] on the builder makes the client
//!   transparently reconnect and resend when an exchange fails with a
//!   *retryable* error ([`ServeError::is_retryable`]): reads are safe
//!   to repeat trivially, and mutations are sent as
//!   [`Request::Mutate`] frames carrying client-assigned request ids
//!   the daemon deduplicates, so a retried mutation whose ack was lost
//!   cannot double-apply (DESIGN.md §12.3).

use std::hash::{BuildHasher, Hasher};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use cupid_core::{MatchSummary, PairExplanation};

use crate::protocol::{BatchItem, BatchOutcome, MutationOp, Request, Response, StatsReport};
use crate::retry::{splitmix64, RetryPolicy};
use crate::trace::TraceRecord;
use crate::ServeError;

/// A connected daemon client.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    /// Set when the transport broke (frame error, timeout, peer close
    /// mid-exchange): the stream may be desynchronized, so the client
    /// refuses further exchanges (without a retry policy) and its pool
    /// evicts it on checkin. With a retry policy, the next call
    /// reconnects instead.
    poisoned: bool,
    /// The peer we connected to — kept so a retrying client can redial
    /// after a transport failure without re-resolving.
    peer: SocketAddr,
    /// The options we dialed with, reused verbatim on reconnect.
    builder: ClientBuilder,
    /// Next mutation request id. Seeded per-client from OS randomness
    /// (a fresh `RandomState`) so two clients cannot collide in the
    /// daemon's replay table; within a client, ids increment.
    next_request_id: u64,
}

/// Connection options for [`ServeClient`]: dial and read deadlines,
/// plus an optional retry policy. `ServeClient::connect` uses the
/// defaults (no timeouts, no retries — the integration suite's daemons
/// answer or die); services fronting a shared daemon should set all
/// three.
#[derive(Debug, Clone, Default)]
pub struct ClientBuilder {
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
    retry: Option<RetryPolicy>,
}

impl ClientBuilder {
    /// No timeouts (block until the OS gives up), no retries.
    pub fn new() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Fail `connect` after this long per resolved address.
    pub fn connect_timeout(mut self, timeout: Duration) -> ClientBuilder {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Fail a read (and poison the connection) once the daemon has
    /// been silent this long mid-exchange. Surfaces as
    /// [`ServeError::DeadlineExceeded`].
    pub fn read_timeout(mut self, timeout: Duration) -> ClientBuilder {
        self.read_timeout = Some(timeout);
        self
    }

    /// Transparently retry retryable failures under `policy`
    /// (reconnecting first when the transport broke). Only requests
    /// that are safe to repeat are retried — see
    /// [`ServeClient`]'s module docs.
    pub fn retry(mut self, policy: RetryPolicy) -> ClientBuilder {
        self.retry = Some(policy);
        self
    }

    /// Connect to a running daemon with these options.
    pub fn connect(&self, addr: impl ToSocketAddrs) -> Result<ServeClient, ServeError> {
        let io_err = |e: &dyn std::fmt::Display| ServeError::Io {
            context: "connect".into(),
            message: e.to_string(),
        };
        let stream = match self.connect_timeout {
            None => TcpStream::connect(&addr).map_err(|e| io_err(&e))?,
            Some(timeout) => {
                // `TcpStream::connect_timeout` wants one resolved
                // address; try each in resolution order, keeping the
                // last error for the report.
                let addrs = addr.to_socket_addrs().map_err(|e| io_err(&e))?;
                let mut last: Option<std::io::Error> = None;
                let mut connected = None;
                for a in addrs {
                    match TcpStream::connect_timeout(&a, timeout) {
                        Ok(s) => {
                            connected = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                connected.ok_or_else(|| ServeError::Io {
                    context: "connect".into(),
                    message: last
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "address resolved to nothing".into()),
                })?
            }
        };
        let peer = stream.peer_addr().map_err(|e| io_err(&e))?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(self.read_timeout).map_err(|e| io_err(&e))?;
        stream.set_write_timeout(self.read_timeout).map_err(|e| io_err(&e))?;
        Ok(ServeClient {
            stream,
            poisoned: false,
            peer,
            builder: self.clone(),
            next_request_id: random_id_base(),
        })
    }
}

/// A per-client random starting point for mutation request ids, drawn
/// from the OS-seeded `RandomState` (no `rand` dependency in the
/// non-dev tree). Collisions between two clients would require both
/// the 64-bit bases *and* the offsets to align — vanishingly unlikely
/// within the daemon's 4096-entry replay window.
fn random_id_base() -> u64 {
    std::collections::hash_map::RandomState::new().build_hasher().finish()
}

/// The result of a top-`k` discovery request: the executed candidate
/// pairs plus the daemon's name table for rendering summary ids.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKListing {
    /// Schema names, in repository order.
    pub names: Vec<String>,
    /// Executed candidate pairs' summaries, in `(i, j)` index order.
    pub summaries: Vec<MatchSummary>,
}

impl ServeClient {
    /// Connect to a running daemon with default options (no timeouts);
    /// see [`ClientBuilder`] for deadlines.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient, ServeError> {
        ClientBuilder::new().connect(addr)
    }

    /// True once the transport broke mid-exchange: the stream may hold
    /// half a frame, so the client is unusable (absent a retry policy)
    /// and a pool evicts it.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// One request/response exchange on the current stream. Transport
    /// failures (frame corruption, timeout, peer close) poison the
    /// client; [`ServeError::Remote`] and [`ServeError::Overloaded`]
    /// answers do not — the protocol stays in sync across an
    /// application-level refusal.
    fn roundtrip(&mut self, request: &Request) -> Result<Response, ServeError> {
        if self.poisoned {
            return Err(ServeError::Poisoned);
        }
        let result = (|| {
            request.write_to(&mut self.stream).map_err(ServeError::Frame)?;
            match Response::read_from(&mut self.stream).map_err(ServeError::Frame)? {
                Some(Response::Error { message }) => Err(ServeError::Remote(message)),
                Some(Response::Overloaded { max_inflight, queue_deadline_ms }) => {
                    Err(ServeError::Overloaded { max_inflight, queue_deadline_ms })
                }
                Some(response) => Ok(response),
                None => Err(ServeError::Closed),
            }
        })();
        match result {
            Err(ServeError::Frame(e)) if frame_timed_out(&e) => {
                // The stream may hold half a frame — desynchronized
                // either way — but the *cause* is the deadline, and
                // that's what callers and the retry loop branch on.
                self.poisoned = true;
                Err(ServeError::DeadlineExceeded)
            }
            Err(e @ (ServeError::Frame(_) | ServeError::Io { .. } | ServeError::Closed)) => {
                self.poisoned = true;
                Err(e)
            }
            other => other,
        }
    }

    /// One logical exchange: [`ServeClient::roundtrip`] wrapped in the
    /// builder's [`RetryPolicy`], when one is set and `request` is safe
    /// to resend. Before each retry the client sleeps the policy's
    /// backoff delay and, if the transport broke, redials the same
    /// peer. Non-retryable errors and exhausted budgets surface the
    /// *last* error.
    fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        let Some(policy) = self.builder.retry.clone() else {
            return self.roundtrip(request);
        };
        if !retryable_request(request) {
            return self.roundtrip(request);
        }
        let mut attempt = 0u32;
        loop {
            let result = match self.reconnect_if_poisoned() {
                Ok(()) => self.roundtrip(request),
                Err(e) => Err(e),
            };
            match result {
                Ok(response) => return Ok(response),
                Err(e) if e.is_retryable() && attempt < policy.budget => {
                    std::thread::sleep(policy.delay(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Redial the original peer with the original options after a
    /// transport failure, swapping the broken stream for a fresh one.
    /// Mutation ids are *not* reset — the replay table keys on them.
    fn reconnect_if_poisoned(&mut self) -> Result<(), ServeError> {
        if !self.poisoned {
            return Ok(());
        }
        let fresh = self.builder.connect(self.peer)?;
        self.stream = fresh.stream;
        self.poisoned = false;
        Ok(())
    }

    fn unexpected(response: Response) -> ServeError {
        ServeError::Unexpected(format!("unexpected response variant: {response:?}"))
    }

    /// The next client-assigned mutation request id (random base,
    /// sequential offsets — see [`random_id_base`]).
    fn next_request_id(&mut self) -> u64 {
        let id = self.next_request_id;
        self.next_request_id = self.next_request_id.wrapping_add(1);
        id
    }

    /// Add a schema from SDL text; returns the stored name.
    pub fn add_sdl(&mut self, sdl: &str) -> Result<String, ServeError> {
        let request = Request::Mutate {
            request_id: self.next_request_id(),
            op: MutationOp::Add { sdl: sdl.to_string() },
        };
        match self.call(&request)? {
            Response::Added { name } => Ok(name),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Replace the stored schema with the same name, from SDL text.
    pub fn replace_sdl(&mut self, sdl: &str) -> Result<String, ServeError> {
        let request = Request::Mutate {
            request_id: self.next_request_id(),
            op: MutationOp::Replace { sdl: sdl.to_string() },
        };
        match self.call(&request)? {
            Response::Replaced { name } => Ok(name),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Remove the schema stored under `name`.
    pub fn remove(&mut self, name: &str) -> Result<(), ServeError> {
        let request = Request::Mutate {
            request_id: self.next_request_id(),
            op: MutationOp::Remove { name: name.to_string() },
        };
        match self.call(&request)? {
            Response::Removed { .. } => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Match one stored pair by name. The summary is bit-identical to
    /// an in-process match of the same schemas.
    pub fn match_pair(&mut self, source: &str, target: &str) -> Result<MatchSummary, ServeError> {
        let request = Request::MatchPair { source: source.to_string(), target: target.to_string() };
        match self.call(&request)? {
            Response::Matched { summary, .. } => Ok(summary),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Ship a worklist of requests in one batch frame; the daemon
    /// executes it under one read-lock acquisition. Entries come back
    /// in worklist order, each with its own status — one bad entry
    /// (unknown schema name) fails alone. The transport-level `Err` is
    /// reserved for the whole exchange failing.
    pub fn batch(
        &mut self,
        items: Vec<BatchItem>,
    ) -> Result<Vec<Result<BatchOutcome, String>>, ServeError> {
        let sent = items.len();
        match self.call(&Request::Batch { items })? {
            Response::Batch { entries } if entries.len() == sent => Ok(entries),
            Response::Batch { entries } => Err(ServeError::Unexpected(format!(
                "batch answered {} entries for {sent} requests",
                entries.len()
            ))),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Match many stored pairs in one batched round-trip — the
    /// high-throughput form of [`ServeClient::match_pair`]. Summaries
    /// are bit-identical to unary calls; per-entry errors (unknown
    /// names) come back in-slot.
    pub fn match_pairs<S: AsRef<str>, T: AsRef<str>>(
        &mut self,
        pairs: &[(S, T)],
    ) -> Result<Vec<Result<MatchSummary, String>>, ServeError> {
        let items = pairs
            .iter()
            .map(|(s, t)| BatchItem::MatchPair {
                source: s.as_ref().to_string(),
                target: t.as_ref().to_string(),
            })
            .collect();
        self.batch(items)?
            .into_iter()
            .map(|entry| match entry {
                Ok(BatchOutcome::Matched { summary, .. }) => Ok(Ok(summary)),
                Err(message) => Ok(Err(message)),
                Ok(other) => {
                    Err(ServeError::Unexpected(format!("unexpected batch outcome: {other:?}")))
                }
            })
            .collect()
    }

    /// Run several top-`k` discovery probes in one batched round-trip.
    pub fn top_k_many(
        &mut self,
        ks: &[usize],
    ) -> Result<Vec<Result<TopKListing, String>>, ServeError> {
        let items = ks.iter().map(|&k| BatchItem::TopK { k: k as u32 }).collect();
        self.batch(items)?
            .into_iter()
            .map(|entry| match entry {
                Ok(BatchOutcome::TopKList { names, summaries }) => {
                    Ok(Ok(TopKListing { names, summaries }))
                }
                Err(message) => Ok(Err(message)),
                Ok(other) => {
                    Err(ServeError::Unexpected(format!("unexpected batch outcome: {other:?}")))
                }
            })
            .collect()
    }

    /// Index-pruned top-`k` discovery over the daemon's corpus.
    pub fn top_k(&mut self, k: usize) -> Result<TopKListing, ServeError> {
        match self.call(&Request::TopK { k: k as u32 })? {
            Response::TopKList { names, summaries } => Ok(TopKListing { names, summaries }),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Daemon counters.
    pub fn stats(&mut self) -> Result<StatsReport, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Per-mapping score provenance for one stored pair (DESIGN.md
    /// §14): the lsim/ssim/wsim breakdown, top contributing token
    /// pairs, and the structural context behind every kept mapping.
    /// Every mapping in the answer recomposes to its reported `wsim`
    /// bit-exactly.
    pub fn explain(&mut self, source: &str, target: &str) -> Result<PairExplanation, ServeError> {
        let request = Request::Explain { source: source.to_string(), target: target.to_string() };
        match self.call(&request)? {
            Response::Explanation(explanation) => Ok(explanation),
            other => Err(Self::unexpected(other)),
        }
    }

    /// The daemon's slow-log ring: its slowest retained request traces,
    /// slowest first, each with a full per-stage breakdown.
    pub fn slow_log(&mut self) -> Result<Vec<TraceRecord>, ServeError> {
        match self.call(&Request::SlowLog)? {
            Response::SlowLog { entries } => Ok(entries),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Persist the daemon's snapshot now; returns its size in bytes.
    pub fn save(&mut self) -> Result<u64, ServeError> {
        match self.call(&Request::Save)? {
            Response::Saved { bytes } => Ok(bytes),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Ask the daemon to shut down (it saves a dirty repository on the
    /// way out).
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }
}

/// Did this frame error come from the socket's read/write deadline
/// expiring? Unix reports `WouldBlock` for a timed-out blocking
/// socket, Windows `TimedOut` — std documents the pair.
fn frame_timed_out(e: &cupid_model::FrameError) -> bool {
    matches!(
        e,
        cupid_model::FrameError::Io(io) if matches!(
            io.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        )
    )
}

/// Is this request safe to send twice? Reads trivially ([`BatchItem`]
/// only has read variants, so whole batches qualify); `Save` because
/// saving twice persists the same state; [`Request::Mutate`] because
/// its request id replays daemon-side instead of re-executing. The
/// legacy id-less mutation kinds and `Shutdown` are never resent.
fn retryable_request(request: &Request) -> bool {
    matches!(
        request,
        Request::MatchPair { .. }
            | Request::TopK { .. }
            | Request::Stats
            | Request::SlowLog
            | Request::Explain { .. }
            | Request::Batch { .. }
            | Request::Save
            | Request::Mutate { .. }
    )
}

/// Pool bookkeeping: parked connections plus the count of live ones
/// (parked + checked out), which the cap bounds.
struct PoolState {
    idle: Vec<ServeClient>,
    live: usize,
}

struct PoolInner {
    addr: String,
    cap: usize,
    builder: ClientBuilder,
    /// Dial counter: the n-th dialed connection reseeds the builder's
    /// retry policy with `splitmix64(seed ^ n)` so pooled clients
    /// back off on decorrelated schedules (no thundering herd after a
    /// shared fault) while the whole pool stays deterministic for a
    /// fixed seed and dial order.
    dials: AtomicU64,
    state: Mutex<PoolState>,
    available: Condvar,
}

impl PoolInner {
    /// The builder for the next fresh dial, retry seed decorrelated.
    fn dial_builder(&self) -> ClientBuilder {
        let mut builder = self.builder.clone();
        if let Some(policy) = &mut builder.retry {
            let n = self.dials.fetch_add(1, Ordering::Relaxed);
            policy.seed = splitmix64(policy.seed ^ n);
        }
        builder
    }
}

/// A capped checkout/checkin pool of daemon connections.
///
/// Connections are dialed lazily — the pool starts empty and grows on
/// demand up to its cap; a checkout over the cap parks until a checkin.
/// Checkin is [`PooledClient`]'s `Drop`: a healthy connection goes back
/// to the idle list, a poisoned one (transport broke mid-exchange) is
/// evicted so the next checkout dials fresh. Clone the pool to share it
/// across client threads — clones are handles to one pool.
#[derive(Clone)]
pub struct ServePool {
    inner: Arc<PoolInner>,
}

impl ServePool {
    /// A pool of at most `cap` connections to `addr` (dialed with
    /// default [`ClientBuilder`] options; see
    /// [`ServePool::with_builder`] for timeouts).
    pub fn new(addr: impl Into<String>, cap: usize) -> ServePool {
        ServePool::with_builder(addr, cap, ClientBuilder::new())
    }

    /// A pool whose connections are dialed with `builder`'s timeouts
    /// and retry policy. When the builder carries a [`RetryPolicy`],
    /// each dialed connection gets a decorrelated seed (the policy's
    /// seed mixed with the pool's dial counter) so simultaneous
    /// redials don't share a backoff schedule.
    pub fn with_builder(addr: impl Into<String>, cap: usize, builder: ClientBuilder) -> ServePool {
        ServePool {
            inner: Arc::new(PoolInner {
                addr: addr.into(),
                cap: cap.max(1),
                builder,
                dials: AtomicU64::new(0),
                state: Mutex::new(PoolState { idle: Vec::new(), live: 0 }),
                available: Condvar::new(),
            }),
        }
    }

    /// A pool whose connections transparently retry under `policy`
    /// (with per-connection decorrelated jitter seeds).
    pub fn with_retry(addr: impl Into<String>, cap: usize, policy: RetryPolicy) -> ServePool {
        ServePool::with_builder(addr, cap, ClientBuilder::new().retry(policy))
    }

    /// Check a connection out: an idle one if parked, a fresh dial if
    /// under the cap, otherwise block until a checkin. The returned
    /// guard derefs to [`ServeClient`] and checks itself back in on
    /// drop.
    pub fn checkout(&self) -> Result<PooledClient, ServeError> {
        let inner = &self.inner;
        let mut state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(client) = state.idle.pop() {
                return Ok(PooledClient { client: Some(client), pool: Arc::clone(inner) });
            }
            if state.live < inner.cap {
                // Reserve the slot before dialing so concurrent
                // checkouts cannot overshoot the cap, and dial outside
                // the lock so a slow connect doesn't stall checkins.
                state.live += 1;
                drop(state);
                return match inner.dial_builder().connect(inner.addr.as_str()) {
                    Ok(client) => {
                        Ok(PooledClient { client: Some(client), pool: Arc::clone(inner) })
                    }
                    Err(e) => {
                        let mut state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
                        state.live -= 1;
                        drop(state);
                        inner.available.notify_one();
                        Err(e)
                    }
                };
            }
            state = inner.available.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Connections currently parked in the pool (diagnostics/tests).
    pub fn idle(&self) -> usize {
        self.inner.state.lock().unwrap_or_else(|e| e.into_inner()).idle.len()
    }

    /// Live connections — parked plus checked out (diagnostics/tests).
    pub fn live(&self) -> usize {
        self.inner.state.lock().unwrap_or_else(|e| e.into_inner()).live
    }
}

/// A checked-out pool connection: derefs to [`ServeClient`], checks
/// itself back in on drop (eviction instead if the transport broke).
pub struct PooledClient {
    client: Option<ServeClient>,
    pool: Arc<PoolInner>,
}

impl Deref for PooledClient {
    type Target = ServeClient;
    fn deref(&self) -> &ServeClient {
        self.client.as_ref().expect("client present until drop")
    }
}

impl DerefMut for PooledClient {
    fn deref_mut(&mut self) -> &mut ServeClient {
        self.client.as_mut().expect("client present until drop")
    }
}

impl Drop for PooledClient {
    fn drop(&mut self) {
        let client = self.client.take().expect("client present until drop");
        let mut state = self.pool.state.lock().unwrap_or_else(|e| e.into_inner());
        if client.is_poisoned() {
            // The stream may hold half a frame; handing it to the next
            // checkout would fail every exchange. Drop the connection
            // and free its cap slot.
            state.live -= 1;
        } else {
            state.idle.push(client);
        }
        drop(state);
        self.pool.available.notify_one();
    }
}
