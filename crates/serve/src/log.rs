//! Structured, leveled, rate-limited daemon logging (DESIGN.md §13.4).
//!
//! The daemon used to talk to its operator through scattered
//! `eprintln!` calls — unparseable, unleveled, and able to flood stderr
//! when a fault repeats per request. Every daemon-side stderr path now
//! routes through one [`Logger`] that emits **one JSON object per
//! line**: a fixed envelope (`ts_ms`, `level`, `event`) plus free-form
//! string fields (`trace_id` where a request is in scope), so `jq` and
//! log shippers read the stream without a grammar.
//!
//! Rate limiting is per *event name*, token-bucket shaped: each event
//! may burst `BURST` (5) lines, refilling one line per second. Suppressed
//! lines are counted, and the count is attached to the next emitted
//! line of that event (`"suppressed_prior"`), so a repeating fault
//! shows up loudly once per second with an honest tally instead of
//! either flooding stderr or vanishing.
//!
//! The logger is deliberately std-only and synchronous — a line is one
//! formatted `String` and one locked `writeln!`, which at the daemon's
//! logging volume (operational events, not per-request chatter) costs
//! nothing measurable.

use std::collections::HashMap;
use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

use crate::trace::unix_ms;

/// Log severity, lowest first. [`Level::Off`] silences everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Per-connection noise (idle disconnects, refused peers).
    Debug,
    /// Lifecycle events (listening, drain, save).
    Info,
    /// Degraded but serving (fsync failure, deadline cuts, sheds).
    Warn,
    /// The daemon cannot do what it was asked.
    Error,
    /// No output at all.
    Off,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
            Level::Off => "off",
        }
    }

    /// Parse a CLI level name.
    pub fn parse(s: &str) -> Option<Level> {
        Some(match s {
            "debug" => Level::Debug,
            "info" => Level::Info,
            "warn" => Level::Warn,
            "error" => Level::Error,
            "off" => Level::Off,
            _ => return None,
        })
    }
}

/// Lines each event may emit back-to-back before rate limiting bites.
const BURST: u32 = 5;
/// Refill interval: one token per event per second.
const REFILL_MS: u64 = 1_000;

/// Per-event token bucket.
struct Bucket {
    tokens: u32,
    last_refill: Instant,
    suppressed: u64,
}

/// A leveled, rate-limited JSON-lines logger. Cheap to share: one
/// mutex around the bucket map and the sink, taken only when a line is
/// actually considered (level-filtered events don't lock).
pub struct Logger {
    min_level: Level,
    state: Mutex<LoggerState>,
}

struct LoggerState {
    buckets: HashMap<String, Bucket>,
    /// Test seam: `None` writes to stderr.
    sink: Option<Vec<u8>>,
}

impl Logger {
    /// A logger emitting `min_level` and up to stderr.
    pub fn new(min_level: Level) -> Logger {
        Logger { min_level, state: Mutex::new(LoggerState { buckets: HashMap::new(), sink: None }) }
    }

    /// A logger capturing lines in memory instead of stderr (tests).
    #[cfg(test)]
    fn captured(min_level: Level) -> Logger {
        Logger {
            min_level,
            state: Mutex::new(LoggerState { buckets: HashMap::new(), sink: Some(Vec::new()) }),
        }
    }

    #[cfg(test)]
    fn captured_lines(&self) -> Vec<String> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let bytes = state.sink.clone().unwrap_or_default();
        String::from_utf8_lossy(&bytes).lines().map(str::to_string).collect()
    }

    /// The configured minimum level.
    pub fn min_level(&self) -> Level {
        self.min_level
    }

    /// Emit one structured line. `event` is the stable machine-readable
    /// name (snake_case) rate limiting keys on; `fields` are extra
    /// key/value pairs, JSON-escaped. Returns whether the line was
    /// written (false: level-filtered or rate-limited).
    pub fn log(&self, level: Level, event: &str, fields: &[(&str, &str)]) -> bool {
        if level < self.min_level || self.min_level == Level::Off || level == Level::Off {
            return false;
        }
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        let bucket = state.buckets.entry(event.to_string()).or_insert(Bucket {
            tokens: BURST,
            last_refill: now,
            suppressed: 0,
        });
        // Refill whole tokens for elapsed seconds, capping at the burst.
        let elapsed_ms = now.duration_since(bucket.last_refill).as_millis() as u64;
        let refill = (elapsed_ms / REFILL_MS) as u32;
        if refill > 0 {
            bucket.tokens = (bucket.tokens + refill).min(BURST);
            bucket.last_refill = now;
        }
        if bucket.tokens == 0 {
            bucket.suppressed += 1;
            return false;
        }
        bucket.tokens -= 1;
        let suppressed = std::mem::take(&mut bucket.suppressed);

        let mut line = String::with_capacity(96);
        line.push_str("{\"ts_ms\":");
        line.push_str(&unix_ms().to_string());
        line.push_str(",\"level\":\"");
        line.push_str(level.name());
        line.push_str("\",\"event\":\"");
        escape_into(&mut line, event);
        line.push('"');
        for (key, value) in fields {
            line.push_str(",\"");
            escape_into(&mut line, key);
            line.push_str("\":\"");
            escape_into(&mut line, value);
            line.push('"');
        }
        if suppressed > 0 {
            line.push_str(",\"suppressed_prior\":");
            line.push_str(&suppressed.to_string());
        }
        line.push('}');
        match &mut state.sink {
            Some(buf) => {
                buf.extend_from_slice(line.as_bytes());
                buf.push(b'\n');
            }
            None => {
                let stderr = std::io::stderr();
                let mut handle = stderr.lock();
                writeln!(handle, "{line}").ok();
            }
        }
        true
    }

    /// [`Level::Debug`] convenience.
    pub fn debug(&self, event: &str, fields: &[(&str, &str)]) -> bool {
        self.log(Level::Debug, event, fields)
    }

    /// [`Level::Info`] convenience.
    pub fn info(&self, event: &str, fields: &[(&str, &str)]) -> bool {
        self.log(Level::Info, event, fields)
    }

    /// [`Level::Warn`] convenience.
    pub fn warn(&self, event: &str, fields: &[(&str, &str)]) -> bool {
        self.log(Level::Warn, event, fields)
    }

    /// [`Level::Error`] convenience.
    pub fn error(&self, event: &str, fields: &[(&str, &str)]) -> bool {
        self.log(Level::Error, event, fields)
    }
}

/// Append `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_filter() {
        let log = Logger::captured(Level::Warn);
        assert!(!log.info("quiet", &[]));
        assert!(log.warn("loud", &[]));
        assert!(log.error("louder", &[]));
        assert_eq!(log.captured_lines().len(), 2);
        let off = Logger::captured(Level::Off);
        assert!(!off.error("silenced", &[]));
        assert!(off.captured_lines().is_empty());
    }

    #[test]
    fn lines_are_json_with_envelope_and_fields() {
        let log = Logger::captured(Level::Debug);
        log.warn("journal_fsync_failed", &[("err", "disk \"full\"\n"), ("trace_id", "42")]);
        let lines = log.captured_lines();
        assert_eq!(lines.len(), 1);
        let line = &lines[0];
        assert!(line.starts_with("{\"ts_ms\":"), "envelope first: {line}");
        assert!(line.contains("\"level\":\"warn\""));
        assert!(line.contains("\"event\":\"journal_fsync_failed\""));
        assert!(line.contains("\"err\":\"disk \\\"full\\\"\\n\""), "escaped: {line}");
        assert!(line.contains("\"trace_id\":\"42\""));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn repeating_event_is_rate_limited_with_a_tally() {
        let log = Logger::captured(Level::Debug);
        let mut written = 0;
        for _ in 0..50 {
            if log.warn("flood", &[]) {
                written += 1;
            }
        }
        assert_eq!(written, BURST as usize, "only the burst goes through");
        // A different event has its own bucket.
        assert!(log.warn("other", &[]));
        // Wait out a refill token; the tally of suppressed lines rides
        // along on the next emitted line.
        std::thread::sleep(std::time::Duration::from_millis(REFILL_MS + 100));
        assert!(log.warn("flood", &[]));
        let last = log.captured_lines().into_iter().last().unwrap();
        assert!(
            last.contains(&format!("\"suppressed_prior\":{}", 50 - BURST)),
            "tally rides the resume line: {last}"
        );
    }
}
