//! # cupid-serve — the long-running match daemon (DESIGN.md §9)
//!
//! The paper frames Cupid as a reusable component inside a larger
//! data-integration system, and the interactive workloads that matter
//! at corpus scale — dataset discovery (query schema in, top-k
//! candidates out), rule-driven matching pipelines — assume a
//! *resident* matcher: prepared schemas, the interned token table, the
//! similarity memo and the pair-summary cache all hot in memory,
//! invoked repeatedly at low latency. Until this crate, every workload
//! was a one-shot process over [`cupid_repo::Repository`], paying
//! snapshot load per invocation.
//!
//! `cupid-serve` is that resident half:
//!
//! * **[`Server`]** — a daemon owning one repository-backed session,
//!   serving concurrent clients over std-only TCP (no async runtime in
//!   this offline workspace): the accept loop spawns a scoped worker
//!   thread per connection, capped by
//!   [`ServeOptions::max_connections`]; reads run concurrently under
//!   an `RwLock`, uncached matches execute under the *read* lock over
//!   memo clones, and only cache publication and schema mutations
//!   serialize through the writer.
//! * **[`protocol`]** — a length-prefixed, checksummed binary protocol
//!   over [`cupid_model::wire`] frames: `AddSchema`/`ReplaceSchema`/
//!   `RemoveSchema` (SDL payloads, incremental re-match underneath),
//!   `MatchPair`, `TopK` discovery, `Stats`, `Save`, `Shutdown`.
//! * **[`ServeClient`]** — the blocking client library the CLI, the
//!   tests, the bench and the example all drive the daemon with, with
//!   connect/read timeouts via [`ClientBuilder`] and transport-error
//!   poisoning (a desynchronized stream refuses reuse).
//! * **Batch frames** (DESIGN.md §11) — one checksummed frame carries
//!   a worklist of [`BatchItem`]s, answered under a single read lock
//!   with one warm memo clone; each entry succeeds or fails alone.
//!   [`ServePool`] adds a capped, lazily dialed connection pool whose
//!   checkin evicts poisoned connections, and
//!   [`ServeClient::match_pairs`] / [`ServeClient::top_k_many`] wrap
//!   the common worklists.
//! * **Latency histograms** ([`histogram`]) — fixed-bucket log2
//!   histograms per request kind, snapshotted into the `Stats` frame
//!   as [`KindLatency`] with p50/p99/p999 on the reading side.
//!
//! Responses are bit-identical to direct in-process calls — the wire
//! format ships `f64`s by bit pattern, and pair execution is a pure
//! function of schema content — which `tests/serve_daemon.rs` proves
//! with N concurrent clients against a [`cupid_core::MatchSession`],
//! batched against unary included.
//!
//! ## Quick start
//!
//! ```
//! use cupid_core::Cupid;
//! use cupid_lexical::Thesaurus;
//! use cupid_serve::{CupidServeExt, ServeClient, ServePool};
//!
//! let dir = std::env::temp_dir().join(format!("cupid-serve-doc-{}", std::process::id()));
//! let cupid = Cupid::new(Thesaurus::parse("abbrev Qty = quantity").unwrap());
//! // Port 0: the OS assigns a free port; read it back before running.
//! let server = cupid.serve("127.0.0.1:0", &dir).unwrap();
//! let addr = server.local_addr();
//! std::thread::scope(|scope| {
//!     scope.spawn(move || server.run().unwrap());
//!     let mut client = ServeClient::connect(addr).unwrap();
//!     client.add_sdl("schema PO\n  element Item\n    attr Qty : int\n").unwrap();
//!     client.add_sdl("schema Order\n  element Item\n    attr Quantity : int\n").unwrap();
//!     let summary = client.match_pair("PO", "Order").unwrap();
//!     assert!(summary.has_leaf_mapping("PO.Item.Qty", "Order.Item.Quantity"));
//!     // Worklists go out as ONE batch frame, through a pooled client.
//!     let pool = ServePool::new(addr.to_string(), 2);
//!     let entries = pool.checkout().unwrap()
//!         .match_pairs(&[("PO", "Order"), ("Order", "PO")]).unwrap();
//!     assert!(entries.iter().all(|e| e.is_ok()));
//!     client.shutdown().unwrap();
//! });
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::net::ToSocketAddrs;
use std::path::Path;

use cupid_core::Cupid;
use cupid_model::FrameError;
use cupid_repo::RepoError;

pub mod chaos;
mod client;
mod daemon;
pub mod histogram;
pub mod log;
pub mod metrics;
pub mod protocol;
mod retry;
pub mod trace;

pub use client::{ClientBuilder, PooledClient, ServeClient, ServePool, TopKListing};
pub use daemon::{ServeOptions, Server, ShutdownHandle};
pub use histogram::{KindLatency, LatencyHistogram, LATENCY_BUCKETS};
pub use log::{Level, Logger};
pub use metrics::render_prometheus;
pub use protocol::{BatchItem, BatchOutcome, MutationOp, Request, Response, StatsReport};
pub use retry::RetryPolicy;
pub use trace::{RequestTrace, SlowLog, Stage, TraceRecord, STAGES, STAGE_NAMES};

/// Errors of the daemon subsystem (server, client, CLI).
#[derive(Debug)]
pub enum ServeError {
    /// A socket operation failed.
    Io {
        /// What was being attempted.
        context: String,
        /// The underlying error.
        message: String,
    },
    /// A frame could not be read or written (stream died, or the bytes
    /// on it are corrupt — the connection cannot continue).
    Frame(FrameError),
    /// The repository layer failed (snapshot I/O, lock held, …).
    Repo(RepoError),
    /// The daemon shed the request under admission control: its
    /// in-flight cap (`max_inflight`) stayed full past the queue
    /// deadline. Retryable — backing off is exactly what the daemon is
    /// asking for.
    Overloaded {
        /// The daemon's in-flight request cap.
        max_inflight: u64,
        /// How long the request waited for a slot, in milliseconds.
        queue_deadline_ms: u64,
    },
    /// An exchange did not complete within the configured deadline
    /// (connect, read, or write timeout) — including after exhausting
    /// the retry budget on timeouts.
    DeadlineExceeded,
    /// The connection desynchronized on an earlier transport error and
    /// refuses reuse; reconnect (or check a fresh client out of the
    /// pool) to continue.
    Poisoned,
    /// The daemon answered with an error response; the connection
    /// remains usable.
    Remote(String),
    /// The daemon answered with a well-formed response of the wrong
    /// variant — a protocol bug, not a user error.
    Unexpected(String),
    /// The daemon closed the connection before answering.
    Closed,
}

impl ServeError {
    /// Whether a retry can succeed where this error failed: the fault
    /// is transient (overload, deadline, transport) rather than a
    /// property of the request itself ([`ServeError::Remote`] — the
    /// daemon executed it and said no) or of the client (`Poisoned`,
    /// `Repo`, protocol bugs). The retry loop in [`ServeClient`]
    /// branches on this instead of parsing message strings.
    pub fn is_retryable(&self) -> bool {
        match self {
            ServeError::Overloaded { .. }
            | ServeError::DeadlineExceeded
            | ServeError::Closed
            | ServeError::Io { .. }
            | ServeError::Frame(_) => true,
            ServeError::Repo(_)
            | ServeError::Poisoned
            | ServeError::Remote(_)
            | ServeError::Unexpected(_) => false,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { context, message } => write!(f, "{context}: {message}"),
            ServeError::Frame(e) => write!(f, "{e}"),
            ServeError::Repo(e) => write!(f, "{e}"),
            ServeError::Overloaded { max_inflight, queue_deadline_ms } => write!(
                f,
                "daemon overloaded: {max_inflight} requests in flight for over \
                 {queue_deadline_ms} ms; retry with backoff"
            ),
            ServeError::DeadlineExceeded => write!(f, "exchange exceeded its deadline"),
            ServeError::Poisoned => {
                write!(f, "connection poisoned by an earlier transport error; reconnect")
            }
            ServeError::Remote(m) => write!(f, "daemon error: {m}"),
            ServeError::Unexpected(m) => write!(f, "{m}"),
            ServeError::Closed => write!(f, "daemon closed the connection mid-exchange"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        ServeError::Frame(e)
    }
}

impl From<RepoError> for ServeError {
    fn from(e: RepoError) -> Self {
        ServeError::Repo(e)
    }
}

/// Extension trait putting `serve()` on the [`Cupid`] facade — the
/// entry point of the daemon subsystem, mirroring how
/// [`cupid_repo::CupidRepositoryExt`] exposes `repository()`.
pub trait CupidServeExt {
    /// Bind a match daemon on `addr` over the repository persisted at
    /// `repo_path` (taking its single-writer lock), with default
    /// options. Call [`Server::run`] on the result to serve.
    fn serve<A: ToSocketAddrs, P: AsRef<Path>>(
        &self,
        addr: A,
        repo_path: P,
    ) -> Result<Server<'_>, ServeError>;
}

impl CupidServeExt for Cupid {
    fn serve<A: ToSocketAddrs, P: AsRef<Path>>(
        &self,
        addr: A,
        repo_path: P,
    ) -> Result<Server<'_>, ServeError> {
        Server::bind(addr, repo_path, self.config(), self.thesaurus(), ServeOptions::default())
    }
}
