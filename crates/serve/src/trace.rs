//! Request-scoped tracing and per-stage latency attribution
//! (DESIGN.md §13).
//!
//! The PR 7 soak measured daemon-side batch p50 at ~0.13 ms while
//! clients observed ~34 ms at 24 clients on one core — and nothing in
//! the system could say where those milliseconds lived. This module is
//! the answer: every request carries a [`RequestTrace`] that attributes
//! its wall time to a fixed taxonomy of pipeline [`Stage`]s (admission
//! wait, frame decode, repository lock wait split read/write, match
//! execution split cached/uncached, response encode, socket write).
//! Traces aggregate into per-(request kind, stage)
//! [`LatencyHistogram`]s ([`StageRecorder`]) served through the `Stats`
//! frame, and the slowest requests land whole in a bounded [`SlowLog`]
//! ring served through the `SlowLog` frame — so a single 4 ms p999
//! outlier is explained post hoc by its own stage breakdown instead of
//! being averaged away.
//!
//! Tracing is attribution *by tiling*: the daemon timestamps stage
//! boundaries it already crosses (one `Instant::now` per boundary, no
//! allocation, no locks until the trace finishes), so the stage sums of
//! a request reconstruct its handler wall time to within the few
//! untimed glue instructions between boundaries — the integration suite
//! asserts ≥ 95% coverage. A daemon started with tracing off
//! ([`RequestTrace::disabled`]) skips the clock reads and records
//! nothing; the compiled-in-but-idle cost is what `benches/obs.rs`
//! bounds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime};

use crate::histogram::{KindLatency, LatencyHistogram};

/// The pipeline stages a request's wall time is attributed to, in wire
/// and display order. The stage set is append-only, like every code
/// the wire format ships: [`TraceRecord::stage_ns`] is indexed by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Waiting for an in-flight slot under admission control
    /// (DESIGN.md §12.2). Zero when admission is off or uncontended.
    AdmissionWait = 0,
    /// Reading and decoding the request frame once its first byte is
    /// visible (the idle wait *before* the first byte is connection
    /// time, not request time).
    Decode = 1,
    /// Blocked acquiring the repository read lock.
    LockWaitRead = 2,
    /// Blocked acquiring the repository write lock (mutations, and the
    /// absorb that publishes shared-path execution results).
    LockWaitWrite = 3,
    /// Handler work answered from resident state: cache lookups, name
    /// resolution, discovery-index walks, stats assembly, and the
    /// splice of executed summaries back into response order.
    ExecCached = 4,
    /// Fresh pair execution ([`cupid_repo::Repository`]'s shared path)
    /// and, for mutations, the mutation body itself — journal append
    /// and cache invalidation included.
    ExecUncached = 5,
    /// Encoding the response frame (payload bytes + checksum).
    Encode = 6,
    /// Writing the encoded frame to the socket.
    SocketWrite = 7,
}

/// Stage labels, indexed by [`Stage`] discriminants — the names the
/// `Stats` frame, the CLI table and the `/metrics` exposition all use.
pub const STAGE_NAMES: [&str; STAGES] = [
    "admission_wait",
    "decode",
    "lock_wait_read",
    "lock_wait_write",
    "exec_cached",
    "exec_uncached",
    "encode",
    "socket_write",
];

/// Number of stages in the taxonomy.
pub const STAGES: usize = 8;

/// One request's stage-attributed timings: a trace id (unique within
/// the daemon run, stamped into slow-log entries and log lines) plus a
/// nanosecond accumulator per [`Stage`]. Cheap to create per request —
/// no allocation, no clock read until the first stage is timed.
#[derive(Debug)]
pub struct RequestTrace {
    /// Daemon-unique id of this request (monotonic per daemon run).
    pub trace_id: u64,
    /// Nanoseconds attributed to each stage, indexed by [`Stage`].
    pub stage_ns: [u64; STAGES],
    enabled: bool,
}

impl RequestTrace {
    /// A live trace with the given id.
    pub fn new(trace_id: u64) -> RequestTrace {
        RequestTrace { trace_id, stage_ns: [0; STAGES], enabled: true }
    }

    /// A disabled trace: timing calls no-op (and [`Timed`] skips its
    /// clock reads), so a daemon run with tracing off pays only the
    /// branch.
    pub fn disabled(trace_id: u64) -> RequestTrace {
        RequestTrace { trace_id, stage_ns: [0; STAGES], enabled: false }
    }

    /// Whether this trace records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Attribute `elapsed` to `stage` (accumulating — a batch that
    /// executes several uncached stretches sums them).
    #[inline]
    pub fn add(&mut self, stage: Stage, elapsed: Duration) {
        if self.enabled {
            self.stage_ns[stage as usize] += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        }
    }

    /// Start timing a stage; [`Timed::stop`] attributes the elapsed
    /// time. Disabled traces skip the clock read.
    #[inline]
    pub fn start(&self, stage: Stage) -> Timed {
        Timed { stage, started: self.enabled.then(Instant::now) }
    }

    /// Attribute everything of `handler_wall` not yet attributed to a
    /// lock-wait or uncached-execution stage to [`Stage::ExecCached`] —
    /// the tiling step that makes per-request stage sums reconstruct
    /// the handler's wall time exactly (resolution, cache lookups and
    /// splicing are interleaved with the timed stretches, so they are
    /// attributed by subtraction instead of by dozens of clock reads).
    pub fn absorb_handler_residual(&mut self, handler_wall: Duration) {
        if !self.enabled {
            return;
        }
        let wall = u64::try_from(handler_wall.as_nanos()).unwrap_or(u64::MAX);
        let attributed = self.stage_ns[Stage::LockWaitRead as usize]
            + self.stage_ns[Stage::LockWaitWrite as usize]
            + self.stage_ns[Stage::ExecUncached as usize];
        self.stage_ns[Stage::ExecCached as usize] += wall.saturating_sub(attributed);
    }

    /// Sum of all attributed stage time, in nanoseconds.
    pub fn attributed_ns(&self) -> u64 {
        self.stage_ns.iter().sum()
    }
}

/// An in-progress stage timing handed out by [`RequestTrace::start`].
#[must_use = "call stop(trace) to attribute the elapsed time"]
pub struct Timed {
    stage: Stage,
    started: Option<Instant>,
}

impl Timed {
    /// Stop the clock and attribute the elapsed time to the stage.
    #[inline]
    pub fn stop(self, trace: &mut RequestTrace) {
        if let Some(started) = self.started {
            trace.stage_ns[self.stage as usize] +=
                u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
    }
}

/// Per-(request kind, stage) histogram matrix: the daemon-side
/// aggregation finished traces record into, snapshotted into the
/// `Stats` frame as one [`KindLatency`] per non-empty (kind, stage)
/// cell labeled `"<kind>/<stage>"`.
pub struct StageRecorder<const KINDS: usize> {
    cells: [[LatencyHistogram; STAGES]; KINDS],
}

impl<const KINDS: usize> StageRecorder<KINDS> {
    /// A zeroed matrix.
    pub fn new() -> Self {
        StageRecorder {
            cells: std::array::from_fn(|_| std::array::from_fn(|_| LatencyHistogram::new())),
        }
    }

    /// Fold a finished trace into the `kind` row. Stages with zero
    /// attributed time are skipped — their counts would say nothing and
    /// their zero samples would drag bucket 0.
    pub fn record(&self, kind: usize, trace: &RequestTrace) {
        if !trace.is_enabled() {
            return;
        }
        for (stage, &ns) in trace.stage_ns.iter().enumerate() {
            if ns > 0 {
                self.cells[kind][stage].record(Duration::from_nanos(ns));
            }
        }
    }

    /// Snapshot every non-empty cell as `"<kind>/<stage>"`, in kind
    /// then stage order.
    pub fn snapshot(&self, kind_names: &[&str; KINDS]) -> Vec<KindLatency> {
        let mut out = Vec::new();
        for (k, row) in self.cells.iter().enumerate() {
            for (s, hist) in row.iter().enumerate() {
                let snap = hist.snapshot(&format!("{}/{}", kind_names[k], STAGE_NAMES[s]));
                if snap.count > 0 {
                    out.push(snap);
                }
            }
        }
        out
    }
}

impl<const KINDS: usize> Default for StageRecorder<KINDS> {
    fn default() -> Self {
        StageRecorder::new()
    }
}

/// One slow request, frozen for post-hoc inspection: identity, shape
/// and the full stage breakdown. This is what the `SlowLog` frame
/// ships, so it lives here rather than in the protocol module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The request's trace id (matches the daemon's log lines).
    pub trace_id: u64,
    /// Request kind label (`"batch"`, `"match_pair"`, …).
    pub kind: String,
    /// Wall time of the whole request, in nanoseconds.
    pub total_ns: u64,
    /// Nanoseconds per stage, indexed like [`STAGE_NAMES`].
    pub stage_ns: Vec<u64>,
    /// When the request finished, as milliseconds since the Unix epoch
    /// (wall-clock, for correlating with external logs).
    pub finished_unix_ms: u64,
}

/// Bounded ring of the slowest requests seen so far: a request slower
/// than the configured threshold is admitted; once the ring is full,
/// a new entry evicts the *fastest* resident entry if the newcomer is
/// slower — so the ring converges on the slowest-N population rather
/// than the most recent N (a burst of mild outliers cannot flush the
/// one catastrophic request an operator is hunting).
pub struct SlowLog {
    threshold_ns: u64,
    capacity: usize,
    entries: Mutex<Vec<TraceRecord>>,
    /// Requests that cleared the threshold (admitted or not) — lets an
    /// operator see how censored the ring is.
    over_threshold: AtomicU64,
}

impl SlowLog {
    /// A ring keeping at most `capacity` traces of requests slower than
    /// `threshold`. A zero capacity disables recording entirely.
    pub fn new(capacity: usize, threshold: Duration) -> SlowLog {
        SlowLog {
            threshold_ns: u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX),
            capacity,
            entries: Mutex::new(Vec::new()),
            over_threshold: AtomicU64::new(0),
        }
    }

    /// The admission threshold, in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Requests that ran slower than the threshold since the daemon
    /// started (admitted to the ring or not).
    pub fn over_threshold(&self) -> u64 {
        self.over_threshold.load(Ordering::Relaxed)
    }

    /// Offer a finished trace. Fast path (under threshold, or capacity
    /// zero) takes no lock.
    pub fn offer(&self, trace: &RequestTrace, kind: &str, total: Duration) {
        let total_ns = u64::try_from(total.as_nanos()).unwrap_or(u64::MAX);
        if total_ns < self.threshold_ns {
            return;
        }
        self.over_threshold.fetch_add(1, Ordering::Relaxed);
        if self.capacity == 0 {
            return;
        }
        let record = TraceRecord {
            trace_id: trace.trace_id,
            kind: kind.to_string(),
            total_ns,
            stage_ns: trace.stage_ns.to_vec(),
            finished_unix_ms: unix_ms(),
        };
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if entries.len() < self.capacity {
            entries.push(record);
            return;
        }
        // Full: replace the fastest resident entry iff we're slower.
        if let Some((slot, fastest)) = entries.iter().enumerate().min_by_key(|(_, r)| r.total_ns) {
            if record.total_ns > fastest.total_ns {
                entries[slot] = record;
            }
        }
    }

    /// The current ring contents, slowest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let mut out = self.entries.lock().unwrap_or_else(|e| e.into_inner()).clone();
        out.sort_by_key(|e| std::cmp::Reverse(e.total_ns));
        out
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before 1970,
/// which only a badly broken clock reports).
pub(crate) fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_tile_handler_wall() {
        let mut t = RequestTrace::new(7);
        t.add(Stage::LockWaitRead, Duration::from_nanos(300));
        t.add(Stage::ExecUncached, Duration::from_nanos(5_000));
        t.absorb_handler_residual(Duration::from_nanos(6_000));
        assert_eq!(t.stage_ns[Stage::ExecCached as usize], 700);
        assert_eq!(
            t.attributed_ns(),
            6_000,
            "stage sums must reconstruct the handler wall exactly"
        );
    }

    #[test]
    fn residual_never_underflows() {
        let mut t = RequestTrace::new(0);
        // Attributed time can exceed the measured wall by clock
        // granularity; the residual must clamp, not wrap.
        t.add(Stage::ExecUncached, Duration::from_nanos(10_000));
        t.absorb_handler_residual(Duration::from_nanos(9_000));
        assert_eq!(t.stage_ns[Stage::ExecCached as usize], 0);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = RequestTrace::disabled(1);
        let timed = t.start(Stage::Decode);
        std::thread::sleep(Duration::from_millis(1));
        timed.stop(&mut t);
        t.add(Stage::Encode, Duration::from_nanos(500));
        t.absorb_handler_residual(Duration::from_millis(5));
        assert_eq!(t.attributed_ns(), 0);
        let rec: StageRecorder<2> = StageRecorder::new();
        rec.record(0, &t);
        assert!(rec.snapshot(&["a", "b"]).is_empty());
    }

    #[test]
    fn recorder_labels_and_skips_empty_cells() {
        let rec: StageRecorder<2> = StageRecorder::new();
        let mut t = RequestTrace::new(1);
        t.add(Stage::Decode, Duration::from_nanos(1_000));
        t.add(Stage::SocketWrite, Duration::from_nanos(2_000));
        rec.record(1, &t);
        let snaps = rec.snapshot(&["mutate", "batch"]);
        let labels: Vec<&str> = snaps.iter().map(|s| s.kind.as_str()).collect();
        assert_eq!(labels, ["batch/decode", "batch/socket_write"]);
        assert!(snaps.iter().all(|s| s.count == 1));
    }

    #[test]
    fn slow_log_keeps_the_slowest() {
        let log = SlowLog::new(2, Duration::from_nanos(100));
        let offer = |log: &SlowLog, id: u64, ns: u64| {
            let t = RequestTrace::new(id);
            log.offer(&t, "match_pair", Duration::from_nanos(ns));
        };
        offer(&log, 1, 50); // under threshold: ignored
        offer(&log, 2, 500);
        offer(&log, 3, 200);
        offer(&log, 4, 300); // evicts id 3 (fastest resident)
        offer(&log, 5, 150); // slower than nothing resident: dropped
        let snap = log.snapshot();
        let ids: Vec<u64> = snap.iter().map(|r| r.trace_id).collect();
        assert_eq!(ids, [2, 4], "slowest first, fastest evicted");
        assert_eq!(log.over_threshold(), 4);
    }

    #[test]
    fn zero_capacity_disables_the_ring_but_counts() {
        let log = SlowLog::new(0, Duration::from_nanos(0));
        log.offer(&RequestTrace::new(1), "stats", Duration::from_nanos(10));
        assert!(log.is_empty());
        assert_eq!(log.over_threshold(), 1);
    }
}
