//! The match daemon (DESIGN.md §9.1, §9.3).
//!
//! A [`Server`] owns one [`Repository`]-backed match session for its
//! whole lifetime — token table, similarity memo, prepared schemas and
//! the pair-summary cache all stay hot in memory — and serves
//! concurrent clients over plain `std::net` TCP. There is no async
//! runtime in this offline workspace; concurrency is the same
//! `std::thread::scope` shape the batch session uses for pair
//! sharding: the accept loop spawns one scoped worker thread per
//! connection (many requests per connection), bounded by
//! [`ServeOptions::max_connections`]. A *fixed* pool would deadlock
//! the moment idle keep-alive connections pin every worker — on a
//! 1-core machine the default pool would be a single worker — so the
//! bound is on concurrent connections, not on threads serving them.
//! Every open connection is registered (a [`TcpStream`] clone), which
//! is how shutdown unblocks workers parked in `read` on idle peers.
//!
//! **Read/write split.** The repository sits behind one [`RwLock`].
//! Requests that only read — `Stats`, and any `MatchPair`/`TopK` whose
//! pairs are already cached — run concurrently under the read lock.
//! An uncached pair also executes under the *read* lock: pair
//! execution is a pure function of frozen prepared state, so the
//! worker runs the whole uncached worklist over **one** clone of the
//! warm similarity memo ([`Repository::execute_pairs_shared`]) and
//! only the cheap absorb — publishing the summaries into the cache and
//! merging the warmed memo clone — takes the write lock. Mutations (`AddSchema`, `ReplaceSchema`,
//! `RemoveSchema`, `Save`) serialize through the write lock, giving
//! the single-writer discipline the repository's on-disk lock already
//! enforces across processes.
//!
//! Responses are bit-identical to direct in-process calls on the same
//! corpus — the integration suite drives N concurrent clients against
//! a daemon and compares against [`cupid_core::MatchSession`] output
//! byte for byte.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use cupid_core::{CupidConfig, MatchSummary};
use cupid_lexical::Thesaurus;
use cupid_model::{write_frame, FrameError};
use cupid_repo::{RepoError, Repository, SharedBatch, SharedMatch};

use crate::histogram::LatencyHistogram;
use crate::log::{Level, Logger};
use crate::metrics::{http_response, render_prometheus, EXPOSITION_CONTENT_TYPE};
use crate::protocol::{BatchItem, BatchOutcome, MutationOp, Request, Response, StatsReport};
use crate::trace::{RequestTrace, SlowLog, Stage, StageRecorder};
use crate::ServeError;

/// Request-kind labels of the per-kind latency histograms, in recorder
/// order (`Shared::latencies` and the stage matrix are indexed by
/// [`latency_kind`]). The three schema mutations share one "mutate"
/// histogram — they share the same write-lock + journal path, so their
/// latency profile is one conversation.
const LATENCY_KINDS: [&str; 9] =
    ["mutate", "match_pair", "top_k", "stats", "save", "batch", "shutdown", "slow_log", "explain"];

/// Which histogram a request records into.
fn latency_kind(request: &Request) -> usize {
    match request {
        Request::AddSchema { .. }
        | Request::ReplaceSchema { .. }
        | Request::RemoveSchema { .. }
        | Request::Mutate { .. } => 0,
        Request::MatchPair { .. } => 1,
        Request::TopK { .. } => 2,
        Request::Stats => 3,
        Request::Save => 4,
        Request::Batch { .. } => 5,
        Request::Shutdown => 6,
        Request::SlowLog => 7,
        Request::Explain { .. } => 8,
    }
}

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Maximum concurrent client connections (each gets a scoped
    /// worker thread). A connection arriving over the cap is answered
    /// with an error frame and closed instead of queuing behind a
    /// worker that may be parked on an idle peer.
    pub max_connections: usize,
    /// Fsync the write-ahead journal after every `n` schema mutations
    /// (add/replace/remove) — the cheap durability point that replaced
    /// full-snapshot autosave (DESIGN.md §10.4): mutations already
    /// append journal records as they commit, so the periodic work is
    /// one `fsync`, not a corpus rewrite. `Some(1)` makes every
    /// acknowledged mutation durable before the response is written —
    /// the setting the crash-recovery suite runs under. `None`
    /// disables periodic syncs; explicit `Save` requests and the final
    /// save at shutdown still persist everything.
    pub autosave_every: Option<u64>,
    /// Fold the journal into a fresh snapshot once it holds this many
    /// records ([`Repository::set_compact_after`]); `None` compacts
    /// only on explicit saves and shutdown.
    pub compact_after: Option<u64>,
    /// Admission control (DESIGN.md §12.2): at most this many requests
    /// execute at once; an arrival that cannot get a slot within
    /// [`ServeOptions::queue_deadline`] is shed with a typed
    /// [`Response::Overloaded`] frame instead of queuing unboundedly.
    /// `None` disables admission control (every request executes).
    /// `Stats` and `Shutdown` bypass admission so operators can always
    /// observe and drain an overloaded daemon.
    pub max_inflight: Option<usize>,
    /// How long an arrival may wait for an in-flight slot before being
    /// shed. Zero means shed immediately when the cap is full.
    pub queue_deadline: Duration,
    /// How long a connection may sit idle *between* frames before the
    /// daemon closes it and reclaims the worker (DESIGN.md §12.1). An
    /// idle peer parks cheaply until this expires; `None` lets
    /// keep-alive connections park forever (the pre-hardening
    /// behaviour, where a silent peer pins a worker indefinitely).
    pub idle_timeout: Option<Duration>,
    /// How long a single frame may take to arrive or drain once its
    /// first byte is seen. A peer that stalls mid-frame is cut loudly
    /// (the stream cannot be resynchronized anyway) and counted in
    /// `deadline_cuts`. `None` disables the per-frame deadline.
    pub frame_deadline: Option<Duration>,
    /// Per-request stage tracing (DESIGN.md §13). On by default — the
    /// cost is a handful of monotonic clock reads per request, bounded
    /// under 5% by `benches/obs.rs`. Off, requests carry a disabled
    /// [`RequestTrace`] that skips every clock read, stage histograms
    /// stay empty, and the slow log records nothing.
    pub tracing: bool,
    /// Slow-log ring capacity: how many of the slowest traces the
    /// daemon retains for the `SlowLog` frame. Zero disables the ring
    /// (the over-threshold counter still ticks).
    pub slow_log_capacity: usize,
    /// Requests at least this slow are counted and offered to the
    /// slow-log ring.
    pub slow_threshold: Duration,
    /// Minimum level of the daemon's structured stderr log.
    pub log_level: Level,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_connections: 64,
            autosave_every: None,
            compact_after: Some(1024),
            max_inflight: None,
            queue_deadline: Duration::from_millis(100),
            idle_timeout: Some(Duration::from_secs(300)),
            frame_deadline: Some(Duration::from_secs(30)),
            tracing: true,
            slow_log_capacity: 32,
            slow_threshold: Duration::from_millis(1),
            log_level: Level::Info,
        }
    }
}

/// Counting semaphore for admission control: a plain Mutex + Condvar
/// pair (no async runtime here) bounding concurrently *executing*
/// requests. Arrivals over the cap wait on the condvar up to the queue
/// deadline, then are shed.
struct Admission {
    max: usize,
    deadline: Duration,
    inflight: Mutex<usize>,
    freed: Condvar,
}

impl Admission {
    fn new(max: usize, deadline: Duration) -> Admission {
        Admission { max: max.max(1), deadline, inflight: Mutex::new(0), freed: Condvar::new() }
    }

    /// Acquire an in-flight slot, waiting up to the queue deadline.
    /// `None` means shed.
    fn admit(&self) -> Option<AdmitSlot<'_>> {
        let mut count = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        let give_up = Instant::now() + self.deadline;
        while *count >= self.max {
            let now = Instant::now();
            if now >= give_up {
                return None;
            }
            let (guard, _timeout) =
                self.freed.wait_timeout(count, give_up - now).unwrap_or_else(|e| e.into_inner());
            count = guard;
        }
        *count += 1;
        Some(AdmitSlot { admission: self })
    }
}

/// RAII in-flight slot: releasing wakes one queued waiter.
struct AdmitSlot<'a> {
    admission: &'a Admission,
}

impl Drop for AdmitSlot<'_> {
    fn drop(&mut self) {
        let mut count = self.admission.inflight.lock().unwrap_or_else(|e| e.into_inner());
        *count = count.saturating_sub(1);
        drop(count);
        self.admission.freed.notify_one();
    }
}

/// How many distinct mutation request ids the daemon remembers for
/// retry deduplication. 4096 ids bounds the table to a few hundred KiB
/// while covering far more in-flight retries than any sane client
/// budget produces; a retry arriving after its id was evicted re-runs
/// the operation, which at worst yields the same "already in
/// repository" error a non-idempotent double-apply would (DESIGN.md
/// §12.3 spells out this window).
const DEDUP_CAPACITY: usize = 4096;

/// Replay table for mutation retries: request id → the response the
/// first execution produced, evicted FIFO at [`DEDUP_CAPACITY`].
/// Checked and recorded while holding the repository *write* lock,
/// where mutations already serialize, so check-then-execute is
/// race-free without extra locking discipline.
#[derive(Default)]
struct DedupTable {
    seen: HashMap<u64, Response>,
    order: VecDeque<u64>,
}

impl DedupTable {
    fn record(&mut self, id: u64, response: &Response) {
        if self.seen.insert(id, response.clone()).is_none() {
            self.order.push_back(id);
            if self.order.len() > DEDUP_CAPACITY {
                if let Some(evicted) = self.order.pop_front() {
                    self.seen.remove(&evicted);
                }
            }
        }
    }
}

/// Open-connection registry: stream clones keyed by connection id, so
/// shutdown can unblock workers parked in `read` on idle peers.
#[derive(Default)]
struct Connections {
    next_id: u64,
    open: BTreeMap<u64, TcpStream>,
}

/// Shared state of a running daemon: the lock-guarded repository plus
/// the counters and flags every worker touches.
struct Shared<'a> {
    repo: RwLock<Repository<'a>>,
    path: PathBuf,
    addr: SocketAddr,
    options: ServeOptions,
    /// Shared with [`ShutdownHandle`]s, which may outlive the scope.
    shutdown: Arc<AtomicBool>,
    /// Set by [`Server::run`] the moment its accept loop breaks —
    /// the signal [`wake_accept_loop`] retries until it observes.
    accept_exited: Arc<AtomicBool>,
    requests: AtomicU64,
    mutations: AtomicU64,
    /// Requests shed by admission control ([`Response::Overloaded`]).
    shed: AtomicU64,
    /// Connections closed by the idle read deadline.
    idle_disconnects: AtomicU64,
    /// Connections cut mid-frame by the frame deadline (read or write).
    deadline_cuts: AtomicU64,
    /// Mutation retries answered from the request-id replay table.
    deduped: AtomicU64,
    /// In-flight admission semaphore; `None` when admission control is
    /// off.
    admission: Option<Admission>,
    /// Mutation-retry replay table (guarded separately, but only ever
    /// touched while holding the repository write lock).
    dedup: Mutex<DedupTable>,
    connections: Mutex<Connections>,
    /// Per-request-kind latency recorders, indexed by [`latency_kind`].
    latencies: [LatencyHistogram; LATENCY_KINDS.len()],
    /// Per-(kind, stage) attribution histograms finished traces fold
    /// into (DESIGN.md §13.1).
    stages: StageRecorder<{ LATENCY_KINDS.len() }>,
    /// Bounded ring of the slowest request traces.
    slow_log: SlowLog,
    /// The daemon's structured stderr logger.
    logger: Logger,
    /// Monotonic trace-id allocator (per daemon run).
    next_trace_id: AtomicU64,
    /// HTTP `/metrics` scrapes answered.
    metrics_scrapes: AtomicU64,
    /// Explain requests answered (DESIGN.md §14).
    explanations: AtomicU64,
}

/// A bound, not-yet-running match daemon. [`Server::bind`] opens the
/// repository (taking its single-writer lock) and the TCP listener;
/// [`Server::run`] serves until a `Shutdown` request, then saves.
pub struct Server<'a> {
    listener: TcpListener,
    shared: Shared<'a>,
}

impl<'a> Server<'a> {
    /// Bind a daemon: open (or create) the repository snapshot at
    /// `repo_path` under `config`/`thesaurus`, and listen on `addr`
    /// (use port 0 for an OS-assigned port, then [`Server::local_addr`]).
    pub fn bind(
        addr: impl ToSocketAddrs,
        repo_path: impl AsRef<Path>,
        config: &'a CupidConfig,
        thesaurus: &'a Thesaurus,
        options: ServeOptions,
    ) -> Result<Server<'a>, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Io {
            context: "bind listener".into(),
            message: e.to_string(),
        })?;
        let local = listener.local_addr().map_err(|e| ServeError::Io {
            context: "listener address".into(),
            message: e.to_string(),
        })?;
        let mut repo = Repository::open_or_create(repo_path.as_ref(), config, thesaurus)
            .map_err(ServeError::Repo)?;
        repo.set_compact_after(options.compact_after);
        let path = repo.path().to_path_buf();
        let slow_log = SlowLog::new(options.slow_log_capacity, options.slow_threshold);
        let logger = Logger::new(options.log_level);
        Ok(Server {
            listener,
            shared: Shared {
                repo: RwLock::new(repo),
                path,
                addr: local,
                admission: options
                    .max_inflight
                    .map(|max| Admission::new(max, options.queue_deadline)),
                options: ServeOptions {
                    max_connections: options.max_connections.max(1),
                    ..options
                },
                shutdown: Arc::new(AtomicBool::new(false)),
                accept_exited: Arc::new(AtomicBool::new(false)),
                requests: AtomicU64::new(0),
                mutations: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                idle_disconnects: AtomicU64::new(0),
                deadline_cuts: AtomicU64::new(0),
                deduped: AtomicU64::new(0),
                dedup: Mutex::new(DedupTable::default()),
                connections: Mutex::new(Connections::default()),
                latencies: std::array::from_fn(|_| LatencyHistogram::new()),
                stages: StageRecorder::new(),
                slow_log,
                logger,
                next_trace_id: AtomicU64::new(1),
                metrics_scrapes: AtomicU64::new(0),
                explanations: AtomicU64::new(0),
            },
        })
    }

    /// A handle that triggers the same graceful drain a `Shutdown`
    /// frame does, from any thread: stop accepting, let in-flight
    /// requests finish, write the final save, return from
    /// [`Server::run`]. This is the programmatic stand-in for a signal
    /// handler — the workspace is `forbid(unsafe_code)` with no libc
    /// binding, so a process embedding the daemon installs its own
    /// SIGTERM hook and calls [`ShutdownHandle::drain`] from it.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            addr: self.shared.addr,
            flag: Arc::clone(&self.shared.shutdown),
            accept_exited: Arc::clone(&self.shared.accept_exited),
        }
    }

    /// The address the daemon is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The snapshot file the daemon persists to.
    pub fn repo_path(&self) -> &Path {
        &self.shared.path
    }

    /// Serve until a `Shutdown` request arrives, then write a final
    /// snapshot if the repository is dirty. Blocks the calling thread;
    /// worker threads are scoped inside, so the borrowed
    /// config/thesaurus only need to outlive this call.
    pub fn run(self) -> Result<(), ServeError> {
        let Server { listener, shared } = self;
        let shared = &shared;
        shared.logger.info(
            "listening",
            &[
                ("addr", &shared.addr.to_string()),
                ("repo", &shared.path.display().to_string()),
                ("tracing", if shared.options.tracing { "on" } else { "off" }),
            ],
        );
        std::thread::scope(|scope| {
            for conn in listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // A failed accept is usually the peer's problem (reset
                // before we got to it) — but it can also be *ours*
                // (EMFILE under fd exhaustion), in which case the
                // pending connection stays queued and an instant retry
                // busy-spins at 100% CPU. Back off briefly either way;
                // a healthy listener never pays this.
                let Ok(mut stream) = conn else {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                };
                stream.set_nodelay(true).ok();
                // Refused connections (over the cap, or setup failure)
                // get a loud error frame instead of queuing behind
                // workers parked on idle peers.
                let id = match register(shared, &stream) {
                    Ok(id) => id,
                    Err(message) => {
                        shared.logger.warn("connection_refused", &[("reason", &message)]);
                        Response::Error { message }.write_to(&mut stream).ok();
                        continue;
                    }
                };
                scope.spawn(move || {
                    serve_connection(stream, shared);
                    shared.connections.lock().unwrap_or_else(|e| e.into_inner()).open.remove(&id);
                });
            }
            // Publish that the accept loop is done: wake retriers stop
            // here, whether their wake connection was ever dequeued.
            shared.accept_exited.store(true, Ordering::SeqCst);
            // Graceful drain: close only the *read* half of every open
            // connection. Workers parked waiting for a frame observe a
            // clean EOF and exit; workers mid-request keep their write
            // half so the in-flight response still reaches its client
            // before the scope joins them.
            let conns = shared.connections.lock().unwrap_or_else(|e| e.into_inner());
            for stream in conns.open.values() {
                stream.shutdown(Shutdown::Read).ok();
            }
        });
        let mut repo = shared.repo.write().unwrap_or_else(|e| e.into_inner());
        if repo.is_dirty() {
            repo.save().map_err(|e| {
                shared.logger.error("final_save_failed", &[("err", &e.to_string())]);
                ServeError::Repo(e)
            })?;
        }
        shared
            .logger
            .info("drained", &[("requests", &shared.requests.load(Ordering::Relaxed).to_string())]);
        Ok(())
    }
}

/// Triggers a graceful drain of a running [`Server`] from outside its
/// serving thread (see [`Server::shutdown_handle`]). Cloneable and
/// `'static` — safe to move into a signal-handling or supervisor
/// thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    addr: SocketAddr,
    flag: Arc<AtomicBool>,
    accept_exited: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Begin the drain: set the shutdown flag and wake the accept loop
    /// until it is seen observing the flag. Idempotent. Returns once
    /// the accept loop has stopped (or the bounded wake retry gives
    /// up — e.g. [`Server::run`] was never called); [`Server::run`]
    /// returning is the signal that the final save completed.
    pub fn drain(&self) {
        self.flag.store(true, Ordering::SeqCst);
        wake_accept_loop(self.addr, &self.accept_exited);
    }

    /// Whether a drain has been initiated.
    pub fn is_draining(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// How long each wake connection is held open (and how long between
/// wake retries): long enough for a parked accept thread to get
/// scheduled and dequeue a *live* socket even on a loaded single core.
const WAKE_PAUSE: Duration = Duration::from_millis(10);
/// Bounds the wake retry loop (~2 s of pauses plus connect time) so a
/// drain of a server whose `run()` never started still returns.
const WAKE_ATTEMPTS: usize = 200;

/// Wake a `run()` loop parked in `accept` so it observes the shutdown
/// flag, retrying until the loop confirms its exit via `accept_exited`.
///
/// One fire-and-forget connect is not enough. Dropping the wake stream
/// immediately sends an RST right behind the handshake, and on a busy
/// single core the kernel can reap the reset connection from the
/// accept backlog before the parked accept thread is ever scheduled to
/// dequeue it — the wake is lost and the daemon sleeps forever with
/// its final save unwritten (caught by `tests/chaos_daemon.rs`). Each
/// attempt therefore holds its connection open across a pause, so the
/// socket is still live when `accept` returns it, and the loop keeps
/// trying (covering transient connect failures too) until the accept
/// loop's own exit signal confirms delivery.
fn wake_accept_loop(addr: SocketAddr, accept_exited: &AtomicBool) {
    let target = wake_addr(addr);
    for _ in 0..WAKE_ATTEMPTS {
        if accept_exited.load(Ordering::SeqCst) {
            return;
        }
        let wake = TcpStream::connect_timeout(&target, Duration::from_millis(250));
        std::thread::sleep(WAKE_PAUSE);
        drop(wake);
    }
}

/// Where a worker connects to wake its own accept loop: the bound
/// address, with an unspecified IP (a `0.0.0.0` / `[::]` bind)
/// replaced by loopback — connecting *to* the unspecified address is
/// not portable, and a failed wake would leave `run()` parked in
/// `accept` forever with the final save never written.
fn wake_addr(bound: SocketAddr) -> SocketAddr {
    let mut addr = bound;
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

/// Register a connection in the shutdown registry. The error is the
/// message to refuse the peer with, and names the actual cause — "at
/// capacity" and "clone failed under fd exhaustion" point an operator
/// at different knobs.
fn register(shared: &Shared<'_>, stream: &TcpStream) -> Result<u64, String> {
    let mut conns = shared.connections.lock().unwrap_or_else(|e| e.into_inner());
    if conns.open.len() >= shared.options.max_connections {
        return Err(format!(
            "server at its {}-connection capacity",
            shared.options.max_connections
        ));
    }
    let clone =
        stream.try_clone().map_err(|e| format!("server failed to set up the connection: {e}"))?;
    let id = conns.next_id;
    conns.next_id += 1;
    conns.open.insert(id, clone);
    Ok(id)
}

/// What waiting for a request frame's first byte resolved to.
enum FrameWait {
    /// At least one byte is buffered — a frame is arriving.
    Ready,
    /// Clean EOF: the peer (or a drain's `Shutdown::Read`) closed.
    Closed,
    /// The idle deadline expired with no byte sent.
    IdleExpired,
    /// The socket failed; nothing more can be read.
    Failed,
}

/// Is this I/O error a read/write deadline expiry? Unix reports
/// `WouldBlock` for a timed-out blocking socket, Windows `TimedOut` —
/// check both (std documents this exact pair for `set_read_timeout`).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Did this frame error come from a deadline expiry (as opposed to a
/// malformed frame or a hard socket failure)?
fn is_deadline_cut(e: &FrameError) -> bool {
    matches!(e, FrameError::Io(io) if is_timeout(io))
}

/// Park until the peer's next frame starts, under the idle deadline.
/// `peek` leaves the byte for the frame reader, so this distinguishes
/// "idle between frames" (cheap, tolerated up to `idle_timeout`) from
/// "stalled mid-frame" (cut by the much shorter frame deadline) —
/// DESIGN.md §12.1.
fn wait_for_frame(stream: &TcpStream, idle_timeout: Option<Duration>) -> FrameWait {
    if stream.set_read_timeout(idle_timeout).is_err() {
        return FrameWait::Failed;
    }
    let mut first = [0u8; 1];
    loop {
        match stream.peek(&mut first) {
            Ok(0) => return FrameWait::Closed,
            Ok(_) => return FrameWait::Ready,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => return FrameWait::IdleExpired,
            Err(_) => return FrameWait::Failed,
        }
    }
}

/// Serve one connection: a loop of request frame → response frame.
/// Ends when the peer closes, idles past the idle deadline, stalls past
/// the frame deadline, sends a malformed frame, or the daemon drains.
///
/// Connections that open with `GET ` instead of the `CPDF` frame magic
/// are HTTP metrics scrapes — answered once and closed (DESIGN.md
/// §13.3), so `/metrics` shares the daemon's port with the frame
/// protocol.
fn serve_connection(mut stream: TcpStream, shared: &Shared<'_>) {
    let opts = &shared.options;
    // A peer that stops draining its receive window mid-response would
    // otherwise pin the worker in `write` forever.
    if stream.set_write_timeout(opts.frame_deadline).is_err() {
        return;
    }
    let mut first_frame = true;
    loop {
        match wait_for_frame(&stream, opts.idle_timeout) {
            FrameWait::Ready => {}
            FrameWait::Closed | FrameWait::Failed => return,
            FrameWait::IdleExpired => {
                shared.idle_disconnects.fetch_add(1, Ordering::Relaxed);
                shared.logger.debug("idle_disconnect", &[]);
                return;
            }
        }
        // A frame has started: switch to the (tighter) frame deadline
        // for its remaining bytes.
        if opts.frame_deadline != opts.idle_timeout
            && stream.set_read_timeout(opts.frame_deadline).is_err()
        {
            return;
        }
        // Protocol sniff, once per connection: an HTTP request line
        // instead of the frame magic means a metrics scrape.
        if first_frame {
            first_frame = false;
            if sniff_http(&stream, opts.frame_deadline) {
                serve_metrics(stream, shared);
                return;
            }
        }
        let trace_id = shared.next_trace_id.fetch_add(1, Ordering::Relaxed);
        let mut trace = if opts.tracing {
            RequestTrace::new(trace_id)
        } else {
            RequestTrace::disabled(trace_id)
        };
        let started = Instant::now();
        let decode = trace.start(Stage::Decode);
        let request = match Request::read_from(&mut stream) {
            Ok(Some(r)) => r,
            Ok(None) => return,
            Err(e) => {
                if is_deadline_cut(&e) {
                    // Mid-frame stall: the stream holds half a frame and
                    // cannot be resynchronized, and an error frame would
                    // interleave with whatever the peer eventually
                    // sends. Cut loudly — count it, close it.
                    shared.deadline_cuts.fetch_add(1, Ordering::Relaxed);
                    shared.logger.warn("deadline_cut", &[("during", "request_read")]);
                    return;
                }
                // Tell the peer why before hanging up; after a framing
                // error the stream cannot be resynchronized.
                shared.logger.warn("malformed_frame", &[("err", &e.to_string())]);
                let resp = Response::Error { message: e.to_string() };
                resp.write_to(&mut stream).ok();
                return;
            }
        };
        decode.stop(&mut trace);
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let kind = latency_kind(&request);
        // Admission control: bound concurrently-executing requests,
        // shedding arrivals that cannot get a slot within the queue
        // deadline. Stats and Shutdown bypass admission — an operator
        // must always be able to observe and drain an overloaded
        // daemon.
        let exempt = matches!(request, Request::Stats | Request::Shutdown);
        let handler_started = trace.is_enabled().then(Instant::now);
        let response = match &shared.admission {
            Some(admission) if !exempt => {
                let wait = trace.start(Stage::AdmissionWait);
                let slot = admission.admit();
                wait.stop(&mut trace);
                match slot {
                    Some(_slot) => handle_request(&request, shared, &mut trace),
                    None => {
                        shared.shed.fetch_add(1, Ordering::Relaxed);
                        shared.logger.warn(
                            "request_shed",
                            &[("trace_id", &trace_id.to_string()), ("kind", LATENCY_KINDS[kind])],
                        );
                        Response::Overloaded {
                            max_inflight: admission.max as u64,
                            queue_deadline_ms: admission.deadline.as_millis() as u64,
                        }
                    }
                }
            }
            _ => handle_request(&request, shared, &mut trace),
        };
        if let Some(handler_started) = handler_started {
            // Admission wait is timed separately; the residual tiling
            // covers only the handler's own wall time.
            let handler_wall = handler_started.elapsed().saturating_sub(Duration::from_nanos(
                trace.stage_ns[Stage::AdmissionWait as usize],
            ));
            trace.absorb_handler_residual(handler_wall);
        }
        let shutting_down = matches!(response, Response::ShuttingDown);
        if shutting_down {
            // Commit to the shutdown *before* the response write: a
            // client that dies after sending Shutdown must still stop
            // the daemon (and trigger its final save), not leave it
            // running forever.
            shared.shutdown.store(true, Ordering::SeqCst);
        }
        let encode = trace.start(Stage::Encode);
        let (frame_kind, payload) = response.encode();
        encode.stop(&mut trace);
        let write = trace.start(Stage::SocketWrite);
        let wrote = write_frame(&mut stream, frame_kind, &payload);
        write.stop(&mut trace);
        // The request is over: record its wall (decode through socket
        // write) and fold the trace into the stage matrix and slow log.
        let wall = started.elapsed();
        shared.latencies[kind].record(wall);
        shared.stages.record(kind, &trace);
        if trace.is_enabled() {
            shared.slow_log.offer(&trace, LATENCY_KINDS[kind], wall);
        }
        if shutting_down {
            // Wake the accept loop and stay until it observes the flag.
            wake_accept_loop(shared.addr, &shared.accept_exited);
            return;
        }
        if let Err(e) = wrote {
            if is_deadline_cut(&e) {
                shared.deadline_cuts.fetch_add(1, Ordering::Relaxed);
                shared.logger.warn(
                    "deadline_cut",
                    &[("during", "response_write"), ("trace_id", &trace_id.to_string())],
                );
            }
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Does this just-arrived payload open with an HTTP `GET `? Peeks up to
/// four bytes without consuming them, waiting briefly for slow writers;
/// anything that diverges from `GET ` (the `CPDF` frame magic on byte
/// one, say) is the frame protocol. A prefix of `GET ` that never
/// completes falls through to the frame reader, which rejects the bad
/// magic loudly.
fn sniff_http(stream: &TcpStream, deadline: Option<Duration>) -> bool {
    let give_up = Instant::now() + deadline.unwrap_or(Duration::from_secs(2));
    let mut buf = [0u8; 4];
    loop {
        match stream.peek(&mut buf) {
            Ok(0) => return false,
            Ok(n) => {
                if buf[..n] != b"GET "[..n] {
                    return false;
                }
                if n == 4 {
                    return true;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
        if Instant::now() >= give_up {
            return false;
        }
        // Fewer than four bytes buffered and all consistent with
        // `GET `: give the writer a moment and peek again.
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Answer one HTTP metrics scrape and close. Only `GET /metrics` (and
/// `GET /`, for convenience) exist; anything else is a 404. The request
/// head is drained up to a small bound so well-behaved HTTP clients see
/// their request consumed before the response lands.
fn serve_metrics(mut stream: TcpStream, shared: &Shared<'_>) {
    // Read the request head (bounded; the frame deadline is already the
    // read timeout). Stop at the blank line; ignore the rest.
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 256];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8 << 10 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
    let request_line = String::from_utf8_lossy(&head);
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let response = if path == "/metrics" || path == "/" {
        shared.metrics_scrapes.fetch_add(1, Ordering::Relaxed);
        shared.logger.debug("metrics_scrape", &[]);
        let report = {
            let guard = shared.repo.read().unwrap_or_else(|e| e.into_inner());
            stats_report(&guard, shared)
        };
        http_response("200 OK", EXPOSITION_CONTENT_TYPE, &render_prometheus(&report))
    } else {
        http_response("404 Not Found", "text/plain; charset=utf-8", "only /metrics lives here\n")
    };
    stream.write_all(&response).ok();
    stream.shutdown(Shutdown::Both).ok();
}

/// Execute one request against the shared repository. Never panics on
/// bad input: every failure becomes [`Response::Error`] and the
/// connection stays usable. The trace accumulates lock-wait and
/// uncached-execution time; everything else the handler does lands in
/// `exec_cached` via the residual tiling in [`serve_connection`].
fn handle_request(request: &Request, shared: &Shared<'_>, trace: &mut RequestTrace) -> Response {
    match request {
        Request::AddSchema { sdl } => mutate(shared, None, trace, |repo| {
            let name = repo.import_sdl(sdl)?;
            Ok(Response::Added { name })
        }),
        Request::ReplaceSchema { sdl } => mutate(shared, None, trace, |repo| {
            let schema = cupid_io::parse_sdl(sdl).map_err(cupid_repo::RepoError::Import)?;
            let name = schema.name().to_string();
            repo.replace(&schema)?;
            Ok(Response::Replaced { name })
        }),
        Request::RemoveSchema { name } => mutate(shared, None, trace, |repo| {
            repo.remove(name)?;
            Ok(Response::Removed { name: name.clone() })
        }),
        Request::Mutate { request_id, op } => {
            let id = Some(*request_id);
            match op {
                MutationOp::Add { sdl } => mutate(shared, id, trace, |repo| {
                    let name = repo.import_sdl(sdl)?;
                    Ok(Response::Added { name })
                }),
                MutationOp::Replace { sdl } => mutate(shared, id, trace, |repo| {
                    let schema = cupid_io::parse_sdl(sdl).map_err(cupid_repo::RepoError::Import)?;
                    let name = schema.name().to_string();
                    repo.replace(&schema)?;
                    Ok(Response::Replaced { name })
                }),
                MutationOp::Remove { name } => mutate(shared, id, trace, |repo| {
                    repo.remove(name)?;
                    Ok(Response::Removed { name: name.clone() })
                }),
            }
        }
        Request::MatchPair { source, target } => {
            let wait = trace.start(Stage::LockWaitRead);
            let guard = shared.repo.read().unwrap_or_else(|e| e.into_inner());
            wait.stop(trace);
            let exec = trace.start(Stage::ExecUncached);
            let shared_match = match guard.match_pair_shared(source, target) {
                Ok(m) => m,
                Err(e) => return Response::Error { message: e.to_string() },
            };
            drop(guard);
            let summary = match shared_match {
                SharedMatch::Cached(s) => {
                    // Cache hit: the lookup time is handler residual,
                    // not uncached execution — drop the timer.
                    drop(exec);
                    s
                }
                SharedMatch::Executed(batch) => {
                    exec.stop(trace);
                    let summary = batch.summaries().next().expect("one-entry batch").clone();
                    absorb(shared, batch, trace);
                    summary
                }
            };
            Response::Matched { source: source.clone(), target: target.clone(), summary }
        }
        Request::TopK { k } => {
            let wait = trace.start(Stage::LockWaitRead);
            let guard = shared.repo.read().unwrap_or_else(|e| e.into_inner());
            wait.stop(trace);
            let names = guard.names().to_vec();
            let pairs = guard.discovery_index().top_k_pairs(*k as usize);
            // Serve cached pairs directly; execute the rest as one
            // batch over a single memo clone, then splice the results
            // back into worklist order.
            let mut summaries: Vec<Option<MatchSummary>> = Vec::with_capacity(pairs.len());
            let mut missing = Vec::new();
            let mut slots = Vec::new();
            for &(i, j) in &pairs {
                match guard.cached_pair_at(i, j) {
                    Some(s) => summaries.push(Some(s)),
                    None => {
                        slots.push(summaries.len());
                        summaries.push(None);
                        missing.push((i, j));
                    }
                }
            }
            let exec = trace.start(Stage::ExecUncached);
            let batch = (!missing.is_empty()).then(|| guard.execute_pairs_shared(&missing));
            drop(guard);
            if batch.is_some() {
                exec.stop(trace);
            }
            if let Some(batch) = batch {
                for (&slot, summary) in slots.iter().zip(batch.summaries()) {
                    summaries[slot] = Some(summary.clone());
                }
                absorb(shared, batch, trace);
            }
            let summaries = summaries.into_iter().map(|s| s.expect("every slot filled")).collect();
            Response::TopKList { names, summaries }
        }
        Request::Stats => {
            let wait = trace.start(Stage::LockWaitRead);
            let guard = shared.repo.read().unwrap_or_else(|e| e.into_inner());
            wait.stop(trace);
            Response::Stats(stats_report(&guard, shared))
        }
        Request::Batch { items } => batch_dispatch(items, shared, trace),
        Request::Save => {
            let wait = trace.start(Stage::LockWaitWrite);
            let mut guard = shared.repo.write().unwrap_or_else(|e| e.into_inner());
            wait.stop(trace);
            let exec = trace.start(Stage::ExecUncached);
            let saved = guard.save();
            exec.stop(trace);
            if let Err(e) = saved {
                shared.logger.error("save_failed", &[("err", &e.to_string())]);
                return Response::Error { message: e.to_string() };
            }
            let bytes = std::fs::metadata(&shared.path).map(|m| m.len()).unwrap_or(0);
            Response::Saved { bytes }
        }
        Request::SlowLog => Response::SlowLog { entries: shared.slow_log.snapshot() },
        Request::Explain { source, target } => {
            // Same read/write split as an uncached MatchPair: the
            // re-execution runs under the read lock over a clone of the
            // warm token-similarity memo, and only merging the warmed
            // clone back takes the write lock. Explanations never touch
            // the pair cache — they are diagnostics, not matches.
            let wait = trace.start(Stage::LockWaitRead);
            let guard = shared.repo.read().unwrap_or_else(|e| e.into_inner());
            wait.stop(trace);
            let exec = trace.start(Stage::ExecUncached);
            let explained = guard.explain_shared(source, target);
            drop(guard);
            exec.stop(trace);
            let (explanation, store) = match explained {
                Ok(e) => e,
                Err(e) => return Response::Error { message: e.to_string() },
            };
            debug_assert!(explanation.recomposes_exactly());
            let wait = trace.start(Stage::LockWaitWrite);
            let mut guard = shared.repo.write().unwrap_or_else(|e| e.into_inner());
            wait.stop(trace);
            guard.absorb_store(store);
            drop(guard);
            shared.explanations.fetch_add(1, Ordering::Relaxed);
            Response::Explanation(explanation)
        }
        Request::Shutdown => Response::ShuttingDown,
    }
}

/// Build the `Stats` payload from a repository read guard plus the
/// daemon counters (shared by the unary `Stats` arm and batch `Stats`
/// entries).
fn stats_report(guard: &Repository<'_>, shared: &Shared<'_>) -> StatsReport {
    let stats = guard.stats();
    let durability = guard.durability();
    StatsReport {
        schemas: stats.schemas as u64,
        cached_pairs: stats.cached_pairs as u64,
        pairs_executed: stats.pairs_executed as u64,
        vocab_size: stats.session.vocab_size as u64,
        vocab_bytes: stats.session.vocab_bytes as u64,
        distinct_pairs_computed: stats.session.distinct_pairs_computed as u64,
        sim_chunks: stats.session.sim_chunks as u64,
        sim_bytes: stats.session.sim_bytes as u64,
        requests_served: shared.requests.load(Ordering::Relaxed),
        journal_records: durability.journal_records,
        journal_bytes: durability.journal_bytes,
        replayed_records: durability.replayed_records,
        compactions: durability.compactions,
        shed_requests: shared.shed.load(Ordering::Relaxed),
        idle_disconnects: shared.idle_disconnects.load(Ordering::Relaxed),
        deadline_cuts: shared.deadline_cuts.load(Ordering::Relaxed),
        deduped_mutations: shared.deduped.load(Ordering::Relaxed),
        last_fsync_error: durability.last_fsync_error.unwrap_or_default(),
        slow_requests: shared.slow_log.over_threshold(),
        slow_log_entries: shared.slow_log.len() as u64,
        metrics_scrapes: shared.metrics_scrapes.load(Ordering::Relaxed),
        explanations_served: shared.explanations.load(Ordering::Relaxed),
        latencies: LATENCY_KINDS
            .iter()
            .zip(&shared.latencies)
            .map(|(k, h)| h.snapshot(k))
            .collect(),
        stage_latencies: shared.stages.snapshot(&LATENCY_KINDS),
    }
}

/// A batch entry after the resolve pass: either already answerable, or
/// waiting on a slot in the batch's shared pair worklist.
enum Pending {
    /// Resolved without pair execution (cached pair, stats, or a
    /// per-entry error).
    Ready(Result<BatchOutcome, String>),
    /// An uncached `MatchPair` whose summary is `worklist[work]`.
    Pair { source: String, target: String, work: usize },
    /// A `TopK` listing with `None` holes to be filled from the
    /// worklist (`slots` maps hole position → worklist index).
    TopK { names: Vec<String>, summaries: Vec<Option<MatchSummary>>, slots: Vec<(usize, usize)> },
}

/// Add a pair to the batch worklist once, returning its index — entries
/// repeating a pair (or a `TopK` overlapping a `MatchPair`) share one
/// execution.
fn enqueue(
    worklist: &mut Vec<(usize, usize)>,
    dedup: &mut BTreeMap<(usize, usize), usize>,
    pair: (usize, usize),
) -> usize {
    *dedup.entry(pair).or_insert_with(|| {
        worklist.push(pair);
        worklist.len() - 1
    })
}

/// Execute a whole batch under **one** read-lock acquisition: resolve
/// every entry against the same corpus snapshot, run the deduplicated
/// uncached pairs over one warm memo clone
/// ([`Repository::execute_pairs_shared`]), publish with one `absorb`,
/// then splice the summaries back into per-entry outcomes. A bad entry
/// (unknown schema name) fails alone — its slot carries the same error
/// string the unary path would return, and every other entry completes.
fn batch_dispatch(items: &[BatchItem], shared: &Shared<'_>, trace: &mut RequestTrace) -> Response {
    let wait = trace.start(Stage::LockWaitRead);
    let guard = shared.repo.read().unwrap_or_else(|e| e.into_inner());
    wait.stop(trace);
    let position: BTreeMap<&str, usize> =
        guard.names().iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
    let mut worklist: Vec<(usize, usize)> = Vec::new();
    let mut dedup: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut pending: Vec<Pending> = Vec::with_capacity(items.len());
    for item in items {
        let entry = match item {
            BatchItem::MatchPair { source, target } => {
                // Same resolution order as the unary path, so the error
                // for an unknown source (even with the target also
                // unknown) is byte-identical to `match_pair_shared`'s.
                match (
                    position.get(source.as_str()).copied(),
                    position.get(target.as_str()).copied(),
                ) {
                    (None, _) => {
                        Pending::Ready(Err(RepoError::UnknownName(source.clone()).to_string()))
                    }
                    (_, None) => {
                        Pending::Ready(Err(RepoError::UnknownName(target.clone()).to_string()))
                    }
                    (Some(i), Some(j)) => match guard.cached_pair_at(i, j) {
                        Some(summary) => Pending::Ready(Ok(BatchOutcome::Matched {
                            source: source.clone(),
                            target: target.clone(),
                            summary,
                        })),
                        None => Pending::Pair {
                            source: source.clone(),
                            target: target.clone(),
                            work: enqueue(&mut worklist, &mut dedup, (i, j)),
                        },
                    },
                }
            }
            BatchItem::TopK { k } => {
                let names = guard.names().to_vec();
                let pairs = guard.discovery_index().top_k_pairs(*k as usize);
                let mut summaries: Vec<Option<MatchSummary>> = Vec::with_capacity(pairs.len());
                let mut slots = Vec::new();
                for &(i, j) in &pairs {
                    match guard.cached_pair_at(i, j) {
                        Some(s) => summaries.push(Some(s)),
                        None => {
                            slots.push((
                                summaries.len(),
                                enqueue(&mut worklist, &mut dedup, (i, j)),
                            ));
                            summaries.push(None);
                        }
                    }
                }
                Pending::TopK { names, summaries, slots }
            }
            BatchItem::Stats => {
                Pending::Ready(Ok(BatchOutcome::Stats(stats_report(&guard, shared))))
            }
        };
        pending.push(entry);
    }
    let exec = trace.start(Stage::ExecUncached);
    let batch = (!worklist.is_empty()).then(|| guard.execute_pairs_shared(&worklist));
    drop(guard);
    if batch.is_some() {
        exec.stop(trace);
    }
    let executed: Vec<MatchSummary> = match batch {
        Some(batch) => {
            let summaries = batch.summaries().cloned().collect();
            absorb(shared, batch, trace);
            summaries
        }
        None => Vec::new(),
    };
    let entries = pending
        .into_iter()
        .map(|p| match p {
            Pending::Ready(entry) => entry,
            Pending::Pair { source, target, work } => {
                Ok(BatchOutcome::Matched { source, target, summary: executed[work].clone() })
            }
            Pending::TopK { names, mut summaries, slots } => {
                for (slot, work) in slots {
                    summaries[slot] = Some(executed[work].clone());
                }
                Ok(BatchOutcome::TopKList {
                    names,
                    summaries: summaries
                        .into_iter()
                        .map(|s| s.expect("every slot filled"))
                        .collect(),
                })
            }
        })
        .collect();
    Response::Batch { entries }
}

/// Run a schema mutation under the write lock, then apply the autosave
/// policy while still holding it: the mutation's journal record is
/// already appended, so autosave is one journal `fsync`
/// ([`Repository::sync_journal`]) — the response is not written until
/// the record is durable, which is the guarantee the crash-recovery
/// suite SIGKILLs daemons to verify.
///
/// With a `request_id` (the retry-safe [`Request::Mutate`] path), the
/// replay table is consulted *inside* the write lock: a retry of an
/// already-applied mutation gets the original response back verbatim —
/// success or error alike — instead of re-executing, so an ack lost to
/// a connection reset cannot double-apply (DESIGN.md §12.3).
fn mutate(
    shared: &Shared<'_>,
    request_id: Option<u64>,
    trace: &mut RequestTrace,
    op: impl FnOnce(&mut Repository<'_>) -> Result<Response, cupid_repo::RepoError>,
) -> Response {
    let wait = trace.start(Stage::LockWaitWrite);
    let mut guard = shared.repo.write().unwrap_or_else(|e| e.into_inner());
    wait.stop(trace);
    if let Some(id) = request_id {
        let dedup = shared.dedup.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(original) = dedup.seen.get(&id) {
            shared.deduped.fetch_add(1, Ordering::Relaxed);
            return original.clone();
        }
    }
    let exec = trace.start(Stage::ExecUncached);
    let applied = op(&mut guard);
    exec.stop(trace);
    let response = match applied {
        Ok(r) => r,
        Err(e) => {
            let response = Response::Error { message: e.to_string() };
            if let Some(id) = request_id {
                shared.dedup.lock().unwrap_or_else(|e| e.into_inner()).record(id, &response);
            }
            return response;
        }
    };
    if let Some(id) = request_id {
        shared.dedup.lock().unwrap_or_else(|e| e.into_inner()).record(id, &response);
    }
    let count = shared.mutations.fetch_add(1, Ordering::Relaxed) + 1;
    if let Some(every) = shared.options.autosave_every {
        if every > 0 && count % every == 0 {
            // The mutation itself already committed, so the client must
            // see success either way — reporting an error here would
            // make a retried AddSchema fail with "already in
            // repository" for an add that worked. A failed sync only
            // loses durability, which the next sync or save retries;
            // log it daemon-side *and* surface it through the `Stats`
            // frame's `last_fsync_error` (the repository records it).
            let sync = trace.start(Stage::ExecUncached);
            let synced = guard.sync_journal();
            sync.stop(trace);
            if let Err(e) = synced {
                shared.logger.error(
                    "journal_fsync_failed",
                    &[
                        ("err", &e.to_string()),
                        ("trace_id", &trace.trace_id.to_string()),
                        ("note", "state kept in memory"),
                    ],
                );
            }
        }
    }
    response
}

/// Publish shared-path execution results under the write lock. The
/// lock wait is attributed to the trace's write-wait stage, the absorb
/// itself to uncached execution — it is the publication half of the
/// shared execution path.
fn absorb(shared: &Shared<'_>, batch: SharedBatch, trace: &mut RequestTrace) {
    let wait = trace.start(Stage::LockWaitWrite);
    let mut guard = shared.repo.write().unwrap_or_else(|e| e.into_inner());
    wait.stop(trace);
    let exec = trace.start(Stage::ExecUncached);
    guard.absorb(batch);
    exec.stop(trace);
}
