//! Client-side retry policy: exponential backoff with seeded,
//! deterministic jitter and a bounded retry budget (DESIGN.md §12).
//!
//! The policy is pure data plus a pure schedule function — given the
//! same seed it always produces the same sequence of backoff delays,
//! which is what lets the chaos suite assert hard wall-clock bounds
//! ("no call outlives its deadline") and the property suite pin
//! schedule determinism. Jitter is *equal jitter*: each delay is drawn
//! uniformly from `[ceiling/2, ceiling)` where the ceiling doubles per
//! attempt up to a cap, so retries decorrelate across clients (no
//! thundering herd after a shared fault) while every delay keeps a
//! known floor and ceiling.
//!
//! What a retry is allowed to repeat is decided elsewhere: the client
//! classifies errors ([`crate::ServeError::is_retryable`]) and only
//! resends requests that are safe to repeat — reads trivially, and
//! mutations because they carry client-assigned request ids the daemon
//! deduplicates (DESIGN.md §12.3).

use std::time::Duration;

/// Exponential-backoff retry schedule with deterministic seeded jitter
/// and a bounded budget.
///
/// `budget` is the number of *retries* after the first attempt, so a
/// policy with `budget == 3` makes at most 4 exchanges. The backoff
/// ceiling for retry `i` (0-based) is `min(cap, base << i)`; the actual
/// delay is drawn uniformly from `[ceiling/2, ceiling)` by a splitmix64
/// stream over `seed`, so two policies with equal fields produce
/// bit-equal schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Backoff ceiling of the first retry.
    pub base: Duration,
    /// Upper bound any single backoff delay can reach.
    pub cap: Duration,
    /// Retries allowed after the first attempt (0 = never retry).
    pub budget: u32,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// A conservative default: 4 retries backing off 10 ms → 160 ms
    /// (ceilings), capped at 500 ms, jittered from `seed`.
    pub fn new(seed: u64) -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            budget: 4,
            seed,
        }
    }

    /// Set the first-retry backoff ceiling.
    pub fn base(mut self, base: Duration) -> RetryPolicy {
        self.base = base;
        self
    }

    /// Set the per-delay backoff cap.
    pub fn cap(mut self, cap: Duration) -> RetryPolicy {
        self.cap = cap;
        self
    }

    /// Set the retry budget (retries after the first attempt).
    pub fn budget(mut self, budget: u32) -> RetryPolicy {
        self.budget = budget;
        self
    }

    /// The full backoff schedule: `budget` delays, deterministic for a
    /// fixed policy. `delays()[i]` is slept after failed attempt `i`.
    pub fn delays(&self) -> Vec<Duration> {
        (0..self.budget).map(|i| self.delay(i)).collect()
    }

    /// The backoff delay after failed attempt `attempt` (0-based).
    /// Deterministic: equal `(policy, attempt)` always yields the same
    /// delay, drawn from `[ceiling/2, ceiling)` with
    /// `ceiling = min(cap, base << attempt)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let base_ns = self.base.as_nanos().min(u128::from(u64::MAX)) as u64;
        let cap_ns = self.cap.as_nanos().min(u128::from(u64::MAX)) as u64;
        let ceiling = base_ns.checked_shl(attempt).unwrap_or(u64::MAX).min(cap_ns);
        if ceiling == 0 {
            return Duration::ZERO;
        }
        let half = ceiling / 2;
        // Uniform draw from [half, ceiling) off the jitter stream; the
        // modulo bias over a ~u64 stream is far below timer resolution.
        let span = (ceiling - half).max(1);
        let jitter = splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9)) % span;
        Duration::from_nanos(half + jitter)
    }

    /// An upper bound on the wall-clock a retried call can take, given
    /// a per-attempt bound (connect + write + read deadlines): every
    /// attempt's I/O bound plus every backoff delay. The chaos suite
    /// asserts observed call latency under this bound.
    pub fn max_elapsed(&self, per_attempt: Duration) -> Duration {
        let attempts = self.budget.saturating_add(1);
        let io: Duration = per_attempt.saturating_mul(attempts);
        self.delays().iter().fold(io, |acc, d| acc.saturating_add(*d))
    }
}

/// One step of the splitmix64 stream — the same tiny generator the
/// proptest corpus and the chaos proxy schedules use, hand-rolled here
/// because the `rand` shim is a dev-dependency only.
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let a = RetryPolicy::new(42);
        let b = RetryPolicy::new(42);
        assert_eq!(a.delays(), b.delays());
        let c = RetryPolicy::new(43);
        assert_ne!(a.delays(), c.delays(), "different seeds must decorrelate");
    }

    #[test]
    fn delays_respect_floor_ceiling_and_cap() {
        let p = RetryPolicy::new(7).base(Duration::from_millis(10)).cap(Duration::from_millis(80));
        let delays: Vec<Duration> = (0..8).map(|i| p.delay(i)).collect();
        for (i, d) in delays.iter().enumerate() {
            let ceiling =
                Duration::from_millis(10).saturating_mul(1 << i).min(Duration::from_millis(80));
            assert!(*d < ceiling, "delay {i} = {d:?} above its ceiling {ceiling:?}");
            assert!(*d >= ceiling / 2, "delay {i} = {d:?} below its floor");
        }
    }

    #[test]
    fn budget_bounds_the_schedule() {
        assert_eq!(RetryPolicy::new(1).budget(0).delays().len(), 0);
        assert_eq!(RetryPolicy::new(1).budget(6).delays().len(), 6);
    }

    #[test]
    fn max_elapsed_covers_every_attempt_and_delay() {
        let p = RetryPolicy::new(9).budget(3);
        let per = Duration::from_millis(100);
        let bound = p.max_elapsed(per);
        let floor: Duration = p.delays().iter().sum::<Duration>() + per * 4;
        assert_eq!(bound, floor);
    }
}
