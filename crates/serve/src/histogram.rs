//! Fixed-bucket log-scale latency histograms (DESIGN.md §11).
//!
//! The daemon records how long every request takes, per request kind,
//! into a histogram whose bucket `i` counts latencies with
//! `⌊log2(ns)⌋ == i` — fixed memory (40 atomic counters per kind), no
//! allocation on the hot path, one `fetch_add` per request, and
//! mergeable across threads for free because buckets are independent
//! counters. Log-scale buckets trade precision for range: every
//! quantile is known to within a factor of two from 1 ns to ~18 min,
//! which is exactly the resolution a latency SLO conversation needs
//! ("p99 under 4 µs" vs "p99 blew past 1 ms").
//!
//! [`LatencyHistogram`] is the daemon-side atomic recorder;
//! [`KindLatency`] is the frozen snapshot that travels in the `Stats`
//! frame ([`crate::StatsReport`]) and feeds the CLI table and the soak
//! harness's p50/p99/p999 report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets. Bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also absorbs 0 ns); the last
/// bucket absorbs everything from `2^39` ns (~9.2 min) up.
pub const LATENCY_BUCKETS: usize = 40;

/// The bucket a nanosecond latency falls into.
#[inline]
pub fn latency_bucket(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (ns.ilog2() as usize).min(LATENCY_BUCKETS - 1)
    }
}

/// Atomic per-request-kind latency recorder. All counters are relaxed:
/// a stats snapshot racing a recording thread may be one sample ahead
/// or behind in a bucket, which is fine for observability counters.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// A zeroed histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }

    /// Record one request latency.
    pub fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[latency_bucket(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Freeze the current counters into a snapshot labeled `kind`.
    pub fn snapshot(&self, kind: &str) -> KindLatency {
        KindLatency {
            kind: kind.to_string(),
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// A frozen latency histogram for one request kind, as served by the
/// `Stats` frame. `buckets[i]` counts requests whose latency had
/// `⌊log2(ns)⌋ == i` (see [`latency_bucket`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindLatency {
    /// Request kind label (`"match_pair"`, `"top_k"`, `"batch"`, …).
    pub kind: String,
    /// Requests recorded.
    pub count: u64,
    /// Sum of all recorded latencies, in nanoseconds.
    pub total_ns: u64,
    /// [`LATENCY_BUCKETS`] log2 bucket counters.
    pub buckets: Vec<u64>,
}

impl KindLatency {
    /// An empty histogram for `kind` (what a daemon reports before the
    /// first request of that kind).
    pub fn empty(kind: &str) -> Self {
        KindLatency {
            kind: kind.to_string(),
            count: 0,
            total_ns: 0,
            buckets: vec![0; LATENCY_BUCKETS],
        }
    }

    /// Mean latency in nanoseconds (0 when no samples).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (inclusive, in ns) of the bucket holding the `q`
    /// quantile sample, `0.0 < q <= 1.0` — e.g. `quantile_ns(0.99)` is
    /// "p99 was at most this". Returns 0 when no samples are recorded.
    /// Bucket resolution makes this exact to within a factor of two.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper_ns(i);
            }
        }
        bucket_upper_ns(self.buckets.len().saturating_sub(1))
    }

    /// Merge another histogram of the same kind into this one (the
    /// soak harness folds per-client histograms this way).
    pub fn merge(&mut self, other: &KindLatency) {
        assert_eq!(self.buckets.len(), other.buckets.len(), "bucket layouts must agree");
        self.count += other.count;
        self.total_ns += other.total_ns;
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// Inclusive upper bound of log2 bucket `i`, in nanoseconds (also the
/// `le` boundary the Prometheus exposition derives its cumulative
/// buckets from — see [`crate::metrics`]).
pub fn bucket_upper_ns(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(1), 0);
        assert_eq!(latency_bucket(2), 1);
        assert_eq!(latency_bucket(3), 1);
        assert_eq!(latency_bucket(1024), 10);
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn record_and_quantiles() {
        let h = LatencyHistogram::new();
        // 90 fast samples (~1 µs bucket), 10 slow (~1 ms bucket).
        for _ in 0..90 {
            h.record(Duration::from_nanos(1_100));
        }
        for _ in 0..10 {
            h.record(Duration::from_nanos(1_100_000));
        }
        let snap = h.snapshot("match_pair");
        assert_eq!(snap.count, 100);
        assert_eq!(snap.kind, "match_pair");
        let p50 = snap.quantile_ns(0.50);
        let p99 = snap.quantile_ns(0.99);
        assert!(p50 < 3_000, "p50 {p50} must sit in the fast bucket");
        assert!(p99 > 1_000_000, "p99 {p99} must sit in the slow bucket");
        assert!(snap.quantile_ns(1.0) >= p99);
        assert_eq!(snap.mean_ns(), (90 * 1_100 + 10 * 1_100_000) / 100);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let snap = KindLatency::empty("save");
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile_ns(0.99), 0);
        assert_eq!(snap.mean_ns(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(Duration::from_nanos(100));
        b.record(Duration::from_nanos(100_000));
        let mut m = a.snapshot("x");
        m.merge(&b.snapshot("x"));
        assert_eq!(m.count, 2);
        assert_eq!(m.total_ns, 100_100);
        assert_eq!(m.buckets.iter().sum::<u64>(), 2);
    }
}
