//! Shared fixtures for the benchmark harness. The benches themselves live
//! in `benches/`; one group per paper table/figure plus scaling and
//! ablation sweeps. See EXPERIMENTS.md for the mapping to the paper.
