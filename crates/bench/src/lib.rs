//! # cupid-bench — the criterion benchmark harness
//!
//! The benches themselves live in `benches/`: one group per paper
//! table/figure (`linguistic`, `treematch`, `end_to_end`, `baselines`)
//! plus the `scaling` and `ablation` sweeps. See BENCHMARKS.md at the
//! workspace root for what each bench measures, how to run them, and
//! the results convention.
//!
//! The library target is intentionally empty today; shared fixtures go
//! here when benches start needing them. (`unsafe_code`/`missing_docs`
//! policy comes from `[workspace.lints]`, as for every member crate.)
