//! Persistent-repository benchmarks (DESIGN.md §8): the three
//! lifecycle costs of a 32-schema corpus.
//!
//! * `cold_build` — prepare all 32 schemas from scratch and execute
//!   the full 496-pair worklist (what every run costs without
//!   persistence);
//! * `warm_load` — reopen the saved snapshot and answer the same 496
//!   pairs entirely from the persisted summary cache (zero executions);
//! * `incremental` — reopen the snapshot, replace one edited schema,
//!   and re-match: exactly the edited schema's 31 pairs execute.
//!
//! The snapshot is built once per process in a temp directory and
//! deleted on exit; each timed iteration re-opens it from disk, so
//! `warm_load` honestly pays deserialization (table, memo chunks,
//! prepared schemas, cached summaries), not just cache hits.

use criterion::{criterion_group, criterion_main, Criterion};
use cupid_core::CupidConfig;
use cupid_corpus::synthetic::{generate, SyntheticConfig};
use cupid_eval::configs;
use cupid_lexical::Thesaurus;
use cupid_model::Schema;
use cupid_repo::Repository;
use std::hint::black_box;
use std::path::PathBuf;

const SCHEMAS: usize = 32;
const LEAVES: usize = 24;

/// A 32-schema corpus: 16 generated pairs over the shared word pool,
/// renamed to unique repository keys.
fn corpus() -> Vec<Schema> {
    let mut out = Vec::with_capacity(SCHEMAS);
    for seed in 0..(SCHEMAS as u64 / 2) {
        let pair = generate(&SyntheticConfig::sized(LEAVES, 1000 + seed));
        for (half, mut s) in [("a", pair.source), ("b", pair.target)] {
            s.rename(format!("S{seed}{half}"));
            out.push(s);
        }
    }
    out
}

/// The edited variant of schema 0 used by the `incremental` leg.
fn edited_first(corpus: &[Schema]) -> Schema {
    let mut s = generate(&SyntheticConfig::sized(LEAVES, 99_999)).source;
    s.rename(corpus[0].name());
    s
}

fn cold_build(cfg: &CupidConfig, th: &Thesaurus, corpus: &[Schema], path: &PathBuf) -> usize {
    // The snapshot is never saved, but since DESIGN.md §10 every
    // mutation lands in the write-ahead journal — scrub it so each
    // iteration truly starts cold instead of replaying the last one.
    std::fs::remove_file(cupid_repo::journal::journal_path(path)).ok();
    let mut repo = Repository::open_or_create(path, cfg, th).expect("open");
    repo.add_corpus(corpus).expect("corpus prepares");
    let n = repo.match_all_pairs().len();
    assert_eq!(repo.pairs_executed(), n);
    n
}

fn bench_repo(c: &mut Criterion) {
    let cfg = configs::synthetic();
    let th = generate(&SyntheticConfig::sized(LEAVES, 1000)).thesaurus;
    let corpus = corpus();
    let edited = edited_first(&corpus);
    let dir = std::env::temp_dir().join(format!("cupid-bench-repo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let fresh_path = dir.join("fresh.repo"); // never saved: cold runs stay cold
    let snap_path = dir.join("warm.repo");

    // Build the snapshot the warm/incremental legs reopen.
    let (snapshot_bytes, total_pairs) = {
        let mut repo = Repository::open_or_create(&snap_path, &cfg, &th).expect("open");
        repo.add_corpus(&corpus).expect("corpus prepares");
        let n = repo.match_all_pairs().len();
        repo.save().expect("snapshot");
        (std::fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0), n)
    };

    let mut g = c.benchmark_group("repo");
    g.sample_size(10);
    g.bench_function(format!("cold_build/synthetic{SCHEMAS}"), |b| {
        b.iter(|| black_box(cold_build(&cfg, &th, &corpus, &fresh_path)))
    });
    g.bench_function(format!("warm_load/synthetic{SCHEMAS}"), |b| {
        b.iter(|| {
            let mut repo = Repository::open_or_create(&snap_path, &cfg, &th).expect("open");
            assert!(repo.was_loaded());
            let summaries = repo.match_all_pairs();
            assert_eq!(repo.pairs_executed(), 0, "warm load executes nothing");
            black_box(summaries.len())
        })
    });
    g.bench_function(format!("incremental/synthetic{SCHEMAS}"), |b| {
        b.iter(|| {
            // Scrub the journal so every iteration replays the pure
            // snapshot, not the previous iteration's unsaved replace.
            std::fs::remove_file(cupid_repo::journal::journal_path(&snap_path)).ok();
            let mut repo = Repository::open_or_create(&snap_path, &cfg, &th).expect("open");
            repo.replace(&edited).expect("replace");
            let summaries = repo.match_all_pairs();
            assert_eq!(repo.pairs_executed(), SCHEMAS - 1, "only the edited schema's pairs");
            black_box(summaries.len())
        })
    });
    g.finish();

    criterion::set_context("schemas", SCHEMAS);
    criterion::set_context("leaves_per_schema", LEAVES);
    criterion::set_context("total_pairs", total_pairs);
    criterion::set_context("incremental_pairs", SCHEMAS - 1);
    criterion::set_context("snapshot_bytes", snapshot_bytes);

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_repo);
criterion_main!(benches);
