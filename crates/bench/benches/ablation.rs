//! Ablation benches for the design choices DESIGN.md calls out:
//! leaf-count pruning, optionality, eager vs lazy expansion, and
//! leaf-depth limiting (immediate children vs full leaf sets).

use criterion::{criterion_group, criterion_main, Criterion};
use cupid_core::{lazy, linguistic, treematch, Cupid};
use cupid_corpus::{cidx_excel, thesauri};
use cupid_eval::configs;
use cupid_model::{expand, ExpandOptions};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    let th = thesauri::paper_thesaurus();
    let (s1, s2) = (cidx_excel::excel(), cidx_excel::cidx());

    type Mutator = fn(&mut cupid_core::CupidConfig);
    let variants: [(&str, Option<Mutator>); 4] = [
        ("baseline", None),
        ("no_pruning", Some(|c| c.leaf_ratio_prune = None)),
        ("no_optionality", Some(|c| c.use_optionality = false)),
        ("children_only", Some(|c| c.leaf_depth_limit = Some(1))),
    ];
    for (name, mutate) in variants {
        let mut cfg = configs::shallow_xml();
        if let Some(f) = mutate {
            f(&mut cfg);
        }
        let cupid = Cupid::with_config(cfg, th.clone());
        g.bench_function(name, |bch| {
            bch.iter(|| black_box(cupid.match_schemas(&s1, &s2).unwrap()))
        });
    }

    // eager vs lazy on the shared-type (Excel-as-source) direction
    let cfg = configs::shallow_xml();
    let t1 = expand(&s1, &ExpandOptions::none()).unwrap();
    let t2 = expand(&s2, &ExpandOptions::none()).unwrap();
    let la = linguistic::analyze(&s1, &s2, &th, &cfg);
    g.bench_function("expansion_eager", |bch| {
        bch.iter(|| black_box(treematch::tree_match(&t1, &t2, &la.lsim, &cfg)))
    });
    g.bench_function("expansion_lazy", |bch| {
        bch.iter(|| black_box(lazy::tree_match_lazy(&t1, &t2, &la.lsim, &cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
