//! Overload-shedding harness (DESIGN.md §12.2): drive the daemon at 2×
//! its admission capacity and compare the tail latency of *admitted*
//! requests under shedding against the unbounded-queue baseline.
//!
//! Two daemons run in sequence over the same warm snapshot, each driven
//! by `2 × max_inflight` closed-loop clients of top-k discovery frames
//! (server-heavy scoring, small responses — the offered concurrency
//! reaches the admission gate instead of dissipating client-side):
//!
//! * **shed** — `max_inflight` capped with a zero queue deadline:
//!   arrivals over the cap get the typed `Overloaded` frame instead of
//!   queueing. Admitted frames are recorded client-side; sheds are
//!   counted, not timed (they return in microseconds by design).
//! * **baseline** — no admission control: every arrival executes, so
//!   the same offered load queues inside the daemon and the client tail
//!   stretches with it.
//!
//! The population numbers (p50/p99/p999 of admitted frames, shed rate,
//! sustained req/s) are recorded into `BENCH_overload.json` through the
//! shim's context block — the acceptance gate is the *shed* p999
//! staying bounded while the baseline p999 absorbs the queueing. A
//! small `overload/admitted_frame` timed leg keeps a conventional mean
//! in the JSON for trend lines.

use criterion::{criterion_group, criterion_main, Criterion};
use cupid_corpus::synthetic::{generate, SyntheticConfig};
use cupid_eval::configs;
use cupid_model::Schema;
use cupid_repo::Repository;
use cupid_serve::{KindLatency, LatencyHistogram, ServeError, ServeOptions, ServePool, Server};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const SCHEMAS: usize = 32;
const LEAVES: usize = 16;
/// Top-k breadth per frame: discovery scores the whole pair index
/// server-side but returns a small frame, so clients spend their time
/// keeping requests in flight rather than deserializing — offered
/// concurrency actually reaches the admission gate.
const TOP_K: usize = 3;
/// The shedding daemon's in-flight cap. One slot keeps the experiment
/// honest on a single-core runner: overlap at the admission gate only
/// needs an arrival during an execution, not N-deep preemption nesting.
const INFLIGHT: usize = 1;
/// Closed-loop clients = 2× the in-flight capacity: half the offered
/// load must be shed (or queued, in the baseline) at any instant.
const CLIENTS: usize = INFLIGHT * 2;

fn smoke() -> bool {
    !std::env::args().any(|a| a == "--bench") || std::env::args().any(|a| a == "--smoke")
}

fn frames_per_client() -> usize {
    if smoke() {
        3
    } else {
        600
    }
}

fn corpus() -> Vec<Schema> {
    let mut out = Vec::with_capacity(SCHEMAS);
    for seed in 0..(SCHEMAS as u64 / 2) {
        let pair = generate(&SyntheticConfig::sized(LEAVES, 2000 + seed));
        for (half, mut s) in [("a", pair.source), ("b", pair.target)] {
            s.rename(format!("S{seed}{half}"));
            out.push(s);
        }
    }
    out
}

/// Drive `CLIENTS` closed-loop clients of top-k discovery frames
/// against `addr`; returns (admitted-frame latency histogram, shed
/// count, elapsed).
fn drive(addr: std::net::SocketAddr, frames: usize) -> (KindLatency, u64, Duration) {
    let pool = ServePool::new(addr.to_string(), CLIENTS);
    let shed = AtomicU64::new(0);
    let started = Instant::now();
    let merged = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let pool = &pool;
                let shed = &shed;
                s.spawn(move || {
                    let mut client = pool.checkout().expect("checkout");
                    let admitted = LatencyHistogram::new();
                    let mut done = 0;
                    while done < frames {
                        let frame_start = Instant::now();
                        match client.top_k(TOP_K) {
                            Ok(listing) => {
                                admitted.record(frame_start.elapsed());
                                black_box(listing.summaries.len());
                                done += 1;
                            }
                            Err(ServeError::Overloaded { .. }) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(other) => panic!("overload drive failed: {other}"),
                        }
                    }
                    admitted.snapshot("admitted_frame")
                })
            })
            .collect();
        let mut merged = KindLatency::empty("admitted_frame");
        for h in handles {
            merged.merge(&h.join().expect("drive client"));
        }
        merged
    });
    let elapsed = started.elapsed();
    pool.checkout().expect("connect").shutdown().expect("shutdown");
    (merged, shed.load(Ordering::Relaxed), elapsed)
}

fn bench_overload(c: &mut Criterion) {
    let cfg = configs::synthetic();
    let th = generate(&SyntheticConfig::sized(LEAVES, 2000)).thesaurus;
    let corpus = corpus();
    let dir = std::env::temp_dir().join(format!("cupid-bench-overload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap = dir.join("warm.repo");
    {
        let mut repo = Repository::open_or_create(&snap, &cfg, &th).expect("open");
        repo.add_corpus(&corpus).expect("corpus prepares");
        repo.match_all_pairs();
        repo.save().expect("snapshot");
    }
    let frames = frames_per_client();

    // Leg 1: shedding enabled — bounded in-flight, shed-don't-queue
    // (zero queue deadline): arrivals over the cap bounce immediately,
    // so admitted frames never sit behind a queue.
    let shed_opts = ServeOptions {
        max_connections: CLIENTS + 8,
        max_inflight: Some(INFLIGHT),
        queue_deadline: Duration::ZERO,
        ..ServeOptions::default()
    };
    let server = Server::bind("127.0.0.1:0", &snap, &cfg, &th, shed_opts).expect("bind shed");
    let addr = server.local_addr();
    let (shed_lat, shed_count, shed_elapsed) = std::thread::scope(|scope| {
        scope.spawn(move || server.run().expect("shed daemon"));
        drive(addr, frames)
    });

    // Leg 2: the unbounded-queue baseline over the same snapshot.
    let base_opts = ServeOptions { max_connections: CLIENTS + 8, ..ServeOptions::default() };
    let server = Server::bind("127.0.0.1:0", &snap, &cfg, &th, base_opts).expect("bind base");
    let addr = server.local_addr();
    let (base_lat, _, base_elapsed) = std::thread::scope(|scope| {
        scope.spawn(move || server.run().expect("baseline daemon"));
        drive(addr, frames)
    });

    if !smoke() {
        let total = (CLIENTS * frames) as f64;
        criterion::set_context("overload_clients", CLIENTS);
        criterion::set_context("overload_max_inflight", INFLIGHT);
        criterion::set_context("overload_top_k", TOP_K);
        criterion::set_context("overload_admitted_per_leg", CLIENTS * frames);
        criterion::set_context("shed_count", shed_count);
        criterion::set_context(
            "shed_rate",
            format!("{:.3}", shed_count as f64 / (shed_count as f64 + total)),
        );
        criterion::set_context("shed_admitted_p50_ns", shed_lat.quantile_ns(0.50));
        criterion::set_context("shed_admitted_p99_ns", shed_lat.quantile_ns(0.99));
        criterion::set_context("shed_admitted_p999_ns", shed_lat.quantile_ns(0.999));
        criterion::set_context(
            "shed_req_per_s",
            format!("{:.0}", total / shed_elapsed.as_secs_f64()),
        );
        criterion::set_context("baseline_admitted_p50_ns", base_lat.quantile_ns(0.50));
        criterion::set_context("baseline_admitted_p99_ns", base_lat.quantile_ns(0.99));
        criterion::set_context("baseline_admitted_p999_ns", base_lat.quantile_ns(0.999));
        criterion::set_context(
            "baseline_req_per_s",
            format!("{:.0}", total / base_elapsed.as_secs_f64()),
        );
    }

    // A conventional timed leg for trend lines: one admitted top-k
    // frame against an uncontended shedding daemon.
    let opts = ServeOptions {
        max_inflight: Some(INFLIGHT),
        queue_deadline: Duration::ZERO,
        ..ServeOptions::default()
    };
    let server = Server::bind("127.0.0.1:0", &snap, &cfg, &th, opts).expect("bind timed");
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().expect("timed daemon"));
        let pool = ServePool::new(addr.to_string(), 2);
        let mut g = c.benchmark_group("overload");
        g.sample_size(10);
        let mut client = pool.checkout().expect("checkout");
        g.bench_function("admitted_frame", |b| {
            b.iter(|| {
                let listing = client.top_k(TOP_K).expect("top_k");
                black_box(listing.summaries.len())
            })
        });
        g.finish();
        drop(client);
        pool.checkout().expect("connect").shutdown().expect("shutdown");
    });

    criterion::set_context("schemas", SCHEMAS);
    criterion::set_context("leaves_per_schema", LEAVES);
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_overload);
criterion_main!(benches);
