//! End-to-end benchmarks: the experiments behind Figures 1/2, Table 3
//! and Figure 8 — expansion + linguistic + TreeMatch + mapping
//! generation.

use criterion::{criterion_group, criterion_main, Criterion};
use cupid_core::Cupid;
use cupid_corpus::{cidx_excel, fig1, fig2, star_rdb, thesauri};
use cupid_eval::configs;
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");

    let cupid = Cupid::with_config(configs::shallow_xml(), fig1::thesaurus());
    let (a, b) = (fig1::po(), fig1::porder());
    g.bench_function("fig1", |bch| bch.iter(|| black_box(cupid.match_schemas(&a, &b).unwrap())));

    let cupid = Cupid::with_config(configs::shallow_xml(), thesauri::paper_thesaurus());
    let (a, b) = (fig2::po(), fig2::purchase_order());
    g.bench_function("fig2", |bch| bch.iter(|| black_box(cupid.match_schemas(&a, &b).unwrap())));

    let (a, b) = (cidx_excel::cidx(), cidx_excel::excel());
    g.bench_function("table3_cidx_excel", |bch| {
        bch.iter(|| black_box(cupid.match_schemas(&a, &b).unwrap()))
    });

    let cupid = Cupid::with_config(configs::relational(), thesauri::empty_thesaurus());
    let (a, b) = (star_rdb::rdb(), star_rdb::star());
    g.bench_function("fig8_star_rdb", |bch| {
        bch.iter(|| black_box(cupid.match_schemas(&a, &b).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
