//! Baseline-system benchmarks: DIKE and MOMIS/ARTEMIS on the Table 2/3
//! corpora, for cost comparison against Cupid.

use criterion::{criterion_group, criterion_main, Criterion};
use cupid_baselines::{Artemis, Dike};
use cupid_corpus::{canonical, cidx_excel, thesauri};
use cupid_eval::{adapters, configs};
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines");

    let case = canonical::case5();
    let lspd = cupid_baselines::Lspd::default();
    g.bench_function("dike_canonical5", |bch| {
        bch.iter(|| black_box(Dike::new().run(&case.schema1, &case.schema2, &lspd)))
    });
    let senses = cupid_baselines::SenseDictionary::default();
    g.bench_function("artemis_canonical5", |bch| {
        bch.iter(|| black_box(Artemis::new().run(&case.schema1, &case.schema2, &senses)))
    });

    let (s1, s2) = (cidx_excel::cidx(), cidx_excel::excel());
    let lspd =
        adapters::lspd_from_cupid(&s1, &s2, &thesauri::paper_thesaurus(), &configs::shallow_xml());
    g.bench_function("dike_cidx_excel", |bch| {
        bch.iter(|| black_box(Dike::new().run(&s1, &s2, &lspd)))
    });
    let senses = adapters::momis_senses_cidx_excel();
    g.bench_function("artemis_cidx_excel", |bch| {
        bch.iter(|| black_box(Artemis::new().run(&s1, &s2, &senses)))
    });
    g.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
