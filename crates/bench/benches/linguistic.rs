//! Linguistic-phase benchmarks (§5): normalization, categorization and
//! lsim-table construction per corpus pair.
//!
//! The unprefixed ids run the interned production engine
//! ([`analyze`]); the `naive/` ids run the retained string-based
//! reference ([`analyze_naive`]) on the same pairs, so one bench run
//! shows the memoization win directly.

use criterion::{criterion_group, criterion_main, Criterion};
use cupid_core::linguistic::{analyze, analyze_naive};
use cupid_corpus::{cidx_excel, fig2, star_rdb, thesauri};
use cupid_eval::configs;
use std::hint::black_box;

fn bench_linguistic(c: &mut Criterion) {
    let mut g = c.benchmark_group("linguistic");
    let cfg = configs::shallow_xml();

    let (a, b) = (fig2::po(), fig2::purchase_order());
    let th = thesauri::paper_thesaurus();
    g.bench_function("fig2", |bch| bch.iter(|| black_box(analyze(&a, &b, &th, &cfg))));
    g.bench_function("naive/fig2", |bch| bch.iter(|| black_box(analyze_naive(&a, &b, &th, &cfg))));

    let (a, b) = (cidx_excel::cidx(), cidx_excel::excel());
    g.bench_function("cidx_excel", |bch| bch.iter(|| black_box(analyze(&a, &b, &th, &cfg))));
    g.bench_function("naive/cidx_excel", |bch| {
        bch.iter(|| black_box(analyze_naive(&a, &b, &th, &cfg)))
    });

    let (a, b) = (star_rdb::rdb(), star_rdb::star());
    let empty = thesauri::empty_thesaurus();
    let rcfg = configs::relational();
    g.bench_function("star_rdb", |bch| bch.iter(|| black_box(analyze(&a, &b, &empty, &rcfg))));
    g.bench_function("naive/star_rdb", |bch| {
        bch.iter(|| black_box(analyze_naive(&a, &b, &empty, &rcfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_linguistic);
criterion_main!(benches);
