//! Observability overhead (DESIGN.md §13.5): the cost of request
//! tracing on the daemon's hottest path.
//!
//! Two daemons serve the same warm 32-schema snapshot: one with
//! tracing enabled (the default) and one started with `tracing: false`
//! (the `--no-trace` kill switch). Each leg ships the serve bench's
//! batched `match_pair` worklist — [`REQUESTS`] cached pair lookups in
//! one batch frame per iteration — so the measured delta is pure
//! instrumentation: eight `Instant` reads per request, the per-(kind,
//! stage) histogram folds, and the slow-log admission check. The
//! acceptance bar for PR 9 is a tracing-on mean within 5% of
//! tracing-off (and of the pre-PR baseline in
//! `benchmarks/pr9-before/BENCH_serve.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use cupid_corpus::synthetic::{generate, SyntheticConfig};
use cupid_eval::configs;
use cupid_model::Schema;
use cupid_repo::Repository;
use cupid_serve::{ServeClient, ServeOptions, Server};
use std::hint::black_box;

const SCHEMAS: usize = 32;
const LEAVES: usize = 24;
/// Requests per timed iteration, shipped as one batch frame.
const REQUESTS: usize = 64;

/// Same corpus construction as the `serve` bench, so the two benches'
/// batched legs are directly comparable.
fn corpus() -> Vec<Schema> {
    let mut out = Vec::with_capacity(SCHEMAS);
    for seed in 0..(SCHEMAS as u64 / 2) {
        let pair = generate(&SyntheticConfig::sized(LEAVES, 1000 + seed));
        for (half, mut s) in [("a", pair.source), ("b", pair.target)] {
            s.rename(format!("S{seed}{half}"));
            out.push(s);
        }
    }
    out
}

fn bench_obs(c: &mut Criterion) {
    let cfg = configs::synthetic();
    let th = generate(&SyntheticConfig::sized(LEAVES, 1000)).thesaurus;
    let corpus = corpus();
    let names: Vec<String> = corpus.iter().map(|s| s.name().to_string()).collect();
    let dir = std::env::temp_dir().join(format!("cupid-bench-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap = dir.join("warm.repo");

    {
        let mut repo = Repository::open_or_create(&snap, &cfg, &th).expect("open");
        repo.add_corpus(&corpus).expect("corpus prepares");
        repo.match_all_pairs();
        repo.save().expect("snapshot");
    }

    let worklist: Vec<(String, String)> = (0..REQUESTS)
        .map(|r| {
            let i = (r * 3) % names.len();
            let j = (i + 1 + (r % (names.len() - 1))) % names.len();
            let (i, j) = if i < j { (i, j) } else { (j, i) };
            (names[i].clone(), names[j].clone())
        })
        .collect();

    let mut g = c.benchmark_group("obs");
    g.sample_size(10);
    for (leg, tracing) in [("tracing_on", true), ("tracing_off", false)] {
        let options = ServeOptions { tracing, ..ServeOptions::default() };
        let server = Server::bind("127.0.0.1:0", &snap, &cfg, &th, options).expect("bind");
        let addr = server.local_addr();
        std::thread::scope(|scope| {
            scope.spawn(move || server.run().expect("daemon run"));
            let mut client = ServeClient::connect(addr).expect("connect");
            g.bench_function(format!("match_pair_batched/{leg}"), |b| {
                b.iter(|| {
                    let entries = client.match_pairs(&worklist).expect("batch");
                    let mut served = 0usize;
                    for entry in entries {
                        let summary = entry.expect("entry ok");
                        served += 1;
                        black_box(summary.best_wsim());
                    }
                    black_box(served)
                })
            });
            client.shutdown().expect("shutdown");
        });
    }
    g.finish();

    criterion::set_context("schemas", SCHEMAS);
    criterion::set_context("leaves_per_schema", LEAVES);
    criterion::set_context("requests_per_iter", REQUESTS);

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
