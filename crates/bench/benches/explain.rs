//! Explainability overhead (DESIGN.md §14.4): what provenance capture
//! costs, and what the zero-explain hot path pays for its existence.
//!
//! Explanations are produced by a separate entry point
//! (`MatchSession::explain_pair`), so the match path itself should be
//! untouched by the feature. Two legs over the same warm session make
//! both halves of that claim measurable:
//!
//! - `match_pair/off` — the plain match path with explanations never
//!   requested. The acceptance bar for PR 10 is a mean within
//!   run-to-run noise of the pre-change baseline
//!   (`benchmarks/pr10-before/BENCH_explain.json`).
//! - `explain_pair/on` — the instrumented re-execution, measuring the
//!   full provenance capture (score decomposition, token-pair
//!   attribution, structural context) per pair.

use criterion::{criterion_group, criterion_main, Criterion};
use cupid_core::MatchSession;
use cupid_corpus::synthetic::{generate, SyntheticConfig};
use cupid_eval::configs;
use cupid_model::Schema;
use std::hint::black_box;

const SCHEMAS: usize = 16;
const LEAVES: usize = 24;

fn corpus() -> Vec<Schema> {
    let mut out = Vec::with_capacity(SCHEMAS);
    for seed in 0..(SCHEMAS as u64 / 2) {
        let pair = generate(&SyntheticConfig::sized(LEAVES, 1000 + seed));
        for (half, mut s) in [("a", pair.source), ("b", pair.target)] {
            s.rename(format!("S{seed}{half}"));
            out.push(s);
        }
    }
    out
}

fn bench_explain(c: &mut Criterion) {
    let cfg = configs::synthetic();
    let th = generate(&SyntheticConfig::sized(LEAVES, 1000)).thesaurus;
    let corpus = corpus();
    let mut session = MatchSession::new(&cfg, &th);
    let ids = session.add_corpus(&corpus).expect("corpus prepares");
    let worklist: Vec<_> =
        (0..ids.len()).flat_map(|i| ((i + 1)..ids.len()).map(move |j| (i, j))).collect();
    // Warm the token-similarity memo so both legs measure pair
    // execution, not first-touch memoization.
    for &(i, j) in &worklist {
        black_box(session.match_pair(ids[i], ids[j]));
    }

    let mut g = c.benchmark_group("explain");
    g.sample_size(10);
    g.bench_function("match_pair/off", |b| {
        b.iter(|| {
            let mut best = 0.0f64;
            for &(i, j) in &worklist {
                let summary = session.match_pair(ids[i], ids[j]);
                best = best.max(summary.best_wsim());
            }
            black_box(best)
        })
    });
    g.bench_function("explain_pair/on", |b| {
        b.iter(|| {
            let mut mappings = 0usize;
            for &(i, j) in &worklist {
                let ex = session.explain_pair(ids[i], ids[j]);
                assert!(ex.recomposes_exactly());
                mappings += ex.mappings.len();
            }
            black_box(mappings)
        })
    });
    g.finish();

    criterion::set_context("schemas", SCHEMAS);
    criterion::set_context("leaves_per_schema", LEAVES);
    criterion::set_context("pairs_per_iter", worklist.len());
}

criterion_group!(benches, bench_explain);
criterion_main!(benches);
