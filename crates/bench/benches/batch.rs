//! Batch-matching benchmarks (DESIGN.md §7): the same all-pairs
//! worklist run as independent `Cupid::match_schemas` calls
//! (`independent/*`) versus one `MatchSession` (`session/*`), so a
//! single recorded run shows the corpus-scale win directly.
//!
//! Two corpora: the paper's eight schemas (Figures 1/2, CIDX/Excel,
//! RDB/Star — 28 pairs) and an eight-schema synthetic corpus (28
//! pairs, ~32 leaves per schema).
//! `session/*` runs single-threaded (pure shared-memo win);
//! `session_mt/*` adds sharded multi-threaded pair execution. After the
//! timed runs, the session's cache statistics are recorded into the
//! JSON context block via the shim's `set_context` extension.

use criterion::{criterion_group, criterion_main, Criterion};
use cupid_core::{Cupid, CupidConfig};
use cupid_corpus::synthetic::{generate, SyntheticConfig};
use cupid_corpus::{cidx_excel, fig1, fig2, star_rdb, thesauri};
use cupid_eval::configs;
use cupid_lexical::Thesaurus;
use cupid_model::Schema;
use std::hint::black_box;

/// The paper's eight schemas as one corpus.
fn paper_corpus() -> Vec<Schema> {
    vec![
        fig1::po(),
        fig1::porder(),
        fig2::po(),
        fig2::purchase_order(),
        cidx_excel::cidx(),
        cidx_excel::excel(),
        star_rdb::rdb(),
        star_rdb::star(),
    ]
}

/// An eight-schema synthetic corpus (four generated pairs sharing one
/// word pool), ~32 leaves per schema — 28 pairs, the same worklist
/// shape as the paper corpus.
fn synthetic_corpus() -> Vec<Schema> {
    [7u64, 8, 9, 10]
        .iter()
        .flat_map(|&seed| {
            let pair = generate(&SyntheticConfig::sized(32, seed));
            [pair.source, pair.target]
        })
        .collect()
}

/// The all-pairs worklist run as independent single-pair matches — the
/// pre-session baseline every corpus harness had to pay.
fn independent_all_pairs(cupid: &Cupid, corpus: &[Schema]) -> usize {
    let mut mappings = 0usize;
    for i in 0..corpus.len() {
        for j in (i + 1)..corpus.len() {
            let out = cupid.match_schemas(&corpus[i], &corpus[j]).unwrap();
            mappings += out.leaf_mappings.len();
        }
    }
    mappings
}

/// The same worklist through one session (prepare corpus + all pairs).
fn session_all_pairs(cupid: &Cupid, corpus: &[Schema], threads: usize) -> usize {
    let mut session = cupid.session().threads(threads);
    session.add_corpus(corpus).unwrap();
    session.match_all_pairs().iter().map(|s| s.leaf_mappings.len()).sum()
}

fn bench_corpus(
    c: &mut Criterion,
    label: &str,
    cfg: CupidConfig,
    th: Thesaurus,
    corpus: &[Schema],
) {
    let mut g = c.benchmark_group("batch");
    g.sample_size(20);
    let cupid = Cupid::with_config(cfg, th);
    g.bench_function(format!("independent/{label}"), |b| {
        b.iter(|| black_box(independent_all_pairs(&cupid, corpus)))
    });
    g.bench_function(format!("session/{label}"), |b| {
        b.iter(|| black_box(session_all_pairs(&cupid, corpus, 1)))
    });
    // Floor at 2 so the sharded code path is exercised (and its
    // overhead measured honestly) even on single-CPU machines; the
    // actual count lands in the JSON context.
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 8));
    g.bench_function(format!("session_mt/{label}"), |b| {
        b.iter(|| black_box(session_all_pairs(&cupid, corpus, threads)))
    });
    g.finish();

    // Record the session's cache statistics (satellite of DESIGN.md §7:
    // the denominator of the memoization win) into the JSON context.
    let mut session = cupid.session().threads(1);
    session.add_corpus(corpus).unwrap();
    let n_pairs = session.match_all_pairs().len();
    let stats = session.stats();
    criterion::set_context(format!("{label}.schemas"), stats.schemas);
    criterion::set_context(format!("{label}.pairs"), n_pairs);
    criterion::set_context(format!("{label}.vocab_size"), stats.vocab_size);
    criterion::set_context(
        format!("{label}.distinct_pairs_computed"),
        stats.distinct_pairs_computed,
    );
    // SimStore memory footprint (chunks materialize lazily; DESIGN.md
    // §7): how much the whole-corpus memo actually committed.
    criterion::set_context(format!("{label}.sim_chunks"), stats.sim_chunks);
    criterion::set_context(format!("{label}.sim_bytes"), stats.sim_bytes);
    criterion::set_context("session_mt.threads", threads);
}

fn bench_batch(c: &mut Criterion) {
    bench_corpus(c, "paper8", configs::shallow_xml(), thesauri::paper_thesaurus(), &paper_corpus());
    bench_corpus(
        c,
        "synthetic8x32",
        configs::synthetic(),
        synthetic_thesaurus(),
        &synthetic_corpus(),
    );
}

/// One thesaurus for the whole synthetic corpus.
fn synthetic_thesaurus() -> Thesaurus {
    // The generator registers exactly the entries its perturbations
    // used; for a corpus we take the union by re-generating the pairs
    // and merging is unnecessary — the shared word pool means the first
    // pair's thesaurus already covers the bulk. Matching quality is not
    // what this bench measures, so any fixed thesaurus works; use the
    // seed-7 pair's.
    generate(&SyntheticConfig::sized(32, 7)).thesaurus
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
