//! Durability benchmarks (DESIGN.md §10): what one acknowledged
//! mutation costs under each autosave strategy, on a warm 32-schema
//! corpus with its full 496-pair match cache.
//!
//! * `autosave_journal` — the PR's daemon default: one mutation becomes
//!   one appended journal record plus one `fsync` of the journal file.
//! * `autosave_fullsave` — the strategy it replaces: the same mutation
//!   re-encodes and rewrites the entire snapshot (temp + `fsync` +
//!   rename + directory `fsync`) and resets the journal.
//! * `compaction` — the deferred cost the journal strategy still pays:
//!   folding a 16-record journal into a fresh snapshot with one save.
//!
//! The mutations-per-second ratio of the first two legs is the
//! headline number in BENCHMARKS.md; the third shows compaction is a
//! (tunable) batch cost, not a per-mutation one.

use criterion::{criterion_group, criterion_main, Criterion};
use cupid_corpus::synthetic::{generate, SyntheticConfig};
use cupid_eval::configs;
use cupid_model::Schema;
use cupid_repo::Repository;
use std::hint::black_box;

const SCHEMAS: usize = 32;
const LEAVES: usize = 24;
const COMPACT_BATCH: usize = 16;

/// The same 32-schema corpus as the `repo` bench.
fn corpus() -> Vec<Schema> {
    let mut out = Vec::with_capacity(SCHEMAS);
    for seed in 0..(SCHEMAS as u64 / 2) {
        let pair = generate(&SyntheticConfig::sized(LEAVES, 1000 + seed));
        for (half, mut s) in [("a", pair.source), ("b", pair.target)] {
            s.rename(format!("S{seed}{half}"));
            out.push(s);
        }
    }
    out
}

/// Two distinct bodies for schema 0; alternating between them makes
/// every benched replace a real content change (identical replaces
/// journal nothing).
fn variants(corpus: &[Schema]) -> [Schema; 2] {
    let mut a = generate(&SyntheticConfig::sized(LEAVES, 99_999)).source;
    a.rename(corpus[0].name());
    [corpus[0].clone(), a]
}

fn bench_journal(c: &mut Criterion) {
    let cfg = configs::synthetic();
    let th = generate(&SyntheticConfig::sized(LEAVES, 1000)).thesaurus;
    let corpus = corpus();
    let edits = variants(&corpus);
    let dir = std::env::temp_dir().join(format!("cupid-bench-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // One warm snapshot per strategy, full match cache included, so
    // the fullsave leg honestly re-encodes what a live daemon holds.
    let mut snapshot_bytes = 0;
    let mut open_warm = |tag: &str| {
        let path = dir.join(format!("{tag}.repo"));
        let mut repo = Repository::open_or_create(&path, &cfg, &th).expect("open");
        repo.add_corpus(&corpus).expect("corpus prepares");
        repo.match_all_pairs();
        repo.save().expect("snapshot");
        snapshot_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        repo
    };

    let mut g = c.benchmark_group("journal");
    g.sample_size(10);

    {
        let mut repo = open_warm("journal");
        repo.set_compact_after(None); // isolate the append path
        let mut flip = 0usize;
        g.bench_function(format!("autosave_journal/replace{SCHEMAS}"), |b| {
            b.iter(|| {
                flip ^= 1;
                repo.replace(&edits[flip]).expect("replace");
                repo.sync_journal().expect("journal fsync");
                black_box(repo.durability().journal_records)
            })
        });
    }

    {
        let mut repo = open_warm("fullsave");
        let mut flip = 0usize;
        g.bench_function(format!("autosave_fullsave/replace{SCHEMAS}"), |b| {
            b.iter(|| {
                flip ^= 1;
                repo.replace(&edits[flip]).expect("replace");
                repo.save().expect("full snapshot save");
                black_box(repo.durability().compactions)
            })
        });
    }

    {
        let mut repo = open_warm("compaction");
        repo.set_compact_after(None); // the bench folds explicitly
        let mut flip = 0usize;
        g.bench_function(format!("compaction/fold{COMPACT_BATCH}"), |b| {
            b.iter(|| {
                for _ in 0..COMPACT_BATCH {
                    flip ^= 1;
                    repo.replace(&edits[flip]).expect("replace");
                    repo.sync_journal().expect("journal fsync");
                }
                repo.save().expect("compaction");
                black_box(repo.durability().compactions)
            })
        });
    }

    g.finish();

    criterion::set_context("schemas", SCHEMAS);
    criterion::set_context("leaves_per_schema", LEAVES);
    criterion::set_context("snapshot_bytes", snapshot_bytes);
    criterion::set_context("compact_batch", COMPACT_BATCH);

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_journal);
criterion_main!(benches);
