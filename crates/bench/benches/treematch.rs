//! TreeMatch benchmarks (§6): the structural phase per corpus pair, with
//! linguistic analysis precomputed.

use criterion::{criterion_group, criterion_main, Criterion};
use cupid_core::{linguistic, treematch};
use cupid_corpus::{cidx_excel, fig2, star_rdb, thesauri};
use cupid_eval::configs;
use cupid_model::{expand, ExpandOptions};
use std::hint::black_box;

fn bench_treematch(c: &mut Criterion) {
    let mut g = c.benchmark_group("treematch");

    let cfg = configs::shallow_xml();
    let th = thesauri::paper_thesaurus();
    for (name, s1, s2, opts) in [
        ("fig2", fig2::po(), fig2::purchase_order(), ExpandOptions::none()),
        ("cidx_excel", cidx_excel::cidx(), cidx_excel::excel(), ExpandOptions::none()),
    ] {
        let t1 = expand(&s1, &opts).unwrap();
        let t2 = expand(&s2, &opts).unwrap();
        let la = linguistic::analyze(&s1, &s2, &th, &cfg);
        g.bench_function(name, |bch| {
            bch.iter(|| black_box(treematch::tree_match(&t1, &t2, &la.lsim, &cfg)))
        });
    }

    let rcfg = configs::relational();
    let empty = thesauri::empty_thesaurus();
    let (s1, s2) = (star_rdb::rdb(), star_rdb::star());
    let t1 = expand(&s1, &ExpandOptions::all()).unwrap();
    let t2 = expand(&s2, &ExpandOptions::all()).unwrap();
    let la = linguistic::analyze(&s1, &s2, &empty, &rcfg);
    g.bench_function("star_rdb_with_join_views", |bch| {
        bch.iter(|| black_box(treematch::tree_match(&t1, &t2, &la.lsim, &rcfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_treematch);
criterion_main!(benches);
