//! Scalability sweep (§10 future work): full pipeline over synthetic
//! pairs of doubling size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cupid_core::Cupid;
use cupid_corpus::synthetic::{generate, SyntheticConfig};
use cupid_eval::configs;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("treematch_scaling");
    g.sample_size(10);
    for size in [16usize, 32, 64, 128, 256] {
        let pair = generate(&SyntheticConfig::sized(size, 42));
        let cupid = Cupid::with_config(configs::synthetic(), pair.thesaurus.clone());
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |bch, _| {
            bch.iter(|| black_box(cupid.match_schemas(&pair.source, &pair.target).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
