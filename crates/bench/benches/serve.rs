//! Daemon throughput (DESIGN.md §9.5, §11): requests/sec against a
//! warm 32-schema corpus, at 1, 2 and 4 concurrent client threads,
//! unary and batched.
//!
//! One daemon serves the whole benchmark from a snapshot in which
//! every pair summary is already cached — the interactive steady state
//! a resident matcher exists for — so `match_pair` legs measure the
//! serving stack (frame encode/decode, checksums, the `RwLock` read
//! path, loopback TCP), not pair execution; `top_k` legs add the
//! discovery-index walk per request. Each timed iteration fans
//! [`REQUESTS`] requests out across the leg's client threads over
//! pre-connected streams; requests/sec = `REQUESTS / mean time`
//! (the `requests_per_iter` context key records the numerator).

use criterion::{criterion_group, criterion_main, Criterion};
use cupid_corpus::synthetic::{generate, SyntheticConfig};
use cupid_eval::configs;
use cupid_model::Schema;
use cupid_repo::Repository;
use cupid_serve::{ServeClient, ServeOptions, Server};
use std::hint::black_box;
use std::sync::Mutex;

const SCHEMAS: usize = 32;
const LEAVES: usize = 24;
/// Requests per timed iteration (split across the leg's clients).
const REQUESTS: usize = 64;

/// Same corpus construction as the `repo` bench: 16 generated pairs
/// over the shared word pool, renamed to unique repository keys.
fn corpus() -> Vec<Schema> {
    let mut out = Vec::with_capacity(SCHEMAS);
    for seed in 0..(SCHEMAS as u64 / 2) {
        let pair = generate(&SyntheticConfig::sized(LEAVES, 1000 + seed));
        for (half, mut s) in [("a", pair.source), ("b", pair.target)] {
            s.rename(format!("S{seed}{half}"));
            out.push(s);
        }
    }
    out
}

fn bench_serve(c: &mut Criterion) {
    let cfg = configs::synthetic();
    let th = generate(&SyntheticConfig::sized(LEAVES, 1000)).thesaurus;
    let corpus = corpus();
    let names: Vec<String> = corpus.iter().map(|s| s.name().to_string()).collect();
    let dir = std::env::temp_dir().join(format!("cupid-bench-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap = dir.join("warm.repo");

    // Warm snapshot: every pair executed and cached.
    {
        let mut repo = Repository::open_or_create(&snap, &cfg, &th).expect("open");
        repo.add_corpus(&corpus).expect("corpus prepares");
        let total = repo.match_all_pairs().len();
        repo.save().expect("snapshot");
        criterion::set_context("total_pairs", total);
    }

    let server =
        Server::bind("127.0.0.1:0", &snap, &cfg, &th, ServeOptions::default()).expect("bind");
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().expect("daemon run"));

        let mut g = c.benchmark_group("serve");
        g.sample_size(10);
        for clients in [1usize, 2, 4] {
            // Pre-connected clients, reused across iterations; each
            // bench thread locks its own.
            let pool: Vec<Mutex<ServeClient>> = (0..clients)
                .map(|_| Mutex::new(ServeClient::connect(addr).expect("connect")))
                .collect();
            g.bench_function(format!("match_pair/clients{clients}"), |b| {
                b.iter(|| {
                    let served = std::thread::scope(|s| {
                        let handles: Vec<_> = pool
                            .iter()
                            .enumerate()
                            .map(|(w, slot)| {
                                let names = &names;
                                s.spawn(move || {
                                    let mut client = slot.lock().unwrap_or_else(|e| e.into_inner());
                                    let mut served = 0usize;
                                    for r in 0..REQUESTS / clients {
                                        let i = (w * 7 + r * 3) % names.len();
                                        let j = (i + 1 + (r % (names.len() - 1))) % names.len();
                                        let (i, j) = if i < j { (i, j) } else { (j, i) };
                                        let summary =
                                            client.match_pair(&names[i], &names[j]).expect("match");
                                        served += 1;
                                        black_box(summary.best_wsim());
                                    }
                                    served
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().expect("client")).sum::<usize>()
                    });
                    black_box(served)
                })
            });
            // Same worklist as the unary leg, shipped as ONE batch
            // frame per client per iteration: the round-trip and the
            // read-lock/memo-clone amortization the batch path buys.
            let worklists: Vec<Vec<(String, String)>> = (0..clients)
                .map(|w| {
                    (0..REQUESTS / clients)
                        .map(|r| {
                            let i = (w * 7 + r * 3) % names.len();
                            let j = (i + 1 + (r % (names.len() - 1))) % names.len();
                            let (i, j) = if i < j { (i, j) } else { (j, i) };
                            (names[i].clone(), names[j].clone())
                        })
                        .collect()
                })
                .collect();
            g.bench_function(format!("match_pair_batched/clients{clients}"), |b| {
                b.iter(|| {
                    let served = std::thread::scope(|s| {
                        let handles: Vec<_> = pool
                            .iter()
                            .zip(&worklists)
                            .map(|(slot, pairs)| {
                                s.spawn(move || {
                                    let mut client = slot.lock().unwrap_or_else(|e| e.into_inner());
                                    let entries = client.match_pairs(pairs).expect("batch");
                                    let mut served = 0usize;
                                    for entry in entries {
                                        let summary = entry.expect("entry ok");
                                        served += 1;
                                        black_box(summary.best_wsim());
                                    }
                                    served
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().expect("client")).sum::<usize>()
                    });
                    black_box(served)
                })
            });
            g.bench_function(format!("top_k/clients{clients}"), |b| {
                b.iter(|| {
                    let served = std::thread::scope(|s| {
                        let handles: Vec<_> = pool
                            .iter()
                            .map(|slot| {
                                s.spawn(move || {
                                    let mut client = slot.lock().unwrap_or_else(|e| e.into_inner());
                                    let mut served = 0usize;
                                    for _ in 0..(REQUESTS / 8) / clients {
                                        let listing = client.top_k(3).expect("top-k");
                                        served += 1;
                                        black_box(listing.summaries.len());
                                    }
                                    served
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().expect("client")).sum::<usize>()
                    });
                    black_box(served)
                })
            });
        }
        g.finish();

        ServeClient::connect(addr).expect("connect").shutdown().expect("shutdown");
    });

    criterion::set_context("schemas", SCHEMAS);
    criterion::set_context("leaves_per_schema", LEAVES);
    criterion::set_context("match_pair_requests_per_iter", REQUESTS);
    criterion::set_context("match_pair_batched_requests_per_iter", REQUESTS);
    criterion::set_context("top_k_requests_per_iter", REQUESTS / 8);
    criterion::set_context("top_k_k", 3);

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
