//! Soak harness (DESIGN.md §11.4): replay hundreds of thousands of
//! batched requests from dozens of simulated clients against one
//! resident daemon, and report tail latency, not just the mean.
//!
//! The replay runs once, outside the criterion timing loop — a soak is
//! a *population* measurement, so its output is the latency histogram
//! (p50/p99/p999 per batch frame, client-side) and sustained req/s,
//! recorded into `BENCH_soak.json` through the shim's `context` block.
//! Every client thread records each frame round-trip into its own
//! [`cupid_serve::LatencyHistogram`] and the per-client snapshots fold
//! together with [`cupid_serve::KindLatency::merge`] — the same
//! fixed-bucket log2 histograms the daemon keeps per request kind, so
//! the client-observed tail can be compared directly against the
//! daemon-side `batch` histogram fetched through the `Stats` frame
//! (both are reported). A small `soak/batched_frame` benchmark then
//! times a single 64-entry batch round-trip so the JSON also carries a
//! conventional mean for trend lines.
//!
//! Under `--smoke` (CI) the replay shrinks to a few hundred requests;
//! smoke runs record nothing, exactly like every other bench.

use criterion::{criterion_group, criterion_main, Criterion};
use cupid_corpus::synthetic::{generate, SyntheticConfig};
use cupid_eval::configs;
use cupid_model::Schema;
use cupid_repo::Repository;
use cupid_serve::{KindLatency, LatencyHistogram, ServeOptions, ServePool, Server};
use std::hint::black_box;
use std::time::Instant;

const SCHEMAS: usize = 32;
const LEAVES: usize = 24;
/// Entries per batch frame.
const BATCH: usize = 64;

/// Smoke mode: bench binary run directly, or `--smoke` passed (the CI
/// flag) — mirrors the criterion shim's own detection so the replay
/// sizes itself before the harness takes over.
fn smoke() -> bool {
    !std::env::args().any(|a| a == "--bench") || std::env::args().any(|a| a == "--smoke")
}

/// (clients, frames per client): ~300k requests measured, a few
/// hundred in smoke mode.
fn soak_shape() -> (usize, usize) {
    if smoke() {
        (4, 2)
    } else {
        (24, 200)
    }
}

fn corpus() -> Vec<Schema> {
    let mut out = Vec::with_capacity(SCHEMAS);
    for seed in 0..(SCHEMAS as u64 / 2) {
        let pair = generate(&SyntheticConfig::sized(LEAVES, 1000 + seed));
        for (half, mut s) in [("a", pair.source), ("b", pair.target)] {
            s.rename(format!("S{seed}{half}"));
            out.push(s);
        }
    }
    out
}

fn bench_soak(c: &mut Criterion) {
    let cfg = configs::synthetic();
    let th = generate(&SyntheticConfig::sized(LEAVES, 1000)).thesaurus;
    let corpus = corpus();
    let names: Vec<String> = corpus.iter().map(|s| s.name().to_string()).collect();
    let dir = std::env::temp_dir().join(format!("cupid-bench-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap = dir.join("warm.repo");
    {
        let mut repo = Repository::open_or_create(&snap, &cfg, &th).expect("open");
        repo.add_corpus(&corpus).expect("corpus prepares");
        repo.match_all_pairs();
        repo.save().expect("snapshot");
    }

    let (clients, frames_per_client) = soak_shape();
    let total_requests = clients * frames_per_client * BATCH;
    // Per-client worklists over the cached pair space, offset per
    // client so the daemon sees interleaved, not identical, streams.
    let worklist_for = |w: usize| -> Vec<(String, String)> {
        (0..BATCH)
            .map(|r| {
                let i = (w * 7 + r * 3) % names.len();
                let j = (i + 1 + (r % (names.len() - 1))) % names.len();
                let (i, j) = if i < j { (i, j) } else { (j, i) };
                (names[i].clone(), names[j].clone())
            })
            .collect()
    };

    let server = Server::bind(
        "127.0.0.1:0",
        &snap,
        &cfg,
        &th,
        ServeOptions { max_connections: clients + 8, ..ServeOptions::default() },
    )
    .expect("bind");
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().expect("daemon run"));
        let pool = ServePool::new(addr.to_string(), clients);

        // The replay: every client hammers batch frames, recording each
        // round-trip into its own histogram (no shared state on the hot
        // path).
        let started = Instant::now();
        let merged = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|w| {
                    let pool = &pool;
                    let pairs = worklist_for(w);
                    s.spawn(move || {
                        let mut client = pool.checkout().expect("checkout");
                        let frame_latency = LatencyHistogram::new();
                        for _ in 0..frames_per_client {
                            let frame_start = Instant::now();
                            let entries = client.match_pairs(&pairs).expect("batch");
                            frame_latency.record(frame_start.elapsed());
                            black_box(entries.len());
                        }
                        frame_latency.snapshot("client_batch_frame")
                    })
                })
                .collect();
            let mut merged = KindLatency::empty("client_batch_frame");
            for h in handles {
                merged.merge(&h.join().expect("soak client"));
            }
            merged
        });
        let elapsed = started.elapsed();

        // Daemon-side view of the same load, through the Stats frame:
        // the `batch` wall histogram plus its per-stage attribution
        // (PR 9), which says where daemon-side time actually goes and —
        // by subtraction from the client-observed frame latency — how
        // much of the client p50 is the wire and the accept queue
        // rather than daemon work.
        let (daemon_batch, batch_stages) = {
            let mut client = pool.checkout().expect("checkout");
            let stats = client.stats().expect("stats");
            let wall = stats
                .latencies
                .iter()
                .find(|l| l.kind == "batch")
                .cloned()
                .unwrap_or_else(|| KindLatency::empty("batch"));
            let stages: Vec<KindLatency> = stats
                .stage_latencies
                .iter()
                .filter(|s| s.kind.starts_with("batch/"))
                .cloned()
                .collect();
            (wall, stages)
        };

        if !smoke() {
            let req_per_s = total_requests as f64 / elapsed.as_secs_f64();
            criterion::set_context("soak_clients", clients);
            criterion::set_context("soak_batch_entries", BATCH);
            criterion::set_context("soak_total_requests", total_requests);
            criterion::set_context("soak_elapsed_s", format!("{:.3}", elapsed.as_secs_f64()));
            criterion::set_context("soak_req_per_s", format!("{req_per_s:.0}"));
            criterion::set_context("soak_frame_p50_ns", merged.quantile_ns(0.50));
            criterion::set_context("soak_frame_p99_ns", merged.quantile_ns(0.99));
            criterion::set_context("soak_frame_p999_ns", merged.quantile_ns(0.999));
            criterion::set_context("soak_frame_mean_ns", merged.mean_ns());
            criterion::set_context("daemon_batch_p50_ns", daemon_batch.quantile_ns(0.50));
            criterion::set_context("daemon_batch_p99_ns", daemon_batch.quantile_ns(0.99));
            criterion::set_context("daemon_batch_p999_ns", daemon_batch.quantile_ns(0.999));
            criterion::set_context("daemon_batch_count", daemon_batch.count);
            // Stage attribution: mean ns per batch frame spent in each
            // daemon stage, so the JSON records where the daemon-side
            // slice of the client p50 goes (DESIGN.md §13.1).
            for s in &batch_stages {
                let stage = s.kind.split_once('/').map(|(_, st)| st).unwrap_or(&s.kind);
                let per_frame = s.total_ns / daemon_batch.count.max(1);
                criterion::set_context(format!("daemon_batch_stage_{stage}_ns"), per_frame);
            }
            let attributed: u64 = batch_stages.iter().map(|s| s.total_ns).sum();
            criterion::set_context(
                "daemon_batch_attributed_ns",
                attributed / daemon_batch.count.max(1),
            );
        }

        // A conventional timed leg so the JSON carries a mean to trend:
        // one 64-entry batch frame, single client.
        let mut g = c.benchmark_group("soak");
        g.sample_size(10);
        let pairs = worklist_for(0);
        let mut client = pool.checkout().expect("checkout");
        g.bench_function("batched_frame", |b| {
            b.iter(|| {
                let entries = client.match_pairs(&pairs).expect("batch");
                black_box(entries.len())
            })
        });
        g.finish();
        drop(client);

        pool.checkout().expect("connect").shutdown().expect("shutdown");
    });

    criterion::set_context("schemas", SCHEMAS);
    criterion::set_context("leaves_per_schema", LEAVES);
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_soak);
criterion_main!(benches);
