//! A conservative English suffix stemmer.
//!
//! Section 5.1 of the paper puts names *"into a canonical form by stemming
//! and tokenization"*, and Section 9.3 notes that *"the tokenization done
//! by Cupid, followed by stemming"* helps select word meanings. Schema
//! element names are dominated by noun plurals (`Lines`/`Line`,
//! `Items`/`Item`, `Territories`/`Territory`) and a few verbal forms
//! (`Shipping`/`Ship`, `Billing`/`Bill`), so we implement a deliberately
//! conservative stemmer: plural reduction plus `-ing`/`-ed` stripping with
//! consonant-doubling repair. Over-stemming is worse than under-stemming
//! for matching — a false token merge produces false element matches —
//! so every rule requires a minimum remaining stem length.

/// Stem a single lower-case token.
///
/// The input is expected to be lower case ASCII (the tokenizer guarantees
/// this); non-ASCII input is returned unchanged.
///
/// ```
/// use cupid_lexical::stem;
/// assert_eq!(stem("lines"), "line");
/// assert_eq!(stem("items"), "item");
/// assert_eq!(stem("territories"), "territory");
/// assert_eq!(stem("shipping"), "ship");
/// assert_eq!(stem("address"), "address"); // -ss is not a plural
/// ```
pub fn stem(token: &str) -> String {
    if !token.is_ascii() || token.len() < 3 {
        return token.to_string();
    }
    let mut s = token.to_string();
    s = step_plural(&s);
    s = step_ing_ed(&s);
    s
}

/// Plural reduction: `-ies` → `-y`, `-sses`/`-xes`/`-ches`/`-shes` → drop
/// `es`, generic `-s` → drop (but never `-ss` or `-us`).
fn step_plural(s: &str) -> String {
    if let Some(base) = s.strip_suffix("ies") {
        if base.len() >= 2 {
            return format!("{base}y");
        }
    }
    for es_suffix in ["sses", "xes", "ches", "shes", "zes"] {
        if let Some(base) = s.strip_suffix(es_suffix) {
            // keep everything except the trailing "es"
            let keep = &s[..base.len() + es_suffix.len() - 2];
            if keep.len() >= 2 {
                return keep.to_string();
            }
        }
    }
    if s.ends_with('s') && !s.ends_with("ss") && !s.ends_with("us") && !s.ends_with("is") {
        let base = &s[..s.len() - 1];
        if base.len() >= 2 {
            return base.to_string();
        }
    }
    s.to_string()
}

/// Strip `-ing` / `-ed`, repairing doubled consonants (`shipping` →
/// `shipp` → `ship`). Requires at least three characters of stem and at
/// least one vowel in the remainder, so `string` and `red` survive.
fn step_ing_ed(s: &str) -> String {
    for suffix in ["ing", "ed"] {
        if let Some(base) = s.strip_suffix(suffix) {
            if base.len() >= 3 && contains_vowel(base) {
                let b = base.as_bytes();
                let n = b.len();
                // undo consonant doubling: shipp -> ship, billl never occurs
                if n >= 2
                    && b[n - 1] == b[n - 2]
                    && !is_vowel(b[n - 1])
                    && b[n - 1] != b's'
                    && b[n - 1] != b'l'
                    && b[n - 1] != b'z'
                {
                    return base[..n - 1].to_string();
                }
                return base.to_string();
            }
        }
    }
    s.to_string()
}

#[inline]
fn is_vowel(b: u8) -> bool {
    matches!(b, b'a' | b'e' | b'i' | b'o' | b'u')
}

fn contains_vowel(s: &str) -> bool {
    s.bytes().any(is_vowel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plurals_from_the_paper_figures() {
        // Figure 1 / Figure 2 / Figure 7 vocabulary
        assert_eq!(stem("lines"), "line");
        assert_eq!(stem("items"), "item");
        assert_eq!(stem("orders"), "order");
        assert_eq!(stem("customers"), "customer");
        assert_eq!(stem("products"), "product");
        assert_eq!(stem("territories"), "territory");
        assert_eq!(stem("brands"), "brand");
        assert_eq!(stem("employees"), "employee");
        assert_eq!(stem("methods"), "method");
    }

    #[test]
    fn non_plurals_survive() {
        assert_eq!(stem("address"), "address");
        assert_eq!(stem("status"), "status");
        assert_eq!(stem("analysis"), "analysis");
        assert_eq!(stem("ss"), "ss");
    }

    #[test]
    fn es_plurals() {
        assert_eq!(stem("boxes"), "box");
        assert_eq!(stem("addresses"), "address");
        assert_eq!(stem("branches"), "branch");
    }

    #[test]
    fn ing_and_ed_forms() {
        assert_eq!(stem("shipping"), "ship");
        assert_eq!(stem("billing"), "bill");
        assert_eq!(stem("invited"), "invit");
        assert_eq!(stem("deliver"), "deliver");
    }

    #[test]
    fn short_and_vowelless_tokens_untouched() {
        assert_eq!(stem("id"), "id");
        assert_eq!(stem("po"), "po");
        assert_eq!(stem("string"), "string"); // str has no vowel
        assert_eq!(stem("ing"), "ing");
    }

    #[test]
    fn ies_plural_keeps_y() {
        assert_eq!(stem("cities"), "city");
        assert_eq!(stem("quantities"), "quantity");
    }

    #[test]
    fn idempotent_on_paper_vocabulary() {
        for w in ["line", "item", "city", "ship", "address", "quantity", "territory"] {
            assert_eq!(stem(&stem(w)), stem(w), "stem not idempotent for {w}");
        }
    }

    #[test]
    fn non_ascii_passthrough() {
        assert_eq!(stem("straße"), "straße");
    }
}
