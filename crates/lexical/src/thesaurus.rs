//! The thesaurus substrate (Section 5).
//!
//! *"We use a thesaurus to help match names by identifying short-forms
//! (Qty for Quantity), acronyms (UoM for UnitOfMeasure) and synonyms (Bill
//! and Invoice)."* Each synonym/hypernym entry is *"annotated with a
//! coefficient in the range \[0,1\] that indicates the strength of the
//! relationship"*.
//!
//! The thesaurus also carries the normalization tables of Section 5.1:
//! abbreviation/acronym expansions, stop words (articles, prepositions,
//! conjunctions) and concept tags. A small default stop-word list ships
//! with [`Thesaurus::default`]; everything else starts empty.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::stem::stem;

/// Errors raised while building or parsing a thesaurus.
#[derive(Debug, Clone, PartialEq)]
pub enum ThesaurusError {
    /// A relationship coefficient was outside `[0, 1]`.
    CoefficientOutOfRange {
        /// First term of the offending entry.
        a: String,
        /// Second term of the offending entry.
        b: String,
        /// The rejected coefficient.
        coefficient: f64,
    },
    /// A line of the text format could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for ThesaurusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThesaurusError::CoefficientOutOfRange { a, b, coefficient } => {
                write!(f, "coefficient {coefficient} for ({a}, {b}) outside [0,1]")
            }
            ThesaurusError::Parse { line, message } => {
                write!(f, "thesaurus parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ThesaurusError {}

fn canon(term: &str) -> String {
    stem(&term.to_lowercase())
}

fn pair_key(a: &str, b: &str) -> (String, String) {
    let (a, b) = (canon(a), canon(b));
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A thesaurus: the auxiliary linguistic knowledge Cupid consumes.
///
/// All lookups are keyed on the canonical token form (lower case +
/// stemmed), so callers may query with surface forms.
#[derive(Debug, Clone, Default)]
pub struct Thesaurus {
    /// abbreviation/acronym → expansion token list (canonical forms).
    abbreviations: BTreeMap<String, Vec<String>>,
    /// Stop words: articles, prepositions, conjunctions.
    stopwords: BTreeSet<String>,
    /// token → concept name (canonical forms), e.g. price/cost/value → money.
    concepts: BTreeMap<String, String>,
    /// Symmetric synonym entries with strength coefficients.
    synonyms: BTreeMap<(String, String), f64>,
    /// Directed hypernym entries (specific → general) with coefficients.
    hypernyms: BTreeMap<(String, String), f64>,
}

impl Thesaurus {
    /// An empty thesaurus (no stop words either). Useful for the paper's
    /// "dropping the thesaurus" experiment (§9.3 conclusion 2).
    pub fn empty() -> Self {
        Thesaurus::default()
    }

    /// A thesaurus with only the default English stop-word list
    /// (articles, prepositions, conjunctions), no domain knowledge.
    pub fn with_default_stopwords() -> Self {
        let mut t = Thesaurus::default();
        for w in DEFAULT_STOPWORDS {
            t.stopwords.insert((*w).to_string());
        }
        t
    }

    /// Expansion for an abbreviation/acronym, if registered.
    pub fn expand(&self, token: &str) -> Option<&[String]> {
        self.abbreviations.get(&canon(token)).map(|v| v.as_slice())
    }

    /// Is this token a stop word (article/preposition/conjunction)?
    pub fn is_stopword(&self, token: &str) -> bool {
        self.stopwords.contains(&canon(token))
    }

    /// Concept tag for a token, if any.
    pub fn concept_of(&self, token: &str) -> Option<&str> {
        self.concepts.get(&canon(token)).map(String::as_str)
    }

    /// Thesaurus similarity between two tokens: exact canonical match is
    /// 1.0; otherwise the strongest synonym or hypernym entry (hypernyms
    /// are looked up in both directions). Returns `None` when the
    /// thesaurus has nothing to say — the caller then falls back to
    /// substring matching.
    pub fn token_sim(&self, a: &str, b: &str) -> Option<f64> {
        let (ca, cb) = (canon(a), canon(b));
        if ca == cb {
            return Some(1.0);
        }
        let key = if ca <= cb { (ca.clone(), cb.clone()) } else { (cb.clone(), ca.clone()) };
        let syn = self.synonyms.get(&key).copied();
        let hyp = self
            .hypernyms
            .get(&(ca.clone(), cb.clone()))
            .or_else(|| self.hypernyms.get(&(cb, ca)))
            .copied();
        match (syn, hyp) {
            (Some(s), Some(h)) => Some(s.max(h)),
            (Some(s), None) => Some(s),
            (None, Some(h)) => Some(h),
            (None, None) => None,
        }
    }

    /// Number of synonym + hypernym entries (diagnostics).
    pub fn relation_count(&self) -> usize {
        self.synonyms.len() + self.hypernyms.len()
    }

    /// Number of abbreviation entries (diagnostics).
    pub fn abbreviation_count(&self) -> usize {
        self.abbreviations.len()
    }

    /// Deterministic 64-bit fingerprint of the full thesaurus content
    /// (abbreviations, stop words, concepts, synonym and hypernym
    /// entries with their exact coefficient bits). Every table is a
    /// `BTreeMap`/`BTreeSet`, so iteration — and therefore the
    /// fingerprint — is independent of insertion order. Snapshots store
    /// this next to the config fingerprint: a persisted similarity memo
    /// is only valid for the exact thesaurus it was computed with, so a
    /// mismatch invalidates the snapshot (DESIGN.md §8).
    pub fn fingerprint(&self) -> u64 {
        let mut w = cupid_model::WireWriter::new();
        w.put_len(self.abbreviations.len());
        for (short, exp) in &self.abbreviations {
            w.put_str(short);
            w.put_len(exp.len());
            for word in exp {
                w.put_str(word);
            }
        }
        w.put_len(self.stopwords.len());
        for s in &self.stopwords {
            w.put_str(s);
        }
        w.put_len(self.concepts.len());
        for (token, concept) in &self.concepts {
            w.put_str(token);
            w.put_str(concept);
        }
        for table in [&self.synonyms, &self.hypernyms] {
            w.put_len(table.len());
            for ((a, b), coeff) in table {
                w.put_str(a);
                w.put_str(b);
                w.put_f64(*coeff);
            }
        }
        cupid_model::fnv1a(w.bytes())
    }

    /// Parse the plain-text thesaurus format. Lines:
    ///
    /// ```text
    /// # comment
    /// abbrev PO = purchase order
    /// syn invoice bill 1.0
    /// hyper customer person 0.8     # customer IS-A person
    /// concept money : price cost value
    /// stop of the an to
    /// ```
    pub fn parse(text: &str) -> Result<Self, ThesaurusError> {
        let mut b = ThesaurusBuilder::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw_line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let keyword = parts.next().unwrap_or("");
            let rest: Vec<&str> = parts.collect();
            let perr = |message: String| ThesaurusError::Parse { line: lineno, message };
            match keyword {
                "abbrev" => {
                    let eq = rest
                        .iter()
                        .position(|&w| w == "=")
                        .ok_or_else(|| perr("expected `abbrev SHORT = long form`".to_string()))?;
                    if eq != 1 || rest.len() < 3 {
                        return Err(perr("expected `abbrev SHORT = long form`".to_string()));
                    }
                    b = b.abbreviation(rest[0], &rest[eq + 1..]);
                }
                "syn" | "hyper" => {
                    if rest.len() != 3 {
                        return Err(perr(format!("expected `{keyword} TERM TERM COEFF`")));
                    }
                    let coeff: f64 = rest[2]
                        .parse()
                        .map_err(|_| perr(format!("bad coefficient `{}`", rest[2])))?;
                    b = if keyword == "syn" {
                        b.synonym(rest[0], rest[1], coeff)
                    } else {
                        b.hypernym(rest[0], rest[1], coeff)
                    };
                }
                "concept" => {
                    let colon = rest
                        .iter()
                        .position(|&w| w == ":")
                        .ok_or_else(|| perr("expected `concept NAME : term term…`".to_string()))?;
                    if colon != 1 || rest.len() < 3 {
                        return Err(perr("expected `concept NAME : term term…`".to_string()));
                    }
                    for term in &rest[colon + 1..] {
                        b = b.concept(term, rest[0]);
                    }
                }
                "stop" => {
                    for w in rest {
                        b = b.stopword(w);
                    }
                }
                other => return Err(perr(format!("unknown directive `{other}`"))),
            }
        }
        b.build()
    }
}

/// Default stop words: the articles, prepositions and conjunctions that
/// show up in schema element names (`UnitOfMeasure`, `DeliverTo`,
/// `DayOfWeek`...).
pub const DEFAULT_STOPWORDS: &[&str] = &[
    "a", "an", "the", "of", "to", "for", "in", "on", "at", "by", "and", "or", "per", "with", "from",
];

/// Fluent builder for [`Thesaurus`].
#[derive(Debug, Clone)]
pub struct ThesaurusBuilder {
    thesaurus: Thesaurus,
    error: Option<ThesaurusError>,
}

impl Default for ThesaurusBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ThesaurusBuilder {
    /// Start from the default stop-word list.
    pub fn new() -> Self {
        ThesaurusBuilder { thesaurus: Thesaurus::with_default_stopwords(), error: None }
    }

    /// Start from a completely empty thesaurus (no stop words).
    pub fn empty() -> Self {
        ThesaurusBuilder { thesaurus: Thesaurus::empty(), error: None }
    }

    /// Register an abbreviation/acronym expansion, e.g. `PO` → `purchase order`.
    pub fn abbreviation(mut self, short: &str, expansion: &[&str]) -> Self {
        let exp: Vec<String> = expansion.iter().map(|w| canon(w)).collect();
        if !exp.is_empty() {
            self.thesaurus.abbreviations.insert(canon(short), exp);
        }
        self
    }

    /// Register a symmetric synonym entry with a strength coefficient.
    pub fn synonym(mut self, a: &str, b: &str, coefficient: f64) -> Self {
        if !(0.0..=1.0).contains(&coefficient) {
            self.error.get_or_insert(ThesaurusError::CoefficientOutOfRange {
                a: a.to_string(),
                b: b.to_string(),
                coefficient,
            });
            return self;
        }
        self.thesaurus.synonyms.insert(pair_key(a, b), coefficient);
        self
    }

    /// Register a hypernym entry (`specific` IS-A `general`) with a
    /// strength coefficient.
    pub fn hypernym(mut self, specific: &str, general: &str, coefficient: f64) -> Self {
        if !(0.0..=1.0).contains(&coefficient) {
            self.error.get_or_insert(ThesaurusError::CoefficientOutOfRange {
                a: specific.to_string(),
                b: general.to_string(),
                coefficient,
            });
            return self;
        }
        self.thesaurus.hypernyms.insert((canon(specific), canon(general)), coefficient);
        self
    }

    /// Tag a token with a concept name (e.g. `price` → `money`).
    pub fn concept(mut self, token: &str, concept: &str) -> Self {
        self.thesaurus.concepts.insert(canon(token), canon(concept));
        self
    }

    /// Add a stop word.
    pub fn stopword(mut self, word: &str) -> Self {
        self.thesaurus.stopwords.insert(canon(word));
        self
    }

    /// Finish, returning the first error encountered (if any).
    pub fn build(self) -> Result<Thesaurus, ThesaurusError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.thesaurus),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_thesaurus() -> Thesaurus {
        // The CIDX–Excel experiment thesaurus: "the thesauri had a total of
        // 4 abbreviations (UOM, PO, Qty, Num) and 2 synonymy entries
        // (Invoice,Bill; Ship,Deliver)".
        ThesaurusBuilder::new()
            .abbreviation("UOM", &["unit", "of", "measure"])
            .abbreviation("PO", &["purchase", "order"])
            .abbreviation("Qty", &["quantity"])
            .abbreviation("Num", &["number"])
            .synonym("Invoice", "Bill", 1.0)
            .synonym("Ship", "Deliver", 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn abbreviation_expansion() {
        let t = paper_thesaurus();
        assert_eq!(t.expand("PO").unwrap(), ["purchase", "order"]);
        assert_eq!(t.expand("po").unwrap(), ["purchase", "order"]);
        assert_eq!(t.expand("Qty").unwrap(), ["quantity"]);
        assert!(t.expand("XYZ").is_none());
    }

    #[test]
    fn synonym_lookup_is_symmetric_and_stemmed() {
        let t = paper_thesaurus();
        assert_eq!(t.token_sim("Invoice", "Bill"), Some(1.0));
        assert_eq!(t.token_sim("bill", "invoice"), Some(1.0));
        // Stemming folds "billing"/"bills" onto "bill".
        assert_eq!(t.token_sim("bills", "invoices"), Some(1.0));
        assert_eq!(t.token_sim("shipping", "delivers"), Some(1.0));
    }

    #[test]
    fn exact_match_is_one_even_without_entries() {
        let t = Thesaurus::empty();
        assert_eq!(t.token_sim("city", "City"), Some(1.0));
        assert_eq!(t.token_sim("cities", "city"), Some(1.0));
        assert_eq!(t.token_sim("city", "street"), None);
    }

    #[test]
    fn hypernym_lookup_both_directions() {
        let t = ThesaurusBuilder::new().hypernym("customer", "person", 0.8).build().unwrap();
        assert_eq!(t.token_sim("customer", "person"), Some(0.8));
        assert_eq!(t.token_sim("person", "customer"), Some(0.8));
    }

    #[test]
    fn strongest_relation_wins() {
        let t =
            ThesaurusBuilder::new().synonym("a", "b", 0.5).hypernym("a", "b", 0.9).build().unwrap();
        assert_eq!(t.token_sim("a", "b"), Some(0.9));
    }

    #[test]
    fn coefficient_out_of_range_rejected() {
        let err = ThesaurusBuilder::new().synonym("a", "b", 1.5).build().unwrap_err();
        assert!(matches!(err, ThesaurusError::CoefficientOutOfRange { .. }));
    }

    #[test]
    fn stopwords_default_list() {
        let t = Thesaurus::with_default_stopwords();
        assert!(t.is_stopword("of"));
        assert!(t.is_stopword("To"));
        assert!(!t.is_stopword("order"));
        assert!(!Thesaurus::empty().is_stopword("of"));
    }

    #[test]
    fn concept_tagging() {
        let t = ThesaurusBuilder::new()
            .concept("price", "money")
            .concept("cost", "money")
            .concept("value", "money")
            .build()
            .unwrap();
        assert_eq!(t.concept_of("Price"), Some("money"));
        assert_eq!(t.concept_of("costs"), Some("money"));
        assert_eq!(t.concept_of("city"), None);
    }

    #[test]
    fn parse_text_format() {
        let t = Thesaurus::parse(
            "# experiment thesaurus\n\
             abbrev PO = purchase order\n\
             abbrev Qty = quantity\n\
             syn invoice bill 1.0\n\
             hyper customer person 0.8\n\
             concept money : price cost value\n\
             stop of to\n",
        )
        .unwrap();
        assert_eq!(t.expand("PO").unwrap(), ["purchase", "order"]);
        assert_eq!(t.token_sim("bill", "invoice"), Some(1.0));
        assert_eq!(t.token_sim("person", "customer"), Some(0.8));
        assert_eq!(t.concept_of("cost"), Some("money"));
        assert!(t.is_stopword("of"));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = Thesaurus::parse("syn a b\n").unwrap_err();
        assert!(matches!(err, ThesaurusError::Parse { line: 1, .. }));
        let err = Thesaurus::parse("\nfrobnicate x\n").unwrap_err();
        assert!(matches!(err, ThesaurusError::Parse { line: 2, .. }));
        let err = Thesaurus::parse("syn a b nan\n").unwrap_err();
        assert!(matches!(
            err,
            ThesaurusError::Parse { .. } | ThesaurusError::CoefficientOutOfRange { .. }
        ));
    }

    #[test]
    fn parse_rejects_bad_coefficient_range() {
        let err = Thesaurus::parse("syn a b 2.0\n").unwrap_err();
        assert!(matches!(err, ThesaurusError::CoefficientOutOfRange { .. }));
    }
}
