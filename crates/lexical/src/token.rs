//! Name tokens and the five token types of Section 5.1.

use std::fmt;

/// The five token types the paper assigns during normalization:
/// *"Each name token is also marked as being one of five token types:
/// number, special symbol (e.g. #), common word (prepositions and
/// conjunctions), concept (as explained earlier) or content (all the
/// rest)."*
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TokenType {
    /// Digit runs, e.g. the `4` in `Street4`.
    Number,
    /// Special symbols such as `#` or `%` that survive tokenization.
    SpecialSymbol,
    /// Articles, prepositions and conjunctions. Marked to be ignored
    /// during comparison, but still counted for per-type weighting.
    CommonWord,
    /// Synthetic tokens injected by concept tagging (e.g. `money` for an
    /// element whose name contains `price`, `cost` or `value`).
    Concept,
    /// Everything else — the semantically loaded part of the name.
    Content,
}

impl TokenType {
    /// All five types, in a fixed order usable for dense indexing.
    pub const ALL: [TokenType; 5] = [
        TokenType::Number,
        TokenType::SpecialSymbol,
        TokenType::CommonWord,
        TokenType::Concept,
        TokenType::Content,
    ];

    /// Dense index of this type in [`TokenType::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            TokenType::Number => 0,
            TokenType::SpecialSymbol => 1,
            TokenType::CommonWord => 2,
            TokenType::Concept => 3,
            TokenType::Content => 4,
        }
    }

    /// How [`crate::strsim::token_similarity`] treats this token type.
    /// This is the single source of truth shared by the direct
    /// (string-based) similarity and the interned
    /// [`crate::intern::TokenSimCache`], so the two paths cannot drift.
    #[inline]
    pub fn sim_class(self) -> SimClass {
        match self {
            TokenType::Number => SimClass::Number,
            TokenType::SpecialSymbol => SimClass::Special,
            TokenType::CommonWord | TokenType::Concept | TokenType::Content => SimClass::Word,
        }
    }
}

/// Similarity class of a token type (§5.2's token-type discipline):
/// `Number` and `Special` tokens match only exactly within their own
/// class; everything else is a `Word`, compared through the thesaurus
/// with the affix fallback. Two tokens with the same class and the same
/// canonical text are interchangeable for `sim(t1, t2)` — the invariant
/// [`crate::intern::TokenTable`] keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimClass {
    /// Compared via thesaurus lookup, then the affix fallback.
    Word,
    /// Digit runs: equal text or nothing.
    Number,
    /// Special symbols: equal text or nothing.
    Special,
}

impl SimClass {
    /// All classes, in a fixed order usable for dense indexing.
    pub const ALL: [SimClass; 3] = [SimClass::Word, SimClass::Number, SimClass::Special];

    /// Dense index of this class in [`SimClass::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            SimClass::Word => 0,
            SimClass::Number => 1,
            SimClass::Special => 2,
        }
    }
}

impl fmt::Display for TokenType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokenType::Number => "number",
            TokenType::SpecialSymbol => "special",
            TokenType::CommonWord => "common",
            TokenType::Concept => "concept",
            TokenType::Content => "content",
        };
        f.write_str(s)
    }
}

/// One normalized name token.
///
/// `text` is the canonical (lower-cased, stemmed, expanded) form used for
/// comparison; `raw` preserves the surface form for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    /// Canonical comparison form (lower case, stemmed).
    pub text: String,
    /// Original surface form as it appeared in the element name.
    pub raw: String,
    /// Token type assigned during normalization.
    pub ttype: TokenType,
}

impl Token {
    /// Construct a token whose raw form equals its canonical form.
    pub fn new(text: impl Into<String>, ttype: TokenType) -> Self {
        let text = text.into();
        Token { raw: text.clone(), text, ttype }
    }

    /// True for tokens that elimination marked to be ignored during
    /// comparison (articles, prepositions, conjunctions).
    #[inline]
    pub fn is_ignored(&self) -> bool {
        self.ttype == TokenType::CommonWord
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_type_indices_are_dense_and_unique() {
        let mut seen = [false; 5];
        for t in TokenType::ALL {
            assert!(!seen[t.index()], "duplicate index for {t}");
            seen[t.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn common_word_tokens_are_ignored() {
        assert!(Token::new("of", TokenType::CommonWord).is_ignored());
        assert!(!Token::new("order", TokenType::Content).is_ignored());
    }

    #[test]
    fn display_shows_canonical_text() {
        let t = Token { text: "quantity".into(), raw: "Qty".into(), ttype: TokenType::Content };
        assert_eq!(t.to_string(), "quantity");
    }

    #[test]
    fn sim_classes_partition_token_types() {
        assert_eq!(TokenType::Number.sim_class(), SimClass::Number);
        assert_eq!(TokenType::SpecialSymbol.sim_class(), SimClass::Special);
        for t in [TokenType::CommonWord, TokenType::Concept, TokenType::Content] {
            assert_eq!(t.sim_class(), SimClass::Word);
        }
        let mut seen = [false; 3];
        for c in SimClass::ALL {
            assert!(!seen[c.index()], "duplicate index for {c:?}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
