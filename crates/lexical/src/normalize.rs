//! The normalization pipeline of Section 5.1: tokenization → expansion →
//! elimination → concept tagging.
//!
//! The output of normalization is a [`NormalizedName`]: the set of name
//! tokens with their token types, plus the set of concepts the element was
//! tagged with. This is the unit the linguistic matcher compares.

use std::collections::BTreeSet;

use cupid_model::{WireError, WireReader, WireWriter};

use crate::intern::{token_id_from_wire, TokenId};
use crate::stem::stem;
use crate::thesaurus::Thesaurus;
use crate::token::{Token, TokenType};
use crate::tokenizer::Tokenizer;

/// A schema element name after normalization.
#[derive(Debug, Clone, Eq, Default)]
pub struct NormalizedName {
    /// All tokens (content, concept, number, special, common).
    pub tokens: Vec<Token>,
    /// Concept tags attached during normalization (canonical names).
    pub concepts: BTreeSet<String>,
    /// Interned ids, parallel to `tokens`, filled by
    /// [`crate::intern::TokenTable::intern_name`]; empty until interned.
    /// Ids are only meaningful relative to the table that produced them,
    /// which is why equality ignores this field.
    pub ids: Vec<TokenId>,
}

/// Equality compares the normalization output (tokens + concepts) only;
/// `ids` is a per-table cache, not part of the name's identity.
impl PartialEq for NormalizedName {
    fn eq(&self, other: &Self) -> bool {
        self.tokens == other.tokens && self.concepts == other.concepts
    }
}

impl NormalizedName {
    /// Tokens of a given type.
    pub fn tokens_of(&self, ttype: TokenType) -> impl Iterator<Item = &Token> {
        self.tokens.iter().filter(move |t| t.ttype == ttype)
    }

    /// Number of tokens of a given type.
    pub fn count_of(&self, ttype: TokenType) -> usize {
        self.tokens_of(ttype).count()
    }

    /// Comparison-relevant tokens (everything except eliminated common
    /// words).
    pub fn comparable_tokens(&self) -> impl Iterator<Item = &Token> {
        self.tokens.iter().filter(|t| !t.is_ignored())
    }

    /// True if the name normalized to nothing comparable (e.g. a name made
    /// only of separators and stop words).
    pub fn is_vacuous(&self) -> bool {
        self.comparable_tokens().next().is_none()
    }

    /// Canonical token texts, for diagnostics and tests.
    pub fn texts(&self) -> Vec<&str> {
        self.tokens.iter().map(|t| t.text.as_str()).collect()
    }

    /// Encode the name: tokens (canonical + raw text, type), concepts,
    /// and the interned id slice (empty when not interned).
    pub fn write_wire(&self, w: &mut WireWriter) {
        w.put_len(self.tokens.len());
        for t in &self.tokens {
            w.put_str(&t.text);
            w.put_str(&t.raw);
            w.put_u8(t.ttype.index() as u8);
        }
        w.put_len(self.concepts.len());
        for c in &self.concepts {
            w.put_str(c);
        }
        w.put_len(self.ids.len());
        for id in &self.ids {
            w.put_u32(id.index() as u32);
        }
    }

    /// Decode a name written by [`NormalizedName::write_wire`]. Ids are
    /// bounds-checked against `vocab` (the size of the table the
    /// snapshot was taken with).
    pub fn read_wire(r: &mut WireReader<'_>, vocab: usize) -> Result<NormalizedName, WireError> {
        let nt = r.get_len()?;
        let mut tokens = Vec::with_capacity(nt);
        for _ in 0..nt {
            let text = r.get_str()?;
            let raw = r.get_str()?;
            let ttype = match r.get_u8()? {
                c if (c as usize) < TokenType::ALL.len() => TokenType::ALL[c as usize],
                c => return Err(r.err(format!("unknown token type code {c}"))),
            };
            tokens.push(Token { text, raw, ttype });
        }
        let nc = r.get_len()?;
        let mut concepts = BTreeSet::new();
        for _ in 0..nc {
            concepts.insert(r.get_str()?);
        }
        let ni = r.get_len()?;
        if ni != 0 && ni != tokens.len() {
            return Err(r.err(format!("{ni} ids for {} tokens", tokens.len())));
        }
        let mut ids = Vec::with_capacity(ni);
        for _ in 0..ni {
            let raw_id = r.get_u32()?;
            ids.push(token_id_from_wire(r, raw_id, vocab)?);
        }
        Ok(NormalizedName { tokens, concepts, ids })
    }
}

/// The normalizer: a tokenizer plus a thesaurus.
///
/// Per Section 5.1:
/// * **Tokenization** — split the name into raw tokens.
/// * **Expansion** — abbreviations and acronyms are expanded
///   (`{PO, Lines}` → `{Purchase, Order, Lines}`).
/// * **Elimination** — articles, prepositions and conjunctions are marked
///   to be ignored during comparison (we keep them, typed `CommonWord`).
/// * **Tagging** — elements with a token related to a known concept are
///   tagged with the concept name; the tag is materialized as an extra
///   `Concept` token so the name-similarity formula sees it.
#[derive(Debug, Clone, Default)]
pub struct Normalizer {
    tokenizer: Tokenizer,
}

impl Normalizer {
    /// Normalizer with a custom tokenizer.
    pub fn new(tokenizer: Tokenizer) -> Self {
        Normalizer { tokenizer }
    }

    /// Normalize one element name against a thesaurus.
    pub fn normalize(&self, name: &str, thesaurus: &Thesaurus) -> NormalizedName {
        let mut out = NormalizedName::default();
        // Whole-name expansion first, so mixed-case acronyms (`UoM`) that
        // the tokenizer would split are still recognized.
        if let Some(expansion) = thesaurus.expand(name.trim()) {
            let expansion = expansion.to_vec();
            for word in &expansion {
                self.push_word(&mut out, word, name.trim(), thesaurus);
            }
            return out;
        }
        let raw = self.tokenizer.tokenize(name);
        for rt in raw {
            match rt.ttype {
                TokenType::Number | TokenType::SpecialSymbol => {
                    out.tokens.push(Token {
                        text: rt.text.to_lowercase(),
                        raw: rt.text,
                        ttype: rt.ttype,
                    });
                }
                _ => {
                    // Expansion happens on the surface form (pre-stem), so
                    // acronym casing like `UoM` is honoured.
                    if let Some(expansion) = thesaurus.expand(&rt.text) {
                        for word in expansion {
                            self.push_word(&mut out, word, &rt.text, thesaurus);
                        }
                    } else {
                        let canonical = stem(&rt.text.to_lowercase());
                        self.push_word(&mut out, &canonical, &rt.text, thesaurus);
                    }
                }
            }
        }
        out
    }

    /// Push one canonical word, classifying it (elimination) and tagging
    /// concepts.
    fn push_word(&self, out: &mut NormalizedName, word: &str, raw: &str, thesaurus: &Thesaurus) {
        let ttype =
            if thesaurus.is_stopword(word) { TokenType::CommonWord } else { TokenType::Content };
        out.tokens.push(Token { text: word.to_string(), raw: raw.to_string(), ttype });
        if let Some(concept) = thesaurus.concept_of(word) {
            if out.concepts.insert(concept.to_string()) {
                out.tokens.push(Token {
                    text: concept.to_string(),
                    raw: raw.to_string(),
                    ttype: TokenType::Concept,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thesaurus::ThesaurusBuilder;

    fn thesaurus() -> Thesaurus {
        ThesaurusBuilder::new()
            .abbreviation("PO", &["purchase", "order"])
            .abbreviation("Qty", &["quantity"])
            .abbreviation("UoM", &["unit", "of", "measure"])
            .concept("price", "money")
            .concept("cost", "money")
            .build()
            .unwrap()
    }

    fn norm(name: &str) -> NormalizedName {
        Normalizer::default().normalize(name, &thesaurus())
    }

    #[test]
    fn paper_example_expansion() {
        // "{PO, Lines} -> {Purchase, Order, Lines}" (then stemmed)
        let n = norm("POLines");
        assert_eq!(n.texts(), ["purchase", "order", "line"]);
    }

    #[test]
    fn acronym_expansion_uom() {
        // Whole-name expansion catches mixed-case acronyms the tokenizer
        // would split ("UoM for UnitOfMeasure", Section 4).
        let n = norm("UoM");
        assert_eq!(n.texts(), ["unit", "of", "measure"]);
        assert_eq!(norm("uom").texts(), ["unit", "of", "measure"]);
    }

    #[test]
    fn elimination_marks_common_words() {
        let n = norm("UnitOfMeasure");
        let texts = n.texts();
        assert_eq!(texts, ["unit", "of", "measure"]);
        assert_eq!(n.tokens[1].ttype, TokenType::CommonWord);
        let comparable: Vec<&str> = n.comparable_tokens().map(|t| t.text.as_str()).collect();
        assert_eq!(comparable, ["unit", "measure"]);
    }

    #[test]
    fn concept_tagging_adds_concept_token() {
        let n = norm("UnitPrice");
        assert!(n.concepts.contains("money"));
        assert!(n.tokens.iter().any(|t| t.ttype == TokenType::Concept && t.text == "money"));
    }

    #[test]
    fn concept_tag_not_duplicated() {
        let n = norm("PriceCost");
        assert_eq!(n.tokens.iter().filter(|t| t.ttype == TokenType::Concept).count(), 1);
    }

    #[test]
    fn numbers_and_specials_preserved() {
        let n = norm("Street4");
        assert_eq!(n.texts(), ["street", "4"]);
        assert_eq!(n.tokens[1].ttype, TokenType::Number);
    }

    #[test]
    fn stemming_applied_to_content() {
        assert_eq!(norm("Items").texts(), ["item"]);
        assert_eq!(norm("Lines").texts(), ["line"]);
    }

    #[test]
    fn vacuous_names() {
        let n = norm("of");
        assert!(n.is_vacuous());
        assert!(!norm("Order").is_vacuous());
        assert!(norm("").is_vacuous());
    }

    #[test]
    fn counts_by_type() {
        let n = norm("UnitOfMeasure4");
        assert_eq!(n.count_of(TokenType::Content), 2);
        assert_eq!(n.count_of(TokenType::CommonWord), 1);
        assert_eq!(n.count_of(TokenType::Number), 1);
    }
}
