//! Token interning and whole-match memoization of token similarity.
//!
//! Real schemas reuse a small token vocabulary ("customer", "order",
//! "address") across dozens of elements, yet the linguistic phase's
//! `ns(m1, m2)` recomputes `sim(t1, t2)` — a thesaurus lookup (which
//! canonicalizes and allocates) plus an affix byte-scan — for the full
//! token cross product of *every* compared element pair. This module
//! fixes that asymptotically (see DESIGN.md §6):
//!
//! * [`TokenTable`] interns each distinct `(similarity class, canonical
//!   text)` pair into a dense [`TokenId`]. The key is exactly the
//!   information [`crate::strsim::class_similarity`] depends on, so two
//!   tokens with the same id are interchangeable for `sim`.
//! * [`TokenSimCache`] lazily memoizes `sim` over a triangular
//!   `|V|·(|V|+1)/2` matrix of the interned vocabulary: each distinct
//!   token pair is computed exactly once per schema pair (symmetry of
//!   `sim` makes the triangular layout lossless), and every further
//!   comparison is a single array load.
//!
//! The interned fast path is bit-identical to the direct string path —
//! both call the same [`crate::strsim::class_similarity`] on the same
//! inputs — which `tests/linguistic_equivalence.rs` asserts over
//! randomized schemas and thesauri.

use std::collections::HashMap;

use crate::normalize::NormalizedName;
use crate::strsim::{class_similarity, AffixConfig};
use crate::thesaurus::Thesaurus;
use crate::token::{SimClass, Token};

/// Dense id of a distinct `(similarity class, canonical text)` pair in a
/// [`TokenTable`]. Ids are only meaningful relative to the table that
/// produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TokenId(u32);

impl TokenId {
    /// The dense index of this id (0-based, contiguous per table).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interner mapping `(similarity class, canonical token text)` to dense
/// [`TokenId`]s.
///
/// One table serves a whole match (both schemas plus category keywords),
/// so the vocabulary is shared and a [`TokenSimCache`] over it covers
/// every token comparison the linguistic phase will make. Future scale
/// directions (sharded/batched matching) reuse one table across pairs.
#[derive(Debug, Clone, Default)]
pub struct TokenTable {
    /// Per-[`SimClass`] text → id index (split per class so lookups can
    /// borrow `&str` without building a composite key).
    index: [HashMap<String, u32>; 3],
    /// id → (class, text), in interning order.
    entries: Vec<(SimClass, String)>,
}

impl TokenTable {
    /// An empty table.
    pub fn new() -> Self {
        TokenTable::default()
    }

    /// Number of distinct interned tokens (the vocabulary size `|V|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Intern a `(class, text)` pair, returning its dense id.
    pub fn intern(&mut self, class: SimClass, text: &str) -> TokenId {
        let map = &mut self.index[class.index()];
        if let Some(&id) = map.get(text) {
            return TokenId(id);
        }
        let id = u32::try_from(self.entries.len()).expect("vocabulary exceeds u32");
        map.insert(text.to_string(), id);
        self.entries.push((class, text.to_string()));
        TokenId(id)
    }

    /// Intern one token (by its similarity class and canonical text).
    #[inline]
    pub fn intern_token(&mut self, token: &Token) -> TokenId {
        self.intern(token.ttype.sim_class(), &token.text)
    }

    /// Intern every token of a normalized name, filling
    /// [`NormalizedName::ids`] (parallel to `tokens`). Idempotent:
    /// re-interning overwrites `ids` with identical values.
    pub fn intern_name(&mut self, name: &mut NormalizedName) {
        name.ids.clear();
        name.ids.reserve(name.tokens.len());
        for i in 0..name.tokens.len() {
            let id = self.intern(name.tokens[i].ttype.sim_class(), &name.tokens[i].text);
            name.ids.push(id);
        }
    }

    /// Id of an already-interned pair, if present.
    pub fn lookup(&self, class: SimClass, text: &str) -> Option<TokenId> {
        self.index[class.index()].get(text).map(|&id| TokenId(id))
    }

    /// Canonical text of an interned token.
    #[inline]
    pub fn text(&self, id: TokenId) -> &str {
        &self.entries[id.index()].1
    }

    /// Similarity class of an interned token.
    #[inline]
    pub fn class(&self, id: TokenId) -> SimClass {
        self.entries[id.index()].0
    }
}

/// Whole-match memo of `sim(t1, t2)` over an interned vocabulary.
///
/// Built once per schema pair after all names (and category keywords)
/// are interned; [`TokenSimCache::sim`] then computes each distinct
/// token pair at most once and answers every repeat from a dense
/// triangular matrix. Filling is lazy, so pairs never compared (e.g.
/// same-schema pairs) cost nothing.
#[derive(Debug)]
pub struct TokenSimCache<'a> {
    table: &'a TokenTable,
    thesaurus: &'a Thesaurus,
    affix: AffixConfig,
    /// Triangular `|V|·(|V|+1)/2` matrix; `NaN` marks "not yet
    /// computed" (`sim` itself is always in `[0, 1]`).
    sims: Vec<f64>,
    computed: usize,
}

impl<'a> TokenSimCache<'a> {
    /// A cache over the (fully interned) table's vocabulary.
    pub fn new(table: &'a TokenTable, thesaurus: &'a Thesaurus, affix: &AffixConfig) -> Self {
        let n = table.len();
        TokenSimCache {
            table,
            thesaurus,
            affix: *affix,
            sims: vec![f64::NAN; n * (n + 1) / 2],
            computed: 0,
        }
    }

    /// `sim(a, b)`, memoized. The first query of a distinct unordered
    /// pair computes [`class_similarity`]; repeats are one array load.
    #[inline]
    pub fn sim(&mut self, a: TokenId, b: TokenId) -> f64 {
        let (i, j) = if a.0 <= b.0 { (a.index(), b.index()) } else { (b.index(), a.index()) };
        let k = j * (j + 1) / 2 + i;
        let v = self.sims[k];
        if !v.is_nan() {
            return v;
        }
        let (ca, ta) = &self.table.entries[i];
        let (cb, tb) = &self.table.entries[j];
        let v = class_similarity(*ca, ta, *cb, tb, self.thesaurus, &self.affix);
        self.sims[k] = v;
        self.computed += 1;
        v
    }

    /// Vocabulary size `|V|` the cache spans.
    pub fn vocab_size(&self) -> usize {
        self.table.len()
    }

    /// Distinct token pairs actually computed so far (diagnostics: the
    /// denominator of the memoization win).
    pub fn distinct_pairs_computed(&self) -> usize {
        self.computed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strsim::token_similarity;
    use crate::thesaurus::ThesaurusBuilder;
    use crate::token::TokenType;
    use crate::Normalizer;

    fn tok(s: &str, t: TokenType) -> Token {
        Token::new(s, t)
    }

    #[test]
    fn interning_dedups_by_class_and_text() {
        let mut table = TokenTable::new();
        let a = table.intern_token(&tok("city", TokenType::Content));
        let b = table.intern_token(&tok("city", TokenType::Concept));
        let c = table.intern_token(&tok("city", TokenType::CommonWord));
        // all Word class with equal text: one entry
        assert_eq!(a, b);
        assert_eq!(a, c);
        // a number spelled "city" would be a different entry
        let d = table.intern(SimClass::Number, "city");
        assert_ne!(a, d);
        assert_eq!(table.len(), 2);
        assert_eq!(table.text(a), "city");
        assert_eq!(table.class(d), SimClass::Number);
        assert_eq!(table.lookup(SimClass::Word, "city"), Some(a));
        assert_eq!(table.lookup(SimClass::Word, "street"), None);
    }

    #[test]
    fn intern_name_fills_parallel_ids() {
        let t = ThesaurusBuilder::new().abbreviation("PO", &["purchase", "order"]).build().unwrap();
        let mut name = Normalizer::default().normalize("POLines", &t);
        assert!(name.ids.is_empty());
        let mut table = TokenTable::new();
        table.intern_name(&mut name);
        assert_eq!(name.ids.len(), name.tokens.len());
        for (tokn, &id) in name.tokens.iter().zip(&name.ids) {
            assert_eq!(table.text(id), tokn.text);
            assert_eq!(table.class(id), tokn.ttype.sim_class());
        }
        // idempotent
        let ids = name.ids.clone();
        table.intern_name(&mut name);
        assert_eq!(ids, name.ids);
    }

    #[test]
    fn cached_sim_matches_token_similarity_exactly() {
        let thesaurus = ThesaurusBuilder::new()
            .synonym("bill", "invoice", 1.0)
            .hypernym("customer", "person", 0.8)
            .build()
            .unwrap();
        let affix = AffixConfig::default();
        let tokens = [
            tok("bill", TokenType::Content),
            tok("invoice", TokenType::Content),
            tok("customer", TokenType::Content),
            tok("person", TokenType::Concept),
            tok("postalcode", TokenType::Content),
            tok("zipcode", TokenType::Content),
            tok("4", TokenType::Number),
            tok("3", TokenType::Number),
            tok("#", TokenType::SpecialSymbol),
        ];
        let mut table = TokenTable::new();
        let ids: Vec<TokenId> = tokens.iter().map(|t| table.intern_token(t)).collect();
        let mut cache = TokenSimCache::new(&table, &thesaurus, &affix);
        for (t1, &a) in tokens.iter().zip(&ids) {
            for (t2, &b) in tokens.iter().zip(&ids) {
                let direct = token_similarity(t1, t2, &thesaurus, &affix);
                let cached = cache.sim(a, b);
                assert_eq!(direct.to_bits(), cached.to_bits(), "{t1} vs {t2}");
            }
        }
    }

    #[test]
    fn cache_computes_each_distinct_pair_once() {
        let thesaurus = Thesaurus::empty();
        let affix = AffixConfig::default();
        let mut table = TokenTable::new();
        let a = table.intern(SimClass::Word, "street");
        let b = table.intern(SimClass::Word, "straight");
        let mut cache = TokenSimCache::new(&table, &thesaurus, &affix);
        assert_eq!(cache.distinct_pairs_computed(), 0);
        let v1 = cache.sim(a, b);
        assert_eq!(cache.distinct_pairs_computed(), 1);
        // repeat and symmetric queries hit the memo
        let v2 = cache.sim(a, b);
        let v3 = cache.sim(b, a);
        assert_eq!(cache.distinct_pairs_computed(), 1);
        assert_eq!(v1.to_bits(), v2.to_bits());
        assert_eq!(v1.to_bits(), v3.to_bits());
        // self-similarity of a word is 1.0
        assert_eq!(cache.sim(a, a), 1.0);
        assert_eq!(cache.vocab_size(), 2);
    }
}
