//! Token interning and whole-match memoization of token similarity.
//!
//! Real schemas reuse a small token vocabulary ("customer", "order",
//! "address") across dozens of elements, yet the linguistic phase's
//! `ns(m1, m2)` recomputes `sim(t1, t2)` — a thesaurus lookup (which
//! canonicalizes and allocates) plus an affix byte-scan — for the full
//! token cross product of *every* compared element pair. This module
//! fixes that asymptotically (see DESIGN.md §6):
//!
//! * [`TokenTable`] interns each distinct `(similarity class, canonical
//!   text)` pair into a dense [`TokenId`]. The key is exactly the
//!   information [`crate::strsim::class_similarity`] depends on, so two
//!   tokens with the same id are interchangeable for `sim`.
//! * [`TokenSimCache`] lazily memoizes `sim` over the triangular
//!   `|V|·(|V|+1)/2` index space of the interned vocabulary: each
//!   distinct token pair is computed exactly once (symmetry of `sim`
//!   makes the triangular layout lossless), and every further
//!   comparison is a single array load. The backing [`SimStore`]
//!   allocates in chunks on first touch, survives table growth, and is
//!   detachable, so one memo can persist across every pair of a batch
//!   session (DESIGN.md §7).
//!
//! The interned fast path is bit-identical to the direct string path —
//! both call the same [`crate::strsim::class_similarity`] on the same
//! inputs — which `tests/linguistic_equivalence.rs` asserts over
//! randomized schemas and thesauri.

use std::collections::HashMap;

use cupid_model::{WireError, WireReader, WireWriter};

use crate::normalize::NormalizedName;
use crate::strsim::{class_similarity, AffixConfig};
use crate::thesaurus::Thesaurus;
use crate::token::{SimClass, Token};

/// Dense id of a distinct `(similarity class, canonical text)` pair in a
/// [`TokenTable`]. Ids are only meaningful relative to the table that
/// produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TokenId(u32);

impl TokenId {
    /// The dense index of this id (0-based, contiguous per table).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct an id from a raw index (wire decoding within this
    /// crate and `cupid-core`; bounds are the caller's obligation).
    #[inline]
    pub(crate) fn from_raw(i: u32) -> Self {
        TokenId(i)
    }
}

/// Decode a token id written as a raw `u32` index, bounds-checked
/// against a vocabulary size. Shared by the wire decoders of this crate
/// and `cupid-core` (which cannot construct [`TokenId`] directly).
pub fn token_id_from_wire(
    r: &WireReader<'_>,
    raw: u32,
    vocab: usize,
) -> Result<TokenId, WireError> {
    if (raw as usize) < vocab {
        Ok(TokenId::from_raw(raw))
    } else {
        Err(r.err(format!("token id {raw} out of bounds (vocabulary {vocab})")))
    }
}

/// Interner mapping `(similarity class, canonical token text)` to dense
/// [`TokenId`]s.
///
/// One table serves a whole match (both schemas plus category keywords),
/// so the vocabulary is shared and a [`TokenSimCache`] over it covers
/// every token comparison the linguistic phase will make. Future scale
/// directions (sharded/batched matching) reuse one table across pairs.
#[derive(Debug, Clone, Default)]
pub struct TokenTable {
    /// Per-[`SimClass`] text → id index (split per class so lookups can
    /// borrow `&str` without building a composite key).
    index: [HashMap<String, u32>; 3],
    /// id → (class, text), in interning order.
    entries: Vec<(SimClass, String)>,
}

impl TokenTable {
    /// An empty table.
    pub fn new() -> Self {
        TokenTable::default()
    }

    /// Number of distinct interned tokens (the vocabulary size `|V|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimated heap bytes held by the table: entry texts and index
    /// keys plus their fixed per-entry overheads. A deterministic
    /// diagnostics gauge (served through the daemon's `Stats` frame and
    /// `/metrics`), not an allocator audit — hash-map capacity slack is
    /// not counted.
    pub fn approx_bytes(&self) -> usize {
        let entry_fixed = std::mem::size_of::<(SimClass, String)>();
        let key_fixed = std::mem::size_of::<String>() + std::mem::size_of::<u32>();
        let entries: usize = self.entries.iter().map(|(_, t)| t.len() + entry_fixed).sum();
        let index: usize =
            self.index.iter().flat_map(|m| m.keys()).map(|k| k.len() + key_fixed).sum();
        entries + index
    }

    /// Intern a `(class, text)` pair, returning its dense id.
    pub fn intern(&mut self, class: SimClass, text: &str) -> TokenId {
        let map = &mut self.index[class.index()];
        if let Some(&id) = map.get(text) {
            return TokenId(id);
        }
        let id = u32::try_from(self.entries.len()).expect("vocabulary exceeds u32");
        map.insert(text.to_string(), id);
        self.entries.push((class, text.to_string()));
        TokenId(id)
    }

    /// Intern one token (by its similarity class and canonical text).
    #[inline]
    pub fn intern_token(&mut self, token: &Token) -> TokenId {
        self.intern(token.ttype.sim_class(), &token.text)
    }

    /// Intern every token of a normalized name, filling
    /// [`NormalizedName::ids`] (parallel to `tokens`). Idempotent:
    /// re-interning overwrites `ids` with identical values.
    pub fn intern_name(&mut self, name: &mut NormalizedName) {
        name.ids.clear();
        name.ids.reserve(name.tokens.len());
        for i in 0..name.tokens.len() {
            let id = self.intern(name.tokens[i].ttype.sim_class(), &name.tokens[i].text);
            name.ids.push(id);
        }
    }

    /// Id of an already-interned pair, if present.
    pub fn lookup(&self, class: SimClass, text: &str) -> Option<TokenId> {
        self.index[class.index()].get(text).map(|&id| TokenId(id))
    }

    /// Canonical text of an interned token.
    #[inline]
    pub fn text(&self, id: TokenId) -> &str {
        &self.entries[id.index()].1
    }

    /// Similarity class of an interned token.
    #[inline]
    pub fn class(&self, id: TokenId) -> SimClass {
        self.entries[id.index()].0
    }

    /// Iterate every interned entry in id order — the stable iteration
    /// hook snapshots are built on: encoding, then re-interning in this
    /// order, reproduces the exact same id assignment.
    pub fn entries(&self) -> impl Iterator<Item = (TokenId, SimClass, &str)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, (c, t))| (TokenId::from_raw(i as u32), *c, t.as_str()))
    }

    /// Encode the table: every entry in id order.
    pub fn write_wire(&self, w: &mut WireWriter) {
        w.put_len(self.entries.len());
        for (c, t) in &self.entries {
            w.put_u8(c.index() as u8);
            w.put_str(t);
        }
    }

    /// Decode a table written by [`TokenTable::write_wire`]. Entries
    /// are re-interned in stored order, so every id comes back exactly
    /// as it was assigned — which is what keeps persisted id slices
    /// ([`NormalizedName::ids`] and the core's per-element id tables)
    /// valid against the decoded table.
    pub fn read_wire(r: &mut WireReader<'_>) -> Result<TokenTable, WireError> {
        let n = r.get_len()?;
        let mut table = TokenTable::new();
        for i in 0..n {
            let class = match r.get_u8()? {
                c if (c as usize) < SimClass::ALL.len() => SimClass::ALL[c as usize],
                c => return Err(r.err(format!("unknown sim class code {c}"))),
            };
            let text = r.get_str()?;
            let id = table.intern(class, &text);
            if id.index() != i {
                return Err(r.err(format!("duplicate interned entry at id {i}")));
            }
        }
        Ok(table)
    }
}

/// Entries per lazily-allocated chunk of the triangular similarity
/// matrix (4096 × 8 bytes = 32 KiB per chunk).
const CHUNK_BITS: usize = 12;
const CHUNK_LEN: usize = 1 << CHUNK_BITS;

/// The owned, growable backing store of a [`TokenSimCache`]: memoized
/// `sim` values over the triangular index space `k = j·(j+1)/2 + i`
/// (`i ≤ j`), allocated in fixed-size chunks on first touch instead of
/// as an eager `|V|·(|V|+1)/2` buffer — corpus-scale vocabularies would
/// otherwise commit quadratic memory up front (DESIGN.md §7).
///
/// Because `k` depends only on the pair `(i, j)`, not on the vocabulary
/// size, a store stays valid when its [`TokenTable`] grows: a
/// [`crate::intern`] session can interleave interning and matching and
/// keep the warm cache. The store carries no references, so it can be
/// detached from a cache ([`TokenSimCache::into_store`]), sent to a
/// worker thread, and merged back ([`SimStore::merge`]).
#[derive(Debug, Clone, Default)]
pub struct SimStore {
    /// `NaN` marks "not yet computed" (`sim` itself is always in
    /// `[0, 1]`); `None` marks a whole chunk never touched.
    chunks: Vec<Option<Box<[f64]>>>,
    computed: usize,
}

impl SimStore {
    /// An empty store.
    pub fn new() -> Self {
        SimStore::default()
    }

    /// Memoized value at triangular index `k`, or `NaN` if not yet
    /// computed.
    #[inline]
    fn get(&self, k: usize) -> f64 {
        match self.chunks.get(k >> CHUNK_BITS) {
            Some(Some(chunk)) => chunk[k & (CHUNK_LEN - 1)],
            _ => f64::NAN,
        }
    }

    /// Record a freshly computed value at triangular index `k`.
    #[inline]
    fn set(&mut self, k: usize, v: f64) {
        let c = k >> CHUNK_BITS;
        if c >= self.chunks.len() {
            self.chunks.resize(c + 1, None);
        }
        let chunk =
            self.chunks[c].get_or_insert_with(|| vec![f64::NAN; CHUNK_LEN].into_boxed_slice());
        chunk[k & (CHUNK_LEN - 1)] = v;
        self.computed += 1;
    }

    /// Distinct token pairs computed into this store (diagnostics: the
    /// denominator of the memoization win).
    pub fn distinct_pairs_computed(&self) -> usize {
        self.computed
    }

    /// Number of chunks actually allocated (touched at least once).
    pub fn allocated_chunks(&self) -> usize {
        self.chunks.iter().filter(|c| c.is_some()).count()
    }

    /// Bytes committed by the allocated chunks (the store's memory
    /// footprint, modulo the chunk directory itself).
    pub fn allocated_bytes(&self) -> usize {
        self.allocated_chunks() * CHUNK_LEN * std::mem::size_of::<f64>()
    }

    /// Encode the store: allocated chunks only, each as its directory
    /// index plus its raw `f64` bit patterns (`NaN` is the in-memory
    /// "not computed" sentinel and round-trips exactly, so no separate
    /// presence bitmap is needed).
    pub fn write_wire(&self, w: &mut WireWriter) {
        w.put_len(self.chunks.len());
        w.put_len(self.allocated_chunks());
        for (i, chunk) in self.chunks.iter().enumerate() {
            let Some(chunk) = chunk else { continue };
            w.put_u32(i as u32);
            for v in chunk.iter() {
                w.put_f64(*v);
            }
        }
    }

    /// Decode a store written by [`SimStore::write_wire`]. The computed
    /// count is rebuilt by counting non-`NaN` entries, so a decoded
    /// store reports the same [`SimStore::distinct_pairs_computed`] as
    /// the one that was saved.
    pub fn read_wire(r: &mut WireReader<'_>) -> Result<SimStore, WireError> {
        let dir_len = r.get_len()?;
        let present = r.get_len()?;
        if present > dir_len {
            return Err(r.err(format!("{present} chunks present but directory holds {dir_len}")));
        }
        let mut store = SimStore::new();
        store.chunks.resize(dir_len, None);
        for _ in 0..present {
            let idx = r.get_u32()? as usize;
            if idx >= dir_len {
                return Err(r.err(format!("chunk index {idx} out of bounds ({dir_len})")));
            }
            if store.chunks[idx].is_some() {
                return Err(r.err(format!("duplicate chunk index {idx}")));
            }
            let mut chunk = vec![f64::NAN; CHUNK_LEN].into_boxed_slice();
            for slot in chunk.iter_mut() {
                *slot = r.get_f64()?;
            }
            store.computed += chunk.iter().filter(|v| !v.is_nan()).count();
            store.chunks[idx] = Some(chunk);
        }
        Ok(store)
    }

    /// Fold another store into this one. Both stores memoize the same
    /// pure function over the same table, so wherever both have a value
    /// it is bit-identical; the union simply fills each store's gaps
    /// with the other's work. Used to merge per-shard caches back into
    /// the session store after sharded pair execution (DESIGN.md §7).
    pub fn merge(&mut self, other: SimStore) {
        if other.chunks.len() > self.chunks.len() {
            self.chunks.resize(other.chunks.len(), None);
        }
        for (slot, theirs) in self.chunks.iter_mut().zip(other.chunks) {
            let Some(theirs) = theirs else { continue };
            match slot {
                None => {
                    self.computed += theirs.iter().filter(|v| !v.is_nan()).count();
                    *slot = Some(theirs);
                }
                Some(ours) => {
                    // Flat branchless select over the chunk: each slot
                    // takes the other store's value iff ours is a NaN
                    // hole and theirs is not, counting fills as flag
                    // arithmetic — no data-dependent branch per slot,
                    // so the pass vectorizes over the 4 KiB chunks that
                    // dominate shard merges.
                    let mut filled = 0usize;
                    for (o, t) in ours.iter_mut().zip(theirs.iter()) {
                        let take = o.is_nan() && !t.is_nan();
                        *o = if take { *t } else { *o };
                        filled += usize::from(take);
                    }
                    self.computed += filled;
                }
            }
        }
    }
}

/// Whole-match memo of `sim(t1, t2)` over an interned vocabulary.
///
/// Built after the names (and category keywords) it will compare are
/// interned; [`TokenSimCache::sim`] then computes each distinct token
/// pair at most once and answers every repeat from the backing
/// [`SimStore`]. Filling is lazy — chunk allocation included — so
/// pairs never compared (e.g. same-schema pairs) cost nothing, and a
/// batch session can detach the store ([`TokenSimCache::into_store`])
/// to persist the memo across many schema pairs (DESIGN.md §7).
#[derive(Debug)]
pub struct TokenSimCache<'a> {
    table: &'a TokenTable,
    thesaurus: &'a Thesaurus,
    affix: AffixConfig,
    store: SimStore,
}

impl<'a> TokenSimCache<'a> {
    /// A cold cache over the table's vocabulary.
    pub fn new(table: &'a TokenTable, thesaurus: &'a Thesaurus, affix: &AffixConfig) -> Self {
        TokenSimCache::with_store(table, thesaurus, affix, SimStore::new())
    }

    /// A cache resuming from a previously detached [`SimStore`]. The
    /// store must come from a cache over the same (possibly since
    /// grown) table, thesaurus and affix configuration — triangular
    /// indices are only meaningful relative to the table's ids.
    pub fn with_store(
        table: &'a TokenTable,
        thesaurus: &'a Thesaurus,
        affix: &AffixConfig,
        store: SimStore,
    ) -> Self {
        TokenSimCache { table, thesaurus, affix: *affix, store }
    }

    /// Detach the backing store, e.g. to persist it across pairs in a
    /// batch session or to [`SimStore::merge`] it into another store.
    pub fn into_store(self) -> SimStore {
        self.store
    }

    /// `sim(a, b)`, memoized. The first query of a distinct unordered
    /// pair computes [`class_similarity`]; repeats are one array load.
    #[inline]
    pub fn sim(&mut self, a: TokenId, b: TokenId) -> f64 {
        let (i, j) = if a.0 <= b.0 { (a.index(), b.index()) } else { (b.index(), a.index()) };
        let k = j * (j + 1) / 2 + i;
        let v = self.store.get(k);
        if !v.is_nan() {
            return v;
        }
        let (ca, ta) = &self.table.entries[i];
        let (cb, tb) = &self.table.entries[j];
        let v = class_similarity(*ca, ta, *cb, tb, self.thesaurus, &self.affix);
        self.store.set(k, v);
        v
    }

    /// Vocabulary size `|V|` the cache spans.
    pub fn vocab_size(&self) -> usize {
        self.table.len()
    }

    /// Distinct token pairs actually computed so far (diagnostics: the
    /// denominator of the memoization win).
    pub fn distinct_pairs_computed(&self) -> usize {
        self.store.distinct_pairs_computed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strsim::token_similarity;
    use crate::thesaurus::ThesaurusBuilder;
    use crate::token::TokenType;
    use crate::Normalizer;

    fn tok(s: &str, t: TokenType) -> Token {
        Token::new(s, t)
    }

    #[test]
    fn interning_dedups_by_class_and_text() {
        let mut table = TokenTable::new();
        let a = table.intern_token(&tok("city", TokenType::Content));
        let b = table.intern_token(&tok("city", TokenType::Concept));
        let c = table.intern_token(&tok("city", TokenType::CommonWord));
        // all Word class with equal text: one entry
        assert_eq!(a, b);
        assert_eq!(a, c);
        // a number spelled "city" would be a different entry
        let d = table.intern(SimClass::Number, "city");
        assert_ne!(a, d);
        assert_eq!(table.len(), 2);
        assert_eq!(table.text(a), "city");
        assert_eq!(table.class(d), SimClass::Number);
        assert_eq!(table.lookup(SimClass::Word, "city"), Some(a));
        assert_eq!(table.lookup(SimClass::Word, "street"), None);
    }

    #[test]
    fn approx_bytes_tracks_interned_text() {
        let mut table = TokenTable::new();
        assert_eq!(table.approx_bytes(), 0);
        table.intern(SimClass::Word, "street");
        let one = table.approx_bytes();
        // Text is held twice (entry + index key) plus fixed overheads.
        assert!(one > 2 * "street".len(), "{one}");
        // Re-interning the same token allocates nothing new.
        table.intern(SimClass::Word, "street");
        assert_eq!(table.approx_bytes(), one);
        table.intern(SimClass::Word, "avenue");
        assert!(table.approx_bytes() > one);
    }

    #[test]
    fn intern_name_fills_parallel_ids() {
        let t = ThesaurusBuilder::new().abbreviation("PO", &["purchase", "order"]).build().unwrap();
        let mut name = Normalizer::default().normalize("POLines", &t);
        assert!(name.ids.is_empty());
        let mut table = TokenTable::new();
        table.intern_name(&mut name);
        assert_eq!(name.ids.len(), name.tokens.len());
        for (tokn, &id) in name.tokens.iter().zip(&name.ids) {
            assert_eq!(table.text(id), tokn.text);
            assert_eq!(table.class(id), tokn.ttype.sim_class());
        }
        // idempotent
        let ids = name.ids.clone();
        table.intern_name(&mut name);
        assert_eq!(ids, name.ids);
    }

    #[test]
    fn cached_sim_matches_token_similarity_exactly() {
        let thesaurus = ThesaurusBuilder::new()
            .synonym("bill", "invoice", 1.0)
            .hypernym("customer", "person", 0.8)
            .build()
            .unwrap();
        let affix = AffixConfig::default();
        let tokens = [
            tok("bill", TokenType::Content),
            tok("invoice", TokenType::Content),
            tok("customer", TokenType::Content),
            tok("person", TokenType::Concept),
            tok("postalcode", TokenType::Content),
            tok("zipcode", TokenType::Content),
            tok("4", TokenType::Number),
            tok("3", TokenType::Number),
            tok("#", TokenType::SpecialSymbol),
        ];
        let mut table = TokenTable::new();
        let ids: Vec<TokenId> = tokens.iter().map(|t| table.intern_token(t)).collect();
        let mut cache = TokenSimCache::new(&table, &thesaurus, &affix);
        for (t1, &a) in tokens.iter().zip(&ids) {
            for (t2, &b) in tokens.iter().zip(&ids) {
                let direct = token_similarity(t1, t2, &thesaurus, &affix);
                let cached = cache.sim(a, b);
                assert_eq!(direct.to_bits(), cached.to_bits(), "{t1} vs {t2}");
            }
        }
    }

    #[test]
    fn cache_computes_each_distinct_pair_once() {
        let thesaurus = Thesaurus::empty();
        let affix = AffixConfig::default();
        let mut table = TokenTable::new();
        let a = table.intern(SimClass::Word, "street");
        let b = table.intern(SimClass::Word, "straight");
        let mut cache = TokenSimCache::new(&table, &thesaurus, &affix);
        assert_eq!(cache.distinct_pairs_computed(), 0);
        let v1 = cache.sim(a, b);
        assert_eq!(cache.distinct_pairs_computed(), 1);
        // repeat and symmetric queries hit the memo
        let v2 = cache.sim(a, b);
        let v3 = cache.sim(b, a);
        assert_eq!(cache.distinct_pairs_computed(), 1);
        assert_eq!(v1.to_bits(), v2.to_bits());
        assert_eq!(v1.to_bits(), v3.to_bits());
        // self-similarity of a word is 1.0
        assert_eq!(cache.sim(a, a), 1.0);
        assert_eq!(cache.vocab_size(), 2);
    }

    #[test]
    fn store_survives_table_growth() {
        let thesaurus = Thesaurus::empty();
        let affix = AffixConfig::default();
        let mut table = TokenTable::new();
        let a = table.intern(SimClass::Word, "street");
        let b = table.intern(SimClass::Word, "straight");
        let mut cache = TokenSimCache::new(&table, &thesaurus, &affix);
        let v1 = cache.sim(a, b);
        let store = cache.into_store();
        assert_eq!(store.distinct_pairs_computed(), 1);
        // Grow the vocabulary, re-attach, and check old entries are hits
        // while pairs involving new ids compute fresh.
        let c = table.intern(SimClass::Word, "road");
        let mut cache = TokenSimCache::with_store(&table, &thesaurus, &affix, store);
        assert_eq!(cache.sim(a, b).to_bits(), v1.to_bits());
        assert_eq!(cache.distinct_pairs_computed(), 1);
        let _ = cache.sim(a, c);
        assert_eq!(cache.distinct_pairs_computed(), 2);
    }

    #[test]
    fn merge_unions_two_stores() {
        let thesaurus = Thesaurus::empty();
        let affix = AffixConfig::default();
        let mut table = TokenTable::new();
        let ids: Vec<TokenId> = ["street", "straight", "road", "lane"]
            .iter()
            .map(|w| table.intern(SimClass::Word, w))
            .collect();
        let mut c1 = TokenSimCache::new(&table, &thesaurus, &affix);
        let v01 = c1.sim(ids[0], ids[1]);
        let v02 = c1.sim(ids[0], ids[2]);
        let mut c2 = TokenSimCache::new(&table, &thesaurus, &affix);
        let v02b = c2.sim(ids[0], ids[2]); // overlap with c1
        let v23 = c2.sim(ids[2], ids[3]);
        assert_eq!(v02.to_bits(), v02b.to_bits());
        let mut merged = c1.into_store();
        merged.merge(c2.into_store());
        // overlap counted once: {01, 02, 23}
        assert_eq!(merged.distinct_pairs_computed(), 3);
        let mut cache = TokenSimCache::with_store(&table, &thesaurus, &affix, merged);
        assert_eq!(cache.sim(ids[0], ids[1]).to_bits(), v01.to_bits());
        assert_eq!(cache.sim(ids[2], ids[3]).to_bits(), v23.to_bits());
        assert_eq!(cache.distinct_pairs_computed(), 3, "merged values must be hits");
    }

    #[test]
    fn table_wire_round_trip_preserves_ids() {
        let t = ThesaurusBuilder::new().abbreviation("PO", &["purchase", "order"]).build().unwrap();
        let mut table = TokenTable::new();
        for (name, class) in
            [("street", SimClass::Word), ("4", SimClass::Number), ("#", SimClass::Special)]
        {
            table.intern(class, name);
        }
        let mut name = Normalizer::default().normalize("POLines", &t);
        table.intern_name(&mut name);
        let mut w = cupid_model::WireWriter::new();
        table.write_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = cupid_model::WireReader::new(&bytes);
        let back = TokenTable::read_wire(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.len(), table.len());
        for (id, class, text) in table.entries() {
            assert_eq!(back.class(id), class);
            assert_eq!(back.text(id), text);
            assert_eq!(back.lookup(class, text), Some(id));
        }
        // name ids round-trip against the decoded table
        let mut w = cupid_model::WireWriter::new();
        name.write_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = cupid_model::WireReader::new(&bytes);
        let name_back = NormalizedName::read_wire(&mut r, back.len()).unwrap();
        assert_eq!(name_back, name);
        assert_eq!(name_back.ids, name.ids);
    }

    #[test]
    fn store_wire_round_trip_preserves_values_and_count() {
        let thesaurus = Thesaurus::empty();
        let affix = AffixConfig::default();
        let mut table = TokenTable::new();
        let ids: Vec<TokenId> = ["street", "straight", "road", "lane"]
            .iter()
            .map(|w| table.intern(SimClass::Word, w))
            .collect();
        let mut cache = TokenSimCache::new(&table, &thesaurus, &affix);
        let v01 = cache.sim(ids[0], ids[1]);
        let v23 = cache.sim(ids[2], ids[3]);
        let store = cache.into_store();
        let mut w = cupid_model::WireWriter::new();
        store.write_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = cupid_model::WireReader::new(&bytes);
        let back = SimStore::read_wire(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.distinct_pairs_computed(), store.distinct_pairs_computed());
        assert_eq!(back.allocated_chunks(), store.allocated_chunks());
        assert_eq!(back.allocated_bytes(), store.allocated_bytes());
        let mut cache = TokenSimCache::with_store(&table, &thesaurus, &affix, back);
        assert_eq!(cache.sim(ids[0], ids[1]).to_bits(), v01.to_bits());
        assert_eq!(cache.sim(ids[2], ids[3]).to_bits(), v23.to_bits());
        assert_eq!(cache.distinct_pairs_computed(), 2, "round-tripped values must be hits");
    }

    #[test]
    fn store_wire_rejects_corrupt_directories() {
        let mut store = SimStore::new();
        store.set(3, 0.25);
        let mut w = cupid_model::WireWriter::new();
        store.write_wire(&mut w);
        let mut bytes = w.into_bytes();
        // chunk index out of bounds
        bytes[8] = 0xfe;
        let mut r = cupid_model::WireReader::new(&bytes);
        assert!(SimStore::read_wire(&mut r).is_err());
    }

    #[test]
    fn store_chunks_allocate_lazily() {
        // Touch a high triangular index; only its chunk materializes.
        let mut store = SimStore::new();
        let k = 10 * CHUNK_LEN + 7;
        assert!(store.get(k).is_nan());
        store.set(k, 0.5);
        assert_eq!(store.get(k), 0.5);
        assert!(store.get(0).is_nan(), "untouched chunks stay unallocated");
        assert_eq!(store.chunks.iter().filter(|c| c.is_some()).count(), 1);
        assert_eq!(store.distinct_pairs_computed(), 1);
    }
}
