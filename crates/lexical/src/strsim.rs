//! Token-level similarity (Section 5.2, "Name Similarity").
//!
//! *"The similarity of two name tokens t1 and t2, sim(t1, t2), is looked
//! up in a synonym and hypernym thesaurus. … In the absence of such
//! entries, we match sub-strings of the words t1 and t2 to identify common
//! prefixes or suffixes."*

use crate::thesaurus::Thesaurus;
use crate::token::{SimClass, Token};

/// Affix (common prefix/suffix) matching parameters.
#[derive(Debug, Clone, Copy)]
pub struct AffixConfig {
    /// Minimum shared prefix/suffix length before a non-zero score is
    /// produced. Short shared affixes ("Co"/"Code") are noise.
    pub min_affix_len: usize,
    /// Maximum score an affix-only match can reach; keeps substring
    /// matches strictly weaker than thesaurus synonyms.
    pub max_score: f64,
}

impl Default for AffixConfig {
    fn default() -> Self {
        AffixConfig { min_affix_len: 3, max_score: 0.9 }
    }
}

/// Length of the longest common prefix of two byte strings, compared
/// eight bytes at a time: XOR a `u64` load from each side — the first
/// differing byte is the lowest non-zero byte of the XOR, found by
/// `trailing_zeros / 8` (little-endian load puts earlier bytes in lower
/// bits). The byte-at-a-time tail handles the last `< 8` bytes. This is
/// `sim(t1, t2)`'s innermost memcmp-shaped loop; one wide compare per 8
/// bytes beats one branch per byte on every cache-cold token pair.
#[inline]
fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i + 8 <= n {
        let x = u64::from_le_bytes(a[i..i + 8].try_into().unwrap());
        let y = u64::from_le_bytes(b[i..i + 8].try_into().unwrap());
        let diff = x ^ y;
        if diff != 0 {
            return i + (diff.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// Length of the longest common suffix, the mirror of
/// [`common_prefix`]: `u64` loads walking backwards, with the first
/// differing byte (from the end) in the *highest* non-zero byte of the
/// XOR — `leading_zeros / 8`.
#[inline]
fn common_suffix(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i + 8 <= n {
        let x = u64::from_le_bytes(a[a.len() - i - 8..a.len() - i].try_into().unwrap());
        let y = u64::from_le_bytes(b[b.len() - i - 8..b.len() - i].try_into().unwrap());
        let diff = x ^ y;
        if diff != 0 {
            return i + (diff.leading_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < n && a[a.len() - 1 - i] == b[b.len() - 1 - i] {
        i += 1;
    }
    i
}

/// Similarity of two canonical token texts based on common prefixes or
/// suffixes: `max(lcp, lcs) * 2 / (|a| + |b|)`, gated by
/// [`AffixConfig::min_affix_len`] and capped at [`AffixConfig::max_score`].
pub fn affix_similarity(a: &str, b: &str, cfg: &AffixConfig) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let lcp = common_prefix(a.as_bytes(), b.as_bytes());
    let lcs = common_suffix(a.as_bytes(), b.as_bytes());
    let best = lcp.max(lcs);
    if best < cfg.min_affix_len {
        return 0.0;
    }
    let score = (2.0 * best as f64) / (a.len() + b.len()) as f64;
    score.min(cfg.max_score)
}

/// `sim(t1, t2)` on (similarity class, canonical text) pairs — the full
/// information `sim` depends on, which is what makes token interning
/// sound: [`crate::intern::TokenSimCache`] memoizes this function keyed
/// by interned `(class, text)` ids.
///
/// Token-type discipline: `Number` and `Special` tokens only match
/// exactly (the digits in `Street4`/`street4` must agree); a word never
/// matches a number. Words go through the thesaurus (exact canonical
/// match is 1.0), then the affix fallback.
pub fn class_similarity(
    c1: SimClass,
    a: &str,
    c2: SimClass,
    b: &str,
    thesaurus: &Thesaurus,
    cfg: &AffixConfig,
) -> f64 {
    match (c1, c2) {
        (SimClass::Number, SimClass::Number) | (SimClass::Special, SimClass::Special) if a == b => {
            1.0
        }
        (SimClass::Word, SimClass::Word) => {
            if let Some(s) = thesaurus.token_sim(a, b) {
                s
            } else {
                affix_similarity(a, b, cfg)
            }
        }
        _ => 0.0,
    }
}

/// `sim(t1, t2)` of the paper, on [`Token`]s: delegates to
/// [`class_similarity`] over the tokens' similarity classes and
/// canonical texts.
pub fn token_similarity(t1: &Token, t2: &Token, thesaurus: &Thesaurus, cfg: &AffixConfig) -> f64 {
    class_similarity(t1.ttype.sim_class(), &t1.text, t2.ttype.sim_class(), &t2.text, thesaurus, cfg)
}

/// Where one token-pair similarity score came from — the per-pair
/// provenance the explain layer (`cupid-core`) surfaces. Every variant
/// corresponds to exactly one arm of [`class_similarity`], so a
/// `(score, provenance)` pair fully reconstructs the decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenSimProvenance {
    /// `Number`/`Special` tokens matched exactly (score 1.0).
    ExactSymbol,
    /// The thesaurus answered (synonym, hypernym, or abbreviation
    /// chain) — the affix fallback never ran.
    Thesaurus,
    /// Affix fallback: the longest common prefix/suffix lengths that
    /// produced the score, and whether [`AffixConfig::max_score`]
    /// clipped it.
    Affix {
        /// Length of the longest common prefix, in bytes.
        prefix_len: u32,
        /// Length of the longest common suffix, in bytes.
        suffix_len: u32,
        /// True when the raw affix ratio exceeded the cap.
        capped: bool,
    },
    /// Score 0: incompatible similarity classes, unequal symbols, or
    /// affixes below [`AffixConfig::min_affix_len`].
    NoMatch,
}

/// [`class_similarity`] with provenance: the identical score (bit for
/// bit — both paths run the same arithmetic) plus which rule produced
/// it. Kept separate from the hot path so explain requests pay for the
/// extra bookkeeping and ordinary matching does not.
pub fn class_similarity_explained(
    c1: SimClass,
    a: &str,
    c2: SimClass,
    b: &str,
    thesaurus: &Thesaurus,
    cfg: &AffixConfig,
) -> (f64, TokenSimProvenance) {
    match (c1, c2) {
        (SimClass::Number, SimClass::Number) | (SimClass::Special, SimClass::Special) if a == b => {
            (1.0, TokenSimProvenance::ExactSymbol)
        }
        (SimClass::Word, SimClass::Word) => {
            if let Some(s) = thesaurus.token_sim(a, b) {
                return (s, TokenSimProvenance::Thesaurus);
            }
            let score = affix_similarity(a, b, cfg);
            if score == 0.0 {
                return (0.0, TokenSimProvenance::NoMatch);
            }
            let lcp = common_prefix(a.as_bytes(), b.as_bytes());
            let lcs = common_suffix(a.as_bytes(), b.as_bytes());
            let raw = (2.0 * lcp.max(lcs) as f64) / (a.len() + b.len()) as f64;
            let provenance = TokenSimProvenance::Affix {
                prefix_len: lcp as u32,
                suffix_len: lcs as u32,
                capped: raw > cfg.max_score,
            };
            (score, provenance)
        }
        _ => (0.0, TokenSimProvenance::NoMatch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thesaurus::ThesaurusBuilder;
    use crate::token::{Token, TokenType};

    fn tok(s: &str) -> Token {
        Token::new(s, TokenType::Content)
    }

    fn num(s: &str) -> Token {
        Token::new(s, TokenType::Number)
    }

    #[test]
    fn exact_tokens_score_one() {
        let t = Thesaurus::empty();
        let cfg = AffixConfig::default();
        assert_eq!(token_similarity(&tok("city"), &tok("city"), &t, &cfg), 1.0);
    }

    #[test]
    fn thesaurus_beats_affix() {
        let t = ThesaurusBuilder::new().synonym("bill", "invoice", 1.0).build().unwrap();
        let cfg = AffixConfig::default();
        assert_eq!(token_similarity(&tok("bill"), &tok("invoice"), &t, &cfg), 1.0);
    }

    #[test]
    fn affix_fallback_common_prefix() {
        let t = Thesaurus::empty();
        let cfg = AffixConfig::default();
        // "num" vs "number": lcp = 3 → 6/9 ≈ 0.667
        let s = token_similarity(&tok("num"), &tok("number"), &t, &cfg);
        assert!((s - 2.0 * 3.0 / 9.0).abs() < 1e-12, "{s}");
    }

    #[test]
    fn affix_fallback_common_suffix() {
        let cfg = AffixConfig::default();
        // "partno" vs "no" — suffix "no" is too short (min 3)
        assert_eq!(affix_similarity("partno", "no", &cfg), 0.0);
        // "postalcode" vs "zipcode": suffix "code" (4) → 8/17
        let s = affix_similarity("postalcode", "zipcode", &cfg);
        assert!((s - 8.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn short_affixes_rejected() {
        let cfg = AffixConfig::default();
        assert_eq!(affix_similarity("co", "code", &cfg), 0.0);
        assert_eq!(affix_similarity("id", "id2", &cfg), 0.0);
    }

    #[test]
    fn identical_long_words_capped_by_max_score_only_for_affix() {
        let cfg = AffixConfig { min_affix_len: 3, max_score: 0.9 };
        // identical words go through the thesaurus exact path (1.0),
        // not the affix path.
        let t = Thesaurus::empty();
        assert_eq!(token_similarity(&tok("street"), &tok("street"), &t, &cfg), 1.0);
        // pure affix path is capped
        assert!(affix_similarity("street", "street", &cfg) <= 0.9);
    }

    #[test]
    fn numbers_match_only_exactly() {
        let t = Thesaurus::empty();
        let cfg = AffixConfig::default();
        assert_eq!(token_similarity(&num("4"), &num("4"), &t, &cfg), 1.0);
        assert_eq!(token_similarity(&num("4"), &num("3"), &t, &cfg), 0.0);
        assert_eq!(token_similarity(&num("4"), &tok("four"), &t, &cfg), 0.0);
    }

    #[test]
    fn empty_strings() {
        let cfg = AffixConfig::default();
        assert_eq!(affix_similarity("", "abc", &cfg), 0.0);
        assert_eq!(affix_similarity("", "", &cfg), 0.0);
    }

    #[test]
    fn wide_affix_scans_match_scalar_reference() {
        // The pre-restructuring byte-at-a-time scans.
        fn ref_lcp(a: &str, b: &str) -> usize {
            a.bytes().zip(b.bytes()).take_while(|(x, y)| x == y).count()
        }
        fn ref_lcs(a: &str, b: &str) -> usize {
            a.bytes().rev().zip(b.bytes().rev()).take_while(|(x, y)| x == y).count()
        }
        // Lengths straddling the 8-byte chunk boundary, equality at
        // every alignment, and unicode multi-byte content.
        let words = [
            "",
            "a",
            "ab",
            "abcdefg",
            "abcdefgh",
            "abcdefghi",
            "abcdefghijklmnop",
            "abcdefghijklmnoq",
            "abcdefgh_abcdefgh",
            "xbcdefghijklmnop",
            "abcdefghijklmnopabcdefghijklmnop",
            "postalcode",
            "zipcode",
            "straße",
            "straßenname",
        ];
        for a in words {
            for b in words {
                assert_eq!(
                    common_prefix(a.as_bytes(), b.as_bytes()),
                    ref_lcp(a, b),
                    "lcp({a:?}, {b:?})"
                );
                assert_eq!(
                    common_suffix(a.as_bytes(), b.as_bytes()),
                    ref_lcs(a, b),
                    "lcs({a:?}, {b:?})"
                );
            }
        }
    }

    #[test]
    fn explained_scores_are_bit_identical_with_full_provenance() {
        let t = ThesaurusBuilder::new()
            .synonym("bill", "invoice", 1.0)
            .hypernym("customer", "person", 0.8)
            .build()
            .unwrap();
        let cfg = AffixConfig::default();
        let cases = [
            (SimClass::Word, "bill", SimClass::Word, "invoice"),
            (SimClass::Word, "customer", SimClass::Word, "person"),
            (SimClass::Word, "postalcode", SimClass::Word, "zipcode"),
            (SimClass::Word, "street", SimClass::Word, "streets"),
            (SimClass::Word, "co", SimClass::Word, "code"),
            (SimClass::Word, "city", SimClass::Word, "thing"),
            (SimClass::Number, "4", SimClass::Number, "4"),
            (SimClass::Number, "4", SimClass::Number, "3"),
            (SimClass::Special, "#", SimClass::Special, "#"),
            (SimClass::Number, "4", SimClass::Word, "four"),
            (SimClass::Word, "", SimClass::Word, "abc"),
        ];
        for (c1, a, c2, b) in cases {
            let plain = class_similarity(c1, a, c2, b, &t, &cfg);
            let (explained, _) = class_similarity_explained(c1, a, c2, b, &t, &cfg);
            assert_eq!(plain.to_bits(), explained.to_bits(), "{a} vs {b}");
        }
        let prov = |a: &str, b: &str| {
            class_similarity_explained(SimClass::Word, a, SimClass::Word, b, &t, &cfg).1
        };
        assert_eq!(prov("bill", "invoice"), TokenSimProvenance::Thesaurus);
        assert_eq!(
            prov("postalcode", "zipcode"),
            TokenSimProvenance::Affix { prefix_len: 0, suffix_len: 4, capped: false }
        );
        assert_eq!(prov("co", "code"), TokenSimProvenance::NoMatch);
        // identical words not in the thesaurus: exact canonical match
        // answers 1.0 through the thesaurus path.
        assert_eq!(prov("street", "street"), TokenSimProvenance::Thesaurus);
        // "streets" vs "streetss": raw ratio 2*7/15 is under the cap;
        // a full-prefix pair like "street"/"streetx" stays uncapped too,
        // but "abcdefgh" vs "abcdefghi" (16/17) exceeds 0.9 and clips.
        assert_eq!(
            prov("abcdefgh", "abcdefghi"),
            TokenSimProvenance::Affix { prefix_len: 8, suffix_len: 0, capped: true }
        );
        assert_eq!(
            class_similarity_explained(SimClass::Number, "4", SimClass::Number, "4", &t, &cfg).1,
            TokenSimProvenance::ExactSymbol
        );
    }

    #[test]
    fn affix_symmetry() {
        let cfg = AffixConfig::default();
        for (a, b) in [("postal", "postalcode"), ("street", "straight"), ("order", "orders")] {
            assert_eq!(affix_similarity(a, b, &cfg), affix_similarity(b, a, &cfg));
        }
    }
}
