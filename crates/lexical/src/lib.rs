//! # cupid-lexical — linguistic substrate for the Cupid schema matcher
//!
//! This crate implements the linguistic resources that Section 5 of
//! *Generic Schema Matching with Cupid* (Madhavan, Bernstein, Rahm; VLDB
//! 2001) depends on:
//!
//! * a customizable **tokenizer** that splits schema element names on
//!   punctuation, case transitions, digits and special symbols
//!   ([`tokenizer::Tokenizer`]),
//! * a light **stemmer** that puts tokens into canonical form
//!   ([`stem::stem`]), so that `Lines` and `Line`, `Items` and `Item`
//!   compare equal,
//! * a **thesaurus** holding abbreviations/acronyms, stop words, concept
//!   tags, and weighted synonym/hypernym entries ([`thesaurus::Thesaurus`]),
//! * the **normalization pipeline** of Section 5.1 — tokenization,
//!   expansion, elimination, concept tagging ([`normalize::Normalizer`]),
//! * **token-level similarity** — thesaurus lookup with a common
//!   prefix/suffix fallback ([`strsim::token_similarity`]),
//! * **token interning and similarity memoization** — a dense
//!   vocabulary table plus a per-match triangular cache that computes
//!   each distinct token pair exactly once ([`intern::TokenTable`],
//!   [`intern::TokenSimCache`]; DESIGN.md §6).
//!
//! The paper assumed these resources would come from an off-the-shelf
//! thesaurus (WordNet integration was listed as future work); here they are
//! built from scratch so the matcher is fully self-contained.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod intern;
pub mod normalize;
pub mod stem;
pub mod strsim;
pub mod thesaurus;
pub mod token;
pub mod tokenizer;

pub use intern::{token_id_from_wire, SimStore, TokenId, TokenSimCache, TokenTable};
pub use normalize::{NormalizedName, Normalizer};
pub use stem::stem;
pub use strsim::{class_similarity_explained, token_similarity, TokenSimProvenance};
pub use thesaurus::{Thesaurus, ThesaurusBuilder};
pub use token::{SimClass, Token, TokenType};
pub use tokenizer::{Tokenizer, TokenizerConfig};
