//! Customizable name tokenizer (Section 5.1, "Tokenization").
//!
//! *"The names are parsed into tokens by a customizable tokenizer using
//! punctuation, upper case, special symbols, digits, etc. E.g. POLines →
//! {PO, Lines}."*

use crate::token::TokenType;

/// Configuration of the tokenizer. The defaults reproduce the behaviour
/// the paper describes; each rule can be disabled for schemas with unusual
/// naming conventions.
#[derive(Debug, Clone)]
pub struct TokenizerConfig {
    /// Split on lower→upper case transitions (`POLines` → `PO`, `Lines`).
    pub split_camel_case: bool,
    /// Split runs of digits into their own `Number` tokens
    /// (`Street4` → `Street`, `4`).
    pub split_digits: bool,
    /// Characters treated as separators and dropped (`_`, `-`, `.`, space…).
    pub separators: Vec<char>,
    /// Characters preserved as `SpecialSymbol` tokens (e.g. `#`).
    pub special_symbols: Vec<char>,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        TokenizerConfig {
            split_camel_case: true,
            split_digits: true,
            separators: vec!['_', '-', '.', ' ', '/', ':', ',', ';', '(', ')', '[', ']'],
            special_symbols: vec!['#', '%', '$', '&', '@', '*', '+'],
        }
    }
}

/// A raw (pre-normalization) token: surface text plus the coarse type the
/// tokenizer can already determine (numbers and special symbols). Word
/// tokens come out as `Content`; the normalizer may downgrade them to
/// `CommonWord` or add `Concept` companions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawToken {
    /// Surface text exactly as it appeared (case preserved).
    pub text: String,
    /// `Number`, `SpecialSymbol` or `Content`.
    pub ttype: TokenType,
}

/// The tokenizer proper. Stateless apart from its configuration; cheap to
/// clone and share.
#[derive(Debug, Clone, Default)]
pub struct Tokenizer {
    config: TokenizerConfig,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum CharClass {
    Upper,
    Lower,
    Digit,
    Separator,
    Special,
    Other,
}

impl Tokenizer {
    /// Tokenizer with the given configuration.
    pub fn new(config: TokenizerConfig) -> Self {
        Tokenizer { config }
    }

    /// Access the configuration.
    pub fn config(&self) -> &TokenizerConfig {
        &self.config
    }

    fn classify(&self, c: char) -> CharClass {
        if self.config.separators.contains(&c) {
            CharClass::Separator
        } else if self.config.special_symbols.contains(&c) {
            CharClass::Special
        } else if c.is_ascii_digit() {
            CharClass::Digit
        } else if c.is_uppercase() {
            CharClass::Upper
        } else if c.is_lowercase() {
            CharClass::Lower
        } else {
            CharClass::Other
        }
    }

    /// Split `name` into raw tokens.
    ///
    /// Camel-case handling follows the usual "acronym run" rule: an
    /// uppercase run followed by a lowercase letter starts a new token at
    /// the last uppercase character, so `POLines` → `PO` + `Lines` and
    /// `UnitOfMeasure` → `Unit` + `Of` + `Measure`.
    pub fn tokenize(&self, name: &str) -> Vec<RawToken> {
        let chars: Vec<char> = name.chars().collect();
        let mut tokens: Vec<RawToken> = Vec::new();
        let mut current = String::new();
        let mut current_is_digit = false;

        let flush = |current: &mut String, is_digit: bool, tokens: &mut Vec<RawToken>| {
            if !current.is_empty() {
                let ttype = if is_digit { TokenType::Number } else { TokenType::Content };
                tokens.push(RawToken { text: std::mem::take(current), ttype });
            }
        };

        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match self.classify(c) {
                CharClass::Separator => {
                    flush(&mut current, current_is_digit, &mut tokens);
                }
                CharClass::Special => {
                    flush(&mut current, current_is_digit, &mut tokens);
                    tokens.push(RawToken { text: c.to_string(), ttype: TokenType::SpecialSymbol });
                }
                CharClass::Digit => {
                    if self.config.split_digits {
                        if !current_is_digit {
                            flush(&mut current, current_is_digit, &mut tokens);
                        }
                        current_is_digit = true;
                        current.push(c);
                    } else {
                        current.push(c);
                    }
                }
                CharClass::Upper if self.config.split_camel_case => {
                    if current_is_digit {
                        flush(&mut current, true, &mut tokens);
                        current_is_digit = false;
                    }
                    // A new uppercase char after lowercase starts a token.
                    let prev_lower = i > 0 && self.classify(chars[i - 1]) == CharClass::Lower;
                    if prev_lower {
                        flush(&mut current, false, &mut tokens);
                    }
                    // Uppercase run followed by lowercase: break before the
                    // last capital ("POLines" -> "PO" | "Lines").
                    let next_lower =
                        i + 1 < chars.len() && self.classify(chars[i + 1]) == CharClass::Lower;
                    let prev_upper = i > 0 && self.classify(chars[i - 1]) == CharClass::Upper;
                    if next_lower && prev_upper {
                        flush(&mut current, false, &mut tokens);
                    }
                    current.push(c);
                }
                CharClass::Upper | CharClass::Lower | CharClass::Other => {
                    if current_is_digit {
                        flush(&mut current, true, &mut tokens);
                        current_is_digit = false;
                    }
                    current.push(c);
                }
            }
            i += 1;
        }
        flush(&mut current, current_is_digit, &mut tokens);
        tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(name: &str) -> Vec<String> {
        Tokenizer::default().tokenize(name).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn paper_example_polines() {
        // "E.g. POLines -> {PO, Lines}"
        assert_eq!(texts("POLines"), ["PO", "Lines"]);
    }

    #[test]
    fn camel_case_basic() {
        assert_eq!(texts("ItemNumber"), ["Item", "Number"]);
        assert_eq!(texts("UnitOfMeasure"), ["Unit", "Of", "Measure"]);
        assert_eq!(texts("unitPrice"), ["unit", "Price"]);
        assert_eq!(texts("DeliverTo"), ["Deliver", "To"]);
    }

    #[test]
    fn acronym_runs() {
        assert_eq!(texts("POBillTo"), ["PO", "Bill", "To"]);
        assert_eq!(texts("CIDXOrder"), ["CIDX", "Order"]);
        assert_eq!(texts("UoM"), ["Uo", "M"]); // mixed-case acronyms split; expansion fixes UoM
        assert_eq!(texts("SSN"), ["SSN"]);
    }

    #[test]
    fn digits_split_into_number_tokens() {
        let toks = Tokenizer::default().tokenize("Street4");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].text, "Street");
        assert_eq!(toks[0].ttype, TokenType::Content);
        assert_eq!(toks[1].text, "4");
        assert_eq!(toks[1].ttype, TokenType::Number);
    }

    #[test]
    fn separators_and_specials() {
        assert_eq!(texts("order_date"), ["order", "date"]);
        assert_eq!(texts("e-mail"), ["e", "mail"]);
        assert_eq!(texts("Order-Customer-fk"), ["Order", "Customer", "fk"]);
        let toks = Tokenizer::default().tokenize("Item#");
        assert_eq!(toks[1].ttype, TokenType::SpecialSymbol);
        assert_eq!(toks[1].text, "#");
    }

    #[test]
    fn digit_runs_inside_words() {
        assert_eq!(texts("street2city"), ["street", "2", "city"]);
        assert_eq!(texts("a1b2"), ["a", "1", "b", "2"]);
    }

    #[test]
    fn empty_and_separator_only() {
        assert!(texts("").is_empty());
        assert!(texts("__--").is_empty());
    }

    #[test]
    fn disable_camel_split() {
        let t = Tokenizer::new(TokenizerConfig { split_camel_case: false, ..Default::default() });
        let toks: Vec<String> = t.tokenize("POLines").into_iter().map(|t| t.text).collect();
        assert_eq!(toks, ["POLines"]);
    }

    #[test]
    fn disable_digit_split() {
        let t = Tokenizer::new(TokenizerConfig { split_digits: false, ..Default::default() });
        let toks: Vec<String> = t.tokenize("Street4").into_iter().map(|t| t.text).collect();
        assert_eq!(toks, ["Street4"]);
    }

    #[test]
    fn unicode_word_characters_kept_together() {
        assert_eq!(texts("straßeName"), ["straße", "Name"]);
    }
}
