//! Hand-rolled binary wire format for on-disk snapshots (DESIGN.md §8).
//!
//! This workspace builds with no network access, so there is no serde;
//! instead every snapshot-able type writes itself into a [`WireWriter`]
//! and reads itself back from a [`WireReader`] using a small fixed
//! vocabulary of primitives: little-endian `u8`/`u32`/`u64`, `f64` *by
//! bit pattern* (snapshots must preserve similarity values exactly —
//! the repository's bit-identity guarantee depends on it),
//! length-prefixed UTF-8 strings, and `u32` element counts.
//!
//! The format is versioned at the container level (the repository
//! snapshot carries a magic + version header and a trailing checksum;
//! see `cupid-repo`); the primitives here are deliberately
//! version-free. Everything is deterministic: encoding the same value
//! twice yields the same bytes, which is what makes [`fnv1a`] usable
//! for content hashes and config fingerprints.
//!
//! This module also carries the `cupid-model` types' own
//! encode/decode — [`Schema`] and [`SchemaTree`] have private fields,
//! so their wire code lives here — plus [`Schema::content_hash`], the
//! key of the repository's incremental pair cache.

use crate::element::{BroadType, DataType, Element, ElementId, ElementKind};
use crate::schema::{Edges, Schema};
use crate::tree::{NodeId, SchemaTree, SyntheticKind, TreeNode};
use std::fmt;
use std::io::{Read, Write};

/// Error produced when decoding malformed or truncated wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder over a byte buffer.
#[derive(Debug, Clone, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` by bit pattern (exact round-trip, NaN included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write a `usize` as `u32` (snapshot counts are far below 2³²;
    /// panics if not, rather than silently truncating).
    pub fn put_len(&mut self, v: usize) {
        self.put_u32(u32::try_from(v).expect("wire length exceeds u32"));
    }

    /// Write a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write raw bytes (no length prefix; pair with a caller-side count).
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Sequential decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over the full slice.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Current byte offset (for error reporting).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error constructor anchored at the current offset.
    pub fn err(&self, message: impl Into<String>) -> WireError {
        WireError { offset: self.pos, message: message.into() }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(self.err(format!("need {n} bytes, {} remain", self.remaining())));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read an `f64` by bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length written by [`WireWriter::put_len`], sanity-capped
    /// against the remaining input so corrupt counts fail fast instead
    /// of driving giant allocations.
    pub fn get_len(&mut self) -> Result<usize, WireError> {
        let n = self.get_u32()? as usize;
        if n > self.remaining() + self.remaining() / 8 + 64 {
            return Err(self.err(format!("length {n} exceeds remaining input")));
        }
        Ok(n)
    }

    /// Read a bool byte (strictly 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.err(format!("invalid bool byte {b}"))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let n = self.get_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError { offset: self.pos - n, message: format!("invalid UTF-8: {e}") })
    }

    /// Read `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Assert the input is fully consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(self.err(format!("{} trailing bytes", self.remaining())))
        }
    }
}

// --- framed messages --------------------------------------------------

/// Leading magic of every wire frame (the daemon protocol's message
/// container; see `cupid-serve`).
pub const FRAME_MAGIC: [u8; 4] = *b"CPDF";

/// Upper bound on a frame payload. Protects both ends of a connection
/// from allocating gigabytes off one corrupt (or hostile) length
/// prefix; real payloads — SDL documents, match summaries — are orders
/// of magnitude smaller.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// Error produced while reading or writing a wire frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (or closed mid-frame).
    Io(std::io::Error),
    /// The bytes on the stream are not a valid frame (bad magic,
    /// oversized length, checksum mismatch). The connection cannot be
    /// resynchronized after this; close it.
    Malformed(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one length-prefixed, checksummed frame:
///
/// ```text
/// magic    4 bytes   b"CPDF"
/// kind     u8        message discriminator (the caller's namespace)
/// len      u32 LE    payload length, at most MAX_FRAME_PAYLOAD
/// payload  len bytes
/// checksum u64 LE    fnv1a over kind byte + payload
/// ```
///
/// The checksum makes corruption on the stream loud: a reader never
/// hands a damaged payload to a decoder.
///
/// The whole frame — header, payload, checksum — is serialized into
/// one buffer and written with a single `write_all`. On a nodelay
/// socket, three separate writes are three syscalls and up to three
/// packets per frame; one write is one of each, and the daemon's wire
/// path sends a frame per request.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Malformed(format!(
            "payload of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte frame cap",
            payload.len()
        )));
    }
    let mut frame = Vec::with_capacity(9 + payload.len() + 8);
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&frame_checksum(kind, payload).to_le_bytes());
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one frame written by [`write_frame`].
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed the
/// connection *between* frames); end-of-stream anywhere inside a frame
/// is an [`FrameError::Io`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
    let mut header = [0u8; 9];
    // Hand-read the first byte so "peer hung up before the next frame"
    // (normal) is distinguishable from "stream died mid-frame" (error).
    loop {
        match r.read(&mut header[..1]) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    // The remaining 8 header bytes (magic tail, kind, length) come in
    // one read_exact instead of three — the read-side mirror of
    // write_frame's single buffered write.
    r.read_exact(&mut header[1..])?;
    if header[..4] != FRAME_MAGIC {
        return Err(FrameError::Malformed(format!("bad magic {:02x?}", &header[..4])));
    }
    let kind = header[4];
    let len = u32::from_le_bytes(header[5..9].try_into().expect("4 header bytes")) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Malformed(format!(
            "payload length {len} exceeds the {MAX_FRAME_PAYLOAD}-byte frame cap"
        )));
    }
    // Payload and trailing checksum in one read as well, then split.
    let mut body = vec![0u8; len + 8];
    r.read_exact(&mut body)?;
    let stored = u64::from_le_bytes(body[len..].try_into().expect("8 checksum bytes"));
    body.truncate(len);
    let payload = body;
    let actual = frame_checksum(kind, &payload);
    if stored != actual {
        return Err(FrameError::Malformed(format!(
            "checksum mismatch: stored {stored:#x}, actual {actual:#x}"
        )));
    }
    Ok(Some((kind, payload)))
}

/// The checksum a frame carries: FNV-1a over the kind byte followed by
/// the payload.
fn frame_checksum(kind: u8, payload: &[u8]) -> u64 {
    fnv1a_extend(fnv1a_extend(FNV_OFFSET_BASIS, &[kind]), payload)
}

// --- journal record kinds ---------------------------------------------
//
// The repository's write-ahead mutation journal (`cupid-repo`,
// DESIGN.md §10) reuses the frame container above for its on-disk
// records; these are the frame kind bytes it writes. They live here —
// next to the daemon protocol's kind-space conventions — because kind
// codes are append-only workspace-wide: new records get new numbers,
// existing numbers never change meaning, and no two subsystems may
// collide on a kind a stray file could be mistaken for. The `0x4_`
// block is disjoint from the daemon protocol's `0x0_`/`0x8_` kinds.

/// Journal header record: version, config/thesaurus fingerprints, and
/// the id of the snapshot the journal extends.
pub const JOURNAL_HEADER: u8 = 0x40;
/// Journal record: a schema was added (payload: [`Schema`] wire bytes).
pub const JOURNAL_ADD: u8 = 0x41;
/// Journal record: a schema was replaced (payload: [`Schema`] wire
/// bytes; the repository key is the schema's own name).
pub const JOURNAL_REPLACE: u8 = 0x42;
/// Journal record: a schema was removed (payload: its name).
pub const JOURNAL_REMOVE: u8 = 0x43;

// --- daemon batch frame kinds -----------------------------------------
//
// The daemon's batched wire path (`cupid-serve`, DESIGN.md §11) ships a
// whole worklist of read-side requests in one checksummed frame and
// answers with per-entry statuses in one frame back. The kind codes
// live here with the rest of the workspace kind-space bookkeeping:
// 0x09 extends the request block (0x01..=0x08), 0x8A extends the
// response block (0x81..=0x89), and both stay disjoint from the
// journal's 0x4_ block.

/// Batched request frame: a worklist of MatchPair/TopK/Stats entries.
pub const BATCH_REQUEST: u8 = 0x09;
/// Batched response frame: one status (result or error) per entry.
pub const BATCH_RESPONSE: u8 = 0x8A;

// --- daemon robustness frame kinds -------------------------------------
//
// The hostile-network layer (`cupid-serve`, DESIGN.md §12) adds two
// kinds: mutations carrying a client-assigned request id (so a retry
// after a lost acknowledgment deduplicates daemon-side instead of
// double-applying), and the typed overload-shed response the admission
// controller answers with when the in-flight cap is full.

/// Mutation request frame carrying a client-assigned request id for
/// daemon-side retry deduplication (add/replace/remove payloads).
pub const MUTATE_REQUEST: u8 = 0x0A;
/// Admission-control shed: the daemon refused the request because its
/// in-flight cap stayed full past the queue deadline. Retryable.
pub const OVERLOADED_RESPONSE: u8 = 0x8B;

// --- daemon observability frame kinds ----------------------------------
//
// The tracing layer (`cupid-serve`, DESIGN.md §13) adds one exchange:
// a query for the daemon's slow-log ring — the bounded buffer holding
// the slowest requests seen so far, each with its full per-stage
// latency breakdown — so a tail outlier can be explained post hoc.

/// Slow-log query frame: no payload; answers with the ring contents.
pub const SLOW_LOG_REQUEST: u8 = 0x0B;
/// Slow-log response frame: the slowest-N request traces, stage
/// breakdowns included, slowest first.
pub const SLOW_LOG_RESPONSE: u8 = 0x8C;

// --- match explainability frame kinds -----------------------------------
//
// The explainability layer (`cupid-serve`, DESIGN.md §14) adds one
// exchange: a query for one pair's per-mapping score provenance — the
// lsim/ssim/wsim breakdown at the final weights, top contributing token
// pairs with provenance, structural context, and threshold decisions.
// Every served explanation recomposes to its reported `wsim` bit-exactly.

/// Explain query frame: source and target schema names; answers with
/// per-mapping score provenance for the pair.
pub const EXPLAIN_REQUEST: u8 = 0x0C;
/// Explain response frame: a `PairExplanation` payload.
pub const EXPLAIN_RESPONSE: u8 = 0x8D;

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold more bytes into a running FNV-1a state (the incremental form
/// every FNV user in this module goes through, so the constants exist
/// exactly once).
fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 64-bit FNV-1a over a byte slice — the workspace's deterministic,
/// dependency-free content hash (snapshot checksums, schema content
/// hashes, config/thesaurus fingerprints).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET_BASIS, bytes)
}

// --- enum codes -------------------------------------------------------

/// Stable wire code of an [`ElementKind`]. Codes are append-only: new
/// kinds get new numbers, existing numbers never change meaning.
pub fn element_kind_code(k: ElementKind) -> u8 {
    match k {
        ElementKind::Schema => 0,
        ElementKind::Table => 1,
        ElementKind::Column => 2,
        ElementKind::XmlElement => 3,
        ElementKind::XmlAttribute => 4,
        ElementKind::Class => 5,
        ElementKind::Attribute => 6,
        ElementKind::Entity => 7,
        ElementKind::Relationship => 8,
        ElementKind::TypeDef => 9,
        ElementKind::Key => 10,
        ElementKind::ForeignKey => 11,
        ElementKind::View => 12,
        ElementKind::Other => 13,
    }
}

/// Decode an [`ElementKind`] wire code.
pub fn element_kind_from_code(c: u8) -> Option<ElementKind> {
    Some(match c {
        0 => ElementKind::Schema,
        1 => ElementKind::Table,
        2 => ElementKind::Column,
        3 => ElementKind::XmlElement,
        4 => ElementKind::XmlAttribute,
        5 => ElementKind::Class,
        6 => ElementKind::Attribute,
        7 => ElementKind::Entity,
        8 => ElementKind::Relationship,
        9 => ElementKind::TypeDef,
        10 => ElementKind::Key,
        11 => ElementKind::ForeignKey,
        12 => ElementKind::View,
        13 => ElementKind::Other,
        _ => return None,
    })
}

/// Stable wire code of a [`DataType`].
pub fn data_type_code(t: DataType) -> u8 {
    match t {
        DataType::Unknown => 0,
        DataType::String => 1,
        DataType::Int => 2,
        DataType::Decimal => 3,
        DataType::Float => 4,
        DataType::Money => 5,
        DataType::Bool => 6,
        DataType::Date => 7,
        DataType::Time => 8,
        DataType::DateTime => 9,
        DataType::Binary => 10,
        DataType::Identifier => 11,
        DataType::Enumeration => 12,
        DataType::Complex => 13,
    }
}

/// Decode a [`DataType`] wire code.
pub fn data_type_from_code(c: u8) -> Option<DataType> {
    Some(match c {
        0 => DataType::Unknown,
        1 => DataType::String,
        2 => DataType::Int,
        3 => DataType::Decimal,
        4 => DataType::Float,
        5 => DataType::Money,
        6 => DataType::Bool,
        7 => DataType::Date,
        8 => DataType::Time,
        9 => DataType::DateTime,
        10 => DataType::Binary,
        11 => DataType::Identifier,
        12 => DataType::Enumeration,
        13 => DataType::Complex,
        _ => return None,
    })
}

/// Stable wire code of a [`BroadType`] (used by `cupid-core`'s category
/// serialization).
pub fn broad_type_code(t: BroadType) -> u8 {
    match t {
        BroadType::Number => 0,
        BroadType::Text => 1,
        BroadType::Temporal => 2,
        BroadType::Boolean => 3,
        BroadType::Binary => 4,
        BroadType::Complex => 5,
        BroadType::Unknown => 6,
    }
}

/// Decode a [`BroadType`] wire code.
pub fn broad_type_from_code(c: u8) -> Option<BroadType> {
    Some(match c {
        0 => BroadType::Number,
        1 => BroadType::Text,
        2 => BroadType::Temporal,
        3 => BroadType::Boolean,
        4 => BroadType::Binary,
        5 => BroadType::Complex,
        6 => BroadType::Unknown,
        _ => return None,
    })
}

// --- id lists ---------------------------------------------------------

/// Sentinel for "no parent" in the optional-id encoding.
const NO_ID: u32 = u32::MAX;

fn put_id_list(w: &mut WireWriter, ids: &[ElementId]) {
    w.put_len(ids.len());
    for id in ids {
        w.put_u32(id.index() as u32);
    }
}

fn get_id_list(r: &mut WireReader<'_>, len: usize) -> Result<Vec<ElementId>, WireError> {
    let n = r.get_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let v = r.get_u32()? as usize;
        if v >= len {
            return Err(r.err(format!("element id {v} out of bounds ({len} elements)")));
        }
        out.push(ElementId::from_index(v));
    }
    Ok(out)
}

// --- Schema -----------------------------------------------------------

impl Schema {
    /// Encode the full schema graph (elements + all edge kinds) into
    /// the wire format. The encoding is canonical: it depends only on
    /// the schema's content, never on construction history, so it
    /// doubles as the input of [`Schema::content_hash`].
    pub fn write_wire(&self, w: &mut WireWriter) {
        w.put_str(&self.name);
        w.put_len(self.elements.len());
        for e in &self.elements {
            w.put_str(&e.name);
            w.put_u8(element_kind_code(e.kind));
            w.put_u8(data_type_code(e.data_type));
            let flags = (e.optional as u8)
                | (e.not_instantiated as u8) << 1
                | (e.is_key as u8) << 2
                | (e.annotation.is_some() as u8) << 3;
            w.put_u8(flags);
            if let Some(a) = &e.annotation {
                w.put_str(a);
            }
        }
        for edges in &self.edges {
            match edges.parent {
                Some(p) => w.put_u32(p.index() as u32),
                None => w.put_u32(NO_ID),
            }
            put_id_list(w, &edges.children);
            put_id_list(w, &edges.derived_from);
            put_id_list(w, &edges.aggregates);
            put_id_list(w, &edges.references);
        }
    }

    /// Decode a schema written by [`Schema::write_wire`] and re-check
    /// its invariants via [`Schema::validate`].
    pub fn read_wire(r: &mut WireReader<'_>) -> Result<Schema, WireError> {
        let name = r.get_str()?;
        let n = r.get_len()?;
        let mut elements = Vec::with_capacity(n);
        for _ in 0..n {
            let ename = r.get_str()?;
            let kind = element_kind_from_code(r.get_u8()?)
                .ok_or_else(|| r.err("unknown element kind code"))?;
            let data_type =
                data_type_from_code(r.get_u8()?).ok_or_else(|| r.err("unknown data type code"))?;
            let flags = r.get_u8()?;
            if flags & !0b1111 != 0 {
                return Err(r.err(format!("unknown element flag bits {flags:#010b}")));
            }
            let annotation = if flags & 0b1000 != 0 { Some(r.get_str()?) } else { None };
            let mut e = Element::structured(ename, kind);
            e.data_type = data_type;
            e.optional = flags & 0b001 != 0;
            e.not_instantiated = flags & 0b010 != 0;
            e.is_key = flags & 0b100 != 0;
            e.annotation = annotation;
            elements.push(e);
        }
        let mut edges = Vec::with_capacity(n);
        for _ in 0..n {
            let parent = match r.get_u32()? {
                NO_ID => None,
                v if (v as usize) < n => Some(ElementId::from_index(v as usize)),
                v => return Err(r.err(format!("parent id {v} out of bounds"))),
            };
            edges.push(Edges {
                parent,
                children: get_id_list(r, n)?,
                derived_from: get_id_list(r, n)?,
                aggregates: get_id_list(r, n)?,
                references: get_id_list(r, n)?,
            });
        }
        let schema = Schema { name, elements, edges };
        schema.validate().map_err(|e| r.err(format!("schema invariants violated: {e}")))?;
        Ok(schema)
    }

    /// Deterministic 64-bit content hash of the schema (name, elements,
    /// all relationships): equal-content schemas hash equal across
    /// processes and runs. This is the key of the repository's
    /// incremental pair cache — a pair's cached `MatchSummary` is valid
    /// exactly as long as both schemas' content hashes are unchanged.
    pub fn content_hash(&self) -> u64 {
        let mut w = WireWriter::new();
        self.write_wire(&mut w);
        fnv1a(w.bytes())
    }
}

// --- SchemaTree -------------------------------------------------------

impl SchemaTree {
    /// Encode the expanded tree/DAG: nodes with their adjacency, plus
    /// the root. Derived tables (post-order, leaf sets, depths, paths)
    /// are *not* written — they are a pure function of the adjacency
    /// and are recomputed on decode, which keeps the format small and
    /// guarantees a decoded tree satisfies the same invariants a
    /// freshly expanded one does.
    pub fn write_wire(&self, w: &mut WireWriter) {
        w.put_str(self.schema_name());
        w.put_u32(self.root().index() as u32);
        w.put_len(self.len());
        for (_, node) in self.iter() {
            w.put_u32(node.element.index() as u32);
            w.put_str(&node.name);
            w.put_u8(element_kind_code(node.kind));
            w.put_u8(data_type_code(node.data_type));
            w.put_bool(node.optional);
            w.put_u8(match node.synthetic {
                None => 0,
                Some(SyntheticKind::JoinView) => 1,
                Some(SyntheticKind::View) => 2,
            });
            w.put_len(node.parents.len());
            for p in &node.parents {
                w.put_u32(p.index() as u32);
            }
            w.put_len(node.children.len());
            for c in &node.children {
                w.put_u32(c.index() as u32);
            }
        }
    }

    /// Decode a tree written by [`SchemaTree::write_wire`], recomputing
    /// every derived table.
    pub fn read_wire(r: &mut WireReader<'_>) -> Result<SchemaTree, WireError> {
        let schema_name = r.get_str()?;
        let root = r.get_u32()? as usize;
        let n = r.get_len()?;
        if n == 0 {
            return Err(r.err("schema tree has no nodes"));
        }
        if root >= n {
            return Err(r.err(format!("root {root} out of bounds ({n} nodes)")));
        }
        let mut tree = SchemaTree::new_empty(schema_name);
        let node_id = |r: &WireReader<'_>, v: u32| -> Result<NodeId, WireError> {
            if (v as usize) < n {
                Ok(NodeId::from_index(v as usize))
            } else {
                Err(r.err(format!("node id {v} out of bounds ({n} nodes)")))
            }
        };
        for _ in 0..n {
            let element = ElementId::from_index(r.get_u32()? as usize);
            let name = r.get_str()?;
            let kind = element_kind_from_code(r.get_u8()?)
                .ok_or_else(|| r.err("unknown element kind code"))?;
            let data_type =
                data_type_from_code(r.get_u8()?).ok_or_else(|| r.err("unknown data type code"))?;
            let optional = r.get_bool()?;
            let synthetic = match r.get_u8()? {
                0 => None,
                1 => Some(SyntheticKind::JoinView),
                2 => Some(SyntheticKind::View),
                c => return Err(r.err(format!("unknown synthetic code {c}"))),
            };
            let np = r.get_len()?;
            let mut parents = Vec::with_capacity(np);
            for _ in 0..np {
                let v = r.get_u32()?;
                parents.push(node_id(r, v)?);
            }
            let nc = r.get_len()?;
            let mut children = Vec::with_capacity(nc);
            for _ in 0..nc {
                let v = r.get_u32()?;
                children.push(node_id(r, v)?);
            }
            tree.push_node(TreeNode {
                element,
                name,
                kind,
                data_type,
                optional,
                synthetic,
                parents,
                children,
            });
        }
        tree.set_root(NodeId::from_index(root));
        // parent/child symmetry: finalize() trusts the adjacency, so
        // check it here rather than decode a structurally broken DAG.
        for (id, node) in tree.iter() {
            for &c in &node.children {
                if !tree.node(c).parents.contains(&id) {
                    return Err(r.err(format!("child {c} does not list {id} as parent")));
                }
            }
        }
        tree.refresh_derived();
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::joinview::ExpandOptions;
    use crate::tree::expand;

    fn sample_schema() -> Schema {
        let mut b = SchemaBuilder::new("PO");
        let addr = b.type_def("Address");
        b.atomic(addr, "Street", ElementKind::XmlElement, DataType::String);
        let deliver = b.structured(b.root(), "DeliverTo", ElementKind::XmlElement);
        b.derive_from(deliver, addr);
        let items = b.structured(b.root(), "Items", ElementKind::XmlElement);
        let qty = b.atomic(items, "Qty", ElementKind::XmlAttribute, DataType::Int);
        b.set_optional(qty, true);
        b.set_key(qty, true);
        b.annotate(qty, "ordered quantity");
        b.build().unwrap()
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_f64(f64::NAN);
        w.put_f64(-0.0);
        w.put_bool(true);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut w = WireWriter::new();
        w.put_str("abcdef");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes[..bytes.len() - 2]);
        assert!(r.get_str().is_err());
        // corrupt length prefix: claims more than remains
        let mut r = WireReader::new(&[0xff, 0xff, 0xff, 0x7f, b'a']);
        assert!(r.get_len().is_err());
    }

    #[test]
    fn enum_codes_round_trip() {
        for k in [
            ElementKind::Schema,
            ElementKind::Table,
            ElementKind::Column,
            ElementKind::XmlElement,
            ElementKind::XmlAttribute,
            ElementKind::Class,
            ElementKind::Attribute,
            ElementKind::Entity,
            ElementKind::Relationship,
            ElementKind::TypeDef,
            ElementKind::Key,
            ElementKind::ForeignKey,
            ElementKind::View,
            ElementKind::Other,
        ] {
            assert_eq!(element_kind_from_code(element_kind_code(k)), Some(k));
        }
        assert_eq!(element_kind_from_code(200), None);
        for t in [
            DataType::Unknown,
            DataType::String,
            DataType::Int,
            DataType::Decimal,
            DataType::Float,
            DataType::Money,
            DataType::Bool,
            DataType::Date,
            DataType::Time,
            DataType::DateTime,
            DataType::Binary,
            DataType::Identifier,
            DataType::Enumeration,
            DataType::Complex,
        ] {
            assert_eq!(data_type_from_code(data_type_code(t)), Some(t));
            assert_eq!(broad_type_from_code(broad_type_code(t.broad())), Some(t.broad()));
        }
    }

    #[test]
    fn schema_round_trips_exactly() {
        let s = sample_schema();
        let mut w = WireWriter::new();
        s.write_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = Schema::read_wire(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.name(), s.name());
        assert_eq!(back.len(), s.len());
        for (id, e) in s.iter() {
            assert_eq!(back.element(id), e);
            assert_eq!(back.parent(id), s.parent(id));
            assert_eq!(back.children(id), s.children(id));
            assert_eq!(back.derived_from(id), s.derived_from(id));
        }
        assert_eq!(back.content_hash(), s.content_hash());
    }

    #[test]
    fn content_hash_tracks_content_not_identity() {
        let s1 = sample_schema();
        let s2 = sample_schema();
        assert_eq!(s1.content_hash(), s2.content_hash());
        let mut b = SchemaBuilder::new("PO");
        b.atomic(b.root(), "Qty", ElementKind::XmlAttribute, DataType::Int);
        let other = b.build().unwrap();
        assert_ne!(s1.content_hash(), other.content_hash());
        // flipping one flag flips the hash
        let mut b = SchemaBuilder::new("PO");
        let q = b.atomic(b.root(), "Qty", ElementKind::XmlAttribute, DataType::Int);
        b.set_optional(q, true);
        let flipped = b.build().unwrap();
        assert_ne!(other.content_hash(), flipped.content_hash());
    }

    #[test]
    fn tree_round_trip_preserves_all_derived_tables() {
        let s = sample_schema();
        let t = expand(&s, &ExpandOptions::all()).unwrap();
        let mut w = WireWriter::new();
        t.write_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = SchemaTree::read_wire(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.schema_name(), t.schema_name());
        assert_eq!(back.len(), t.len());
        assert_eq!(back.root(), t.root());
        assert_eq!(back.post_order(), t.post_order());
        assert_eq!(back.leaf_count(), t.leaf_count());
        for (id, node) in t.iter() {
            assert_eq!(back.node(id).name, node.name);
            assert_eq!(back.node(id).children, node.children);
            assert_eq!(back.node(id).parents, node.parents);
            assert_eq!(back.path(id), t.path(id));
            assert_eq!(back.depth(id), t.depth(id));
            assert_eq!(back.leaves(id), t.leaves(id));
            assert_eq!(back.required_leaves(id), t.required_leaves(id));
        }
    }

    #[test]
    fn corrupt_schema_bytes_rejected() {
        let s = sample_schema();
        let mut w = WireWriter::new();
        s.write_wire(&mut w);
        let mut bytes = w.into_bytes();
        // Point an edge out of bounds.
        let last = bytes.len() - 1;
        bytes[last] = 0xff;
        let mut r = WireReader::new(&bytes);
        assert!(Schema::read_wire(&mut r).is_err());
        // Truncation anywhere must error, never panic.
        for cut in [1, 5, bytes.len() / 2, bytes.len() - 3] {
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(Schema::read_wire(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"hello frames").unwrap();
        write_frame(&mut buf, 0x84, &[]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some((7, b"hello frames".to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), Some((0x84, Vec::new())));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF between frames");
    }

    #[test]
    fn corrupt_frames_are_loud() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, b"payload bytes").unwrap();
        // Flipping any byte must fail to read (magic, kind/len/payload
        // via checksum, or the checksum itself).
        for i in 0..buf.len() {
            let mut broken = buf.clone();
            broken[i] ^= 0x01;
            assert!(read_frame(&mut &broken[..]).is_err(), "flipped byte {i} slipped through");
        }
        // Truncation inside the frame is an I/O error, not a hang or a
        // partial payload.
        for cut in 1..buf.len() {
            assert!(read_frame(&mut &buf[..cut]).is_err(), "cut at {cut}");
        }
        // Over-cap length prefix rejected before allocating.
        let mut oversized = buf.clone();
        oversized[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_frame(&mut &oversized[..]), Err(FrameError::Malformed(_))));
        assert!(write_frame(&mut Vec::new(), 0, &vec![0u8; MAX_FRAME_PAYLOAD + 1]).is_err());
    }

    #[test]
    fn fnv1a_is_stable() {
        // Known FNV-1a vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
