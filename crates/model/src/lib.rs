//! # cupid-model — the generic schema model of the Cupid paper (§8.1)
//!
//! *"In our generic schema model, a schema is a rooted graph whose nodes
//! are elements."* Elements are interconnected by three relationship
//! types — **containment** (each non-root element has exactly one
//! containment parent), **aggregation** (weak grouping, multiple parents
//! allowed; e.g. a compound key aggregating columns), and
//! **IsDerivedFrom** (shared type information: IsA / IsTypeOf) — plus
//! **RefInt** elements that reify referential constraints by aggregating
//! their source columns and *referencing* their target key (§8.3).
//!
//! The crate provides:
//! * [`Schema`] — an arena of [`Element`]s with the relationship edges,
//!   validated on construction ([`builder::SchemaBuilder`]);
//! * [`SchemaTree`] — the expanded schema tree of Figure 4, produced by
//!   [`tree::expand`]; type substitution materializes one node per
//!   context, which is what makes Cupid's context-dependent mappings
//!   possible (§8.2);
//! * join-view and view reification (Figure 6) in [`joinview`], which
//!   turns the tree into a DAG of schema paths;
//! * convenience builders for relational and XML-style schemas.
//!
//! The model is deliberately independent of any matcher: `cupid-core`,
//! the baselines, and the I/O layer all consume it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod element;
pub mod error;
pub mod joinview;
pub mod schema;
pub mod tree;
pub mod wire;

pub use builder::SchemaBuilder;
pub use element::{BroadType, DataType, Element, ElementId, ElementKind};
pub use error::ModelError;
pub use joinview::ExpandOptions;
pub use schema::Schema;
pub use tree::{expand, NodeId, SchemaTree, TreeNode};
pub use wire::{fnv1a, read_frame, write_frame, FrameError, WireError, WireReader, WireWriter};
