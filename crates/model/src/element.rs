//! Schema elements: the nodes of the schema graph.

use std::fmt;

/// Index of an element within its [`crate::Schema`] arena.
///
/// Ids are dense, start at 0 (the root), and are only meaningful relative
/// to the schema that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElementId(pub(crate) u32);

impl ElementId {
    /// Dense index for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index (bounds are checked at use sites).
    #[inline]
    pub fn from_index(i: usize) -> Self {
        ElementId(i as u32)
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// What kind of design artifact an element models. The matcher is generic
/// — kinds never change the algorithms — but they matter for display, for
/// the baselines (DIKE distinguishes entities from attributes), and for
/// schema import.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElementKind {
    /// The schema root.
    Schema,
    /// Relational table.
    Table,
    /// Relational column.
    Column,
    /// XML element.
    XmlElement,
    /// XML attribute.
    XmlAttribute,
    /// OO / description-logic class (the canonical examples of §9.1).
    Class,
    /// Class attribute or ER attribute.
    Attribute,
    /// ER entity (DIKE's remodeled schemas).
    Entity,
    /// ER relationship (DIKE's remodeled schemas).
    Relationship,
    /// A shared type definition (XSD complexType, OO class used as type).
    TypeDef,
    /// A key (primary/unique). Typically `not_instantiated`.
    Key,
    /// A referential-integrity (RefInt) element, e.g. a foreign key. It
    /// *aggregates* its source columns and *references* the target key.
    ForeignKey,
    /// A view definition: aggregates the elements it exposes (§8.4).
    View,
    /// Anything else.
    Other,
}

impl fmt::Display for ElementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ElementKind::Schema => "schema",
            ElementKind::Table => "table",
            ElementKind::Column => "column",
            ElementKind::XmlElement => "element",
            ElementKind::XmlAttribute => "attribute",
            ElementKind::Class => "class",
            ElementKind::Attribute => "attribute",
            ElementKind::Entity => "entity",
            ElementKind::Relationship => "relationship",
            ElementKind::TypeDef => "type",
            ElementKind::Key => "key",
            ElementKind::ForeignKey => "foreign-key",
            ElementKind::View => "view",
            ElementKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// Atomic data types, used for the compatibility lookup that seeds leaf
/// structural similarity (§6) and for the data-type categories of §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataType {
    /// No type information available.
    #[default]
    Unknown,
    /// Character data of any length.
    String,
    /// Integer numbers.
    Int,
    /// Fixed-point / exact decimal numbers.
    Decimal,
    /// Floating-point numbers.
    Float,
    /// Money amounts (several SQL dialects have a dedicated type).
    Money,
    /// Booleans / flags.
    Bool,
    /// Calendar dates.
    Date,
    /// Time of day.
    Time,
    /// Combined date + time.
    DateTime,
    /// Opaque binary data.
    Binary,
    /// Identifier types (XML ID/IDREF, GUIDs).
    Identifier,
    /// Enumerated value sets.
    Enumeration,
    /// Non-atomic: the element contains or derives other elements.
    Complex,
}

/// The broad type classes used for categorization (§5.2: *"a category for
/// each broad data type, e.g. all elements with a numeric data type are
/// grouped together in a category with the keyword Number"*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BroadType {
    /// Int, Decimal, Float, Money.
    Number,
    /// String, Identifier, Enumeration.
    Text,
    /// Date, Time, DateTime.
    Temporal,
    /// Bool.
    Boolean,
    /// Binary.
    Binary,
    /// Complex (non-leaf).
    Complex,
    /// Unknown.
    Unknown,
}

impl BroadType {
    /// Keyword naming the category for this broad class.
    pub fn keyword(self) -> &'static str {
        match self {
            BroadType::Number => "number",
            BroadType::Text => "text",
            BroadType::Temporal => "date",
            BroadType::Boolean => "boolean",
            BroadType::Binary => "binary",
            BroadType::Complex => "complex",
            BroadType::Unknown => "unknown",
        }
    }
}

impl DataType {
    /// The broad class this type belongs to.
    pub fn broad(self) -> BroadType {
        match self {
            DataType::Int | DataType::Decimal | DataType::Float | DataType::Money => {
                BroadType::Number
            }
            DataType::String | DataType::Identifier | DataType::Enumeration => BroadType::Text,
            DataType::Date | DataType::Time | DataType::DateTime => BroadType::Temporal,
            DataType::Bool => BroadType::Boolean,
            DataType::Binary => BroadType::Binary,
            DataType::Complex => BroadType::Complex,
            DataType::Unknown => BroadType::Unknown,
        }
    }

    /// Parse common SQL / XSD type spellings. Unrecognized spellings map
    /// to [`DataType::Unknown`] rather than erroring: schema import should
    /// be permissive.
    pub fn parse(s: &str) -> DataType {
        let t = s.trim().to_ascii_lowercase();
        let base = t.split(['(', ' ']).next().unwrap_or("");
        match base {
            "int" | "integer" | "smallint" | "bigint" | "tinyint" | "long" | "short" | "byte" => {
                DataType::Int
            }
            "decimal" | "numeric" | "number" => DataType::Decimal,
            "float" | "double" | "real" => DataType::Float,
            "money" | "currency" | "smallmoney" => DataType::Money,
            "varchar" | "char" | "nvarchar" | "nchar" | "text" | "string" | "clob" => {
                DataType::String
            }
            "bool" | "boolean" | "bit" => DataType::Bool,
            "date" => DataType::Date,
            "time" => DataType::Time,
            "datetime" | "timestamp" | "datetime2" | "smalldatetime" => DataType::DateTime,
            "binary" | "varbinary" | "blob" | "image" => DataType::Binary,
            "id" | "idref" | "guid" | "uuid" | "uniqueidentifier" | "identifier" => {
                DataType::Identifier
            }
            "enum" | "enumeration" => DataType::Enumeration,
            "complex" => DataType::Complex,
            _ => DataType::Unknown,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Unknown => "unknown",
            DataType::String => "string",
            DataType::Int => "int",
            DataType::Decimal => "decimal",
            DataType::Float => "float",
            DataType::Money => "money",
            DataType::Bool => "bool",
            DataType::Date => "date",
            DataType::Time => "time",
            DataType::DateTime => "datetime",
            DataType::Binary => "binary",
            DataType::Identifier => "identifier",
            DataType::Enumeration => "enum",
            DataType::Complex => "complex",
        };
        f.write_str(s)
    }
}

/// One schema element.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Element name as it appears in the schema.
    pub name: String,
    /// Artifact kind (table, column, XML element, …).
    pub kind: ElementKind,
    /// Atomic data type ([`DataType::Complex`] for structured elements).
    pub data_type: DataType,
    /// Optional elements (non-required XML attributes, nullable columns)
    /// are penalized less when unmatched (§8.4 "Optionality").
    pub optional: bool,
    /// `not_instantiated` elements (keys, foreign-key reifications) are
    /// skipped during schema-tree construction (§8.2).
    pub not_instantiated: bool,
    /// Part of a key — used by the DIKE baseline's "keyness" signal and
    /// available for constraint matching.
    pub is_key: bool,
    /// Free-text description / annotation from the data dictionary.
    pub annotation: Option<String>,
}

impl Element {
    /// A structured (non-leaf) element.
    pub fn structured(name: impl Into<String>, kind: ElementKind) -> Self {
        Element {
            name: name.into(),
            kind,
            data_type: DataType::Complex,
            optional: false,
            not_instantiated: false,
            is_key: false,
            annotation: None,
        }
    }

    /// An atomic (leaf) element with a data type.
    pub fn atomic(name: impl Into<String>, kind: ElementKind, data_type: DataType) -> Self {
        Element {
            name: name.into(),
            kind,
            data_type,
            optional: false,
            not_instantiated: false,
            is_key: false,
            annotation: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broad_classes() {
        assert_eq!(DataType::Int.broad(), BroadType::Number);
        assert_eq!(DataType::Money.broad(), BroadType::Number);
        assert_eq!(DataType::String.broad(), BroadType::Text);
        assert_eq!(DataType::Date.broad(), BroadType::Temporal);
        assert_eq!(DataType::DateTime.broad(), BroadType::Temporal);
        assert_eq!(DataType::Bool.broad(), BroadType::Boolean);
        assert_eq!(DataType::Complex.broad(), BroadType::Complex);
    }

    #[test]
    fn parse_sql_spellings() {
        assert_eq!(DataType::parse("VARCHAR(40)"), DataType::String);
        assert_eq!(DataType::parse("integer"), DataType::Int);
        assert_eq!(DataType::parse("NUMERIC(10,2)"), DataType::Decimal);
        assert_eq!(DataType::parse("timestamp"), DataType::DateTime);
        assert_eq!(DataType::parse("whatsit"), DataType::Unknown);
    }

    #[test]
    fn element_constructors() {
        let t = Element::structured("Orders", ElementKind::Table);
        assert_eq!(t.data_type, DataType::Complex);
        let c = Element::atomic("OrderID", ElementKind::Column, DataType::Int);
        assert_eq!(c.data_type, DataType::Int);
        assert!(!c.is_key);
    }

    #[test]
    fn id_round_trip() {
        let id = ElementId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "e7");
    }
}
