//! Schema-tree construction (§8.2, Figure 4).
//!
//! Structure matching runs on a *schema tree*: the schema graph expanded
//! by type substitution, so that every containment/IsDerivedFrom path from
//! the root to an element becomes its own tree node (its own *context*).
//! This is what lets Cupid map a shared `Address` type differently under
//! `DeliverTo` and `InvoiceTo`.
//!
//! Join-view and view reification (§8.3/§8.4) later add nodes with shared
//! children, turning the tree into a DAG of schema paths; all derived data
//! (post-order, leaf sets, required-leaf sets) is computed DAG-aware.

use crate::element::{DataType, ElementId, ElementKind};
use crate::error::ModelError;
use crate::joinview::{self, ExpandOptions};
use crate::schema::Schema;
use std::fmt;

/// Index of a node within a [`SchemaTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Dense index for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Synthetic node kinds added by reification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticKind {
    /// A join view reifying a referential constraint (Figure 6).
    JoinView,
    /// A reified view definition (§8.4).
    View,
}

/// One node of the schema tree. A node is one *context* of a schema
/// element; type substitution may create several nodes per element.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// The schema element this node instantiates.
    pub element: ElementId,
    /// Element name (copied for cheap access).
    pub name: String,
    /// Element kind.
    pub kind: ElementKind,
    /// Atomic data type (`Complex` for structured nodes).
    pub data_type: DataType,
    /// Whether this node is optional in this context.
    pub optional: bool,
    /// Synthetic marker for reified join views / views.
    pub synthetic: Option<SyntheticKind>,
    /// Parents; `parents[0]` is the primary (containment) parent used for
    /// path rendering. Extra parents come from reification (DAG).
    pub parents: Vec<NodeId>,
    /// Children, in schema order.
    pub children: Vec<NodeId>,
}

impl TreeNode {
    /// A node with no children (atomic content).
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// The expanded schema tree/DAG with precomputed traversal data.
#[derive(Debug, Clone)]
pub struct SchemaTree {
    schema_name: String,
    nodes: Vec<TreeNode>,
    root: NodeId,
    post_order: Vec<NodeId>,
    /// Per node: sorted leaf indices reachable from it.
    leaves: Vec<Vec<u32>>,
    /// Per node: sorted leaf indices reachable via at least one path with
    /// no optional node strictly below the node (§8.4 "Optionality").
    required_leaves: Vec<Vec<u32>>,
    /// leaf index → node id.
    leaf_nodes: Vec<NodeId>,
    /// node id → leaf index (dense; u32::MAX when not a leaf).
    leaf_index: Vec<u32>,
    /// Depth from root via primary parents (root = 0).
    depth: Vec<u32>,
    /// Dotted context path via primary parents.
    paths: Vec<String>,
}

impl SchemaTree {
    /// Name of the source schema.
    pub fn schema_name(&self) -> &str {
        &self.schema_name
    }

    /// Root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree has no nodes (never true for expanded schemas).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    pub fn node(&self, id: NodeId) -> &TreeNode {
        &self.nodes[id.index()]
    }

    /// Iterate `(id, node)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &TreeNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// Post-order (children before parents; DAG-aware, each node once).
    /// This is the traversal order TreeMatch uses — it is *"uniquely
    /// defined for a given tree"* and deterministic for our DAGs.
    pub fn post_order(&self) -> &[NodeId] {
        &self.post_order
    }

    /// Sorted leaf indices under `id` (including `id` itself if a leaf).
    pub fn leaves(&self, id: NodeId) -> &[u32] {
        &self.leaves[id.index()]
    }

    /// Leaf indices under `id` reachable through required-only paths.
    pub fn required_leaves(&self, id: NodeId) -> &[u32] {
        &self.required_leaves[id.index()]
    }

    /// Total number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaf_nodes.len()
    }

    /// Node of a leaf index.
    pub fn leaf_node(&self, leaf: u32) -> NodeId {
        self.leaf_nodes[leaf as usize]
    }

    /// Leaf index of a node, if it is a leaf.
    pub fn leaf_index(&self, id: NodeId) -> Option<u32> {
        let v = self.leaf_index[id.index()];
        (v != u32::MAX).then_some(v)
    }

    /// True if the node is a leaf.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id.index()].is_leaf()
    }

    /// Depth from the root (root = 0), via primary parents.
    pub fn depth(&self, id: NodeId) -> u32 {
        self.depth[id.index()]
    }

    /// Dotted context path, e.g. `PurchaseOrder.DeliverTo.Address.Street`.
    pub fn path(&self, id: NodeId) -> &str {
        &self.paths[id.index()]
    }

    /// Find the first node whose context path equals `path`.
    pub fn find_path(&self, path: &str) -> Option<NodeId> {
        self.paths.iter().position(|p| p == path).map(NodeId::from_index)
    }

    /// All nodes instantiating a given element (several in case of type
    /// substitution).
    pub fn nodes_of_element(&self, element: ElementId) -> Vec<NodeId> {
        self.iter().filter(|(_, n)| n.element == element).map(|(id, _)| id).collect()
    }

    /// Leaves under `id` restricted to depth `k` below it (§8.4 "Pruning
    /// leaves"): nodes at relative depth `k` are treated as pseudo-leaves.
    /// Returns the *node ids* of the pseudo-leaf frontier.
    pub fn frontier_at_depth(&self, id: NodeId, k: u32) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![(id, 0u32)];
        let mut seen = vec![false; self.nodes.len()];
        while let Some((n, d)) = stack.pop() {
            if seen[n.index()] {
                continue;
            }
            seen[n.index()] = true;
            let node = &self.nodes[n.index()];
            if node.is_leaf() || d == k {
                if n != id || node.is_leaf() {
                    out.push(n);
                }
                continue;
            }
            for &c in node.children.iter().rev() {
                stack.push((c, d + 1));
            }
        }
        out
    }

    // --- construction (crate-internal) --------------------------------

    pub(crate) fn new_empty(schema_name: String) -> Self {
        SchemaTree {
            schema_name,
            nodes: Vec::new(),
            root: NodeId(0),
            post_order: Vec::new(),
            leaves: Vec::new(),
            required_leaves: Vec::new(),
            leaf_nodes: Vec::new(),
            leaf_index: Vec::new(),
            depth: Vec::new(),
            paths: Vec::new(),
        }
    }

    pub(crate) fn push_node(&mut self, node: TreeNode) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// Set the root node (wire decoding; expansion sets it directly).
    pub(crate) fn set_root(&mut self, root: NodeId) {
        self.root = root;
    }

    /// Recompute every derived table from the adjacency — the wire
    /// decoder's entry to [`SchemaTree::finalize`].
    pub(crate) fn refresh_derived(&mut self) {
        self.finalize();
    }

    pub(crate) fn link(&mut self, parent: NodeId, child: NodeId) {
        self.nodes[parent.index()].children.push(child);
        self.nodes[child.index()].parents.push(parent);
    }

    /// Recompute all derived tables. Called after base expansion and again
    /// after reification mutates the graph.
    pub(crate) fn finalize(&mut self) {
        let n = self.nodes.len();
        // post-order DFS from root (iterative, DAG-aware)
        self.post_order.clear();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut stack: Vec<(NodeId, usize)> = vec![(self.root, 0)];
        state[self.root.index()] = 1;
        while let Some(&mut (node, ref mut ci)) = stack.last_mut() {
            let children = &self.nodes[node.index()].children;
            if *ci < children.len() {
                let c = children[*ci];
                *ci += 1;
                if state[c.index()] == 0 {
                    state[c.index()] = 1;
                    stack.push((c, 0));
                }
            } else {
                state[node.index()] = 2;
                self.post_order.push(node);
                stack.pop();
            }
        }

        // leaf numbering in post-order (≈ left-to-right)
        self.leaf_nodes.clear();
        self.leaf_index = vec![u32::MAX; n];
        for &id in &self.post_order {
            if self.nodes[id.index()].is_leaf() {
                self.leaf_index[id.index()] = self.leaf_nodes.len() as u32;
                self.leaf_nodes.push(id);
            }
        }

        // leaf sets + required leaf sets, bottom-up
        self.leaves = vec![Vec::new(); n];
        self.required_leaves = vec![Vec::new(); n];
        for &id in &self.post_order {
            let i = id.index();
            if self.nodes[i].is_leaf() {
                let li = self.leaf_index[i];
                self.leaves[i] = vec![li];
                self.required_leaves[i] = vec![li];
            } else {
                let mut all: Vec<u32> = Vec::new();
                let mut req: Vec<u32> = Vec::new();
                for &c in &self.nodes[i].children {
                    all.extend_from_slice(&self.leaves[c.index()]);
                    if !self.nodes[c.index()].optional {
                        req.extend_from_slice(&self.required_leaves[c.index()]);
                    }
                }
                all.sort_unstable();
                all.dedup();
                req.sort_unstable();
                req.dedup();
                self.leaves[i] = all;
                self.required_leaves[i] = req;
            }
        }

        // depth + paths via primary parents (BFS from root over first-parent
        // relation; reification parents never become primary)
        self.depth = vec![0; n];
        self.paths = vec![String::new(); n];
        // process in reverse post-order so parents come before children
        for &id in self.post_order.iter().rev() {
            let i = id.index();
            match self.nodes[i].parents.first().copied() {
                None => {
                    self.depth[i] = 0;
                    self.paths[i] = self.nodes[i].name.clone();
                }
                Some(p) => {
                    self.depth[i] = self.depth[p.index()] + 1;
                    self.paths[i] = format!("{}.{}", self.paths[p.index()], self.nodes[i].name);
                }
            }
        }
    }
}

/// Expand a schema graph into a schema tree (Figure 4), then apply the
/// requested reifications (join views, views).
///
/// Fails with [`ModelError::CycleDetected`] on recursive type definitions,
/// exactly as the paper specifies.
pub fn expand(schema: &Schema, opts: &ExpandOptions) -> Result<SchemaTree, ModelError> {
    let mut tree = SchemaTree::new_empty(schema.name().to_string());
    let mut on_stack = vec![false; schema.len()];
    let mut path: Vec<ElementId> = Vec::new();
    let root_node =
        construct(schema, schema.root(), None, true, &mut tree, &mut on_stack, &mut path)?;
    let Some(root_node) = root_node else {
        return Err(ModelError::EmptyTree);
    };
    tree.root = root_node;
    tree.finalize();
    joinview::reify(schema, &mut tree, opts);
    tree.finalize();
    Ok(tree)
}

/// Recursive worker mirroring Figure 4's `construct_schema_tree`.
///
/// `via_containment` is true when `current` was reached through a
/// containment relationship (or is the root); only then does a new tree
/// node get created. IsDerivedFrom arrivals splice the type's members into
/// the current node (type substitution).
fn construct(
    schema: &Schema,
    current: ElementId,
    mut current_stn: Option<NodeId>,
    via_containment: bool,
    tree: &mut SchemaTree,
    on_stack: &mut [bool],
    path: &mut Vec<ElementId>,
) -> Result<Option<NodeId>, ModelError> {
    if on_stack[current.index()] {
        return Err(ModelError::CycleDetected {
            at: current,
            path: path.iter().map(|e| schema.element(*e).name.clone()).collect(),
        });
    }
    let elem = schema.element(current);
    let mut created: Option<NodeId> = None;
    if via_containment {
        if elem.not_instantiated {
            return Ok(current_stn);
        }
        let node = tree.push_node(TreeNode {
            element: current,
            name: elem.name.clone(),
            kind: elem.kind,
            data_type: elem.data_type,
            optional: elem.optional,
            synthetic: None,
            parents: Vec::new(),
            children: Vec::new(),
        });
        if let Some(p) = current_stn {
            tree.link(p, node);
        }
        current_stn = Some(node);
        created = Some(node);
    }
    on_stack[current.index()] = true;
    path.push(current);
    for &child in schema.children(current) {
        construct(schema, child, current_stn, true, tree, on_stack, path)?;
    }
    for &ty in schema.derived_from(current) {
        construct(schema, ty, current_stn, false, tree, on_stack, path)?;
    }
    path.pop();
    on_stack[current.index()] = false;
    Ok(created.or(current_stn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::element::DataType;

    fn expand_plain(s: &Schema) -> SchemaTree {
        expand(s, &ExpandOptions::none()).unwrap()
    }

    /// The §8.2 example: Address shared by DeliverTo and InvoiceTo.
    fn shared_address_schema() -> Schema {
        let mut b = SchemaBuilder::new("PurchaseOrder");
        let addr_t = b.type_def("Address");
        b.atomic(addr_t, "Street", ElementKind::XmlElement, DataType::String);
        b.atomic(addr_t, "City", ElementKind::XmlElement, DataType::String);
        let deliver = b.structured(b.root(), "DeliverTo", ElementKind::XmlElement);
        let invoice = b.structured(b.root(), "InvoiceTo", ElementKind::XmlElement);
        b.derive_from(deliver, addr_t);
        b.derive_from(invoice, addr_t);
        b.build().unwrap()
    }

    #[test]
    fn simple_tree_mirrors_containment() {
        let mut b = SchemaBuilder::new("PO");
        let lines = b.structured(b.root(), "Lines", ElementKind::XmlElement);
        let item = b.structured(lines, "Item", ElementKind::XmlElement);
        b.atomic(item, "Line", ElementKind::XmlAttribute, DataType::Int);
        b.atomic(item, "Qty", ElementKind::XmlAttribute, DataType::Int);
        let t = expand_plain(&b.build().unwrap());
        assert_eq!(t.len(), 5);
        assert!(t.find_path("PO.Lines.Item.Qty").is_some());
        assert_eq!(t.leaf_count(), 2);
        // post-order: leaves before parents, root last
        assert_eq!(*t.post_order().last().unwrap(), t.root());
    }

    #[test]
    fn type_substitution_duplicates_shared_members() {
        let t = expand_plain(&shared_address_schema());
        // Street and City appear once under DeliverTo and once under
        // InvoiceTo; the Address type itself is not instantiated.
        assert!(t.find_path("PurchaseOrder.DeliverTo.Street").is_some());
        assert!(t.find_path("PurchaseOrder.DeliverTo.City").is_some());
        assert!(t.find_path("PurchaseOrder.InvoiceTo.Street").is_some());
        assert!(t.find_path("PurchaseOrder.InvoiceTo.City").is_some());
        assert_eq!(t.leaf_count(), 4);
        // 1 root + 2 contexts × (1 parent + 2 leaves)... parents are
        // DeliverTo/InvoiceTo themselves: 1 + 2 + 4 = 7 nodes.
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn multi_level_derivation() {
        // USAddress specializes Address (§8.1 example): an element typed
        // USAddress inherits Street from Address.
        let mut b = SchemaBuilder::new("S");
        let addr = b.type_def("Address");
        b.atomic(addr, "Street", ElementKind::XmlElement, DataType::String);
        let us = b.type_def("USAddress");
        b.atomic(us, "ZipCode", ElementKind::XmlElement, DataType::String);
        b.derive_from(us, addr);
        let ship = b.structured(b.root(), "ShipTo", ElementKind::XmlElement);
        b.derive_from(ship, us);
        let t = expand_plain(&b.build().unwrap());
        assert!(t.find_path("S.ShipTo.ZipCode").is_some());
        assert!(t.find_path("S.ShipTo.Street").is_some());
    }

    #[test]
    fn recursive_types_fail() {
        let mut b = SchemaBuilder::new("S");
        let part = b.type_def("Part");
        let sub = b.structured(part, "SubPart", ElementKind::XmlElement);
        b.derive_from(sub, part); // Part contains SubPart which IS-A Part
        let e = b.structured(b.root(), "Root", ElementKind::XmlElement);
        b.derive_from(e, part);
        let err = expand(&b.build().unwrap(), &ExpandOptions::none()).unwrap_err();
        assert!(matches!(err, ModelError::CycleDetected { .. }));
    }

    #[test]
    fn not_instantiated_elements_skipped() {
        let mut bld = SchemaBuilder::new("RDB");
        let t1 = bld.table("Orders");
        let oid = bld.column(t1, "OrderID", DataType::Int);
        bld.primary_key(t1, &[oid]);
        let t = expand_plain(&bld.build().unwrap());
        // Root, Orders, OrderID — the pk Key element is not a node.
        assert_eq!(t.len(), 3);
        assert!(t.find_path("RDB.Orders.OrderID").is_some());
    }

    #[test]
    fn optionality_and_required_leaves() {
        let mut b = SchemaBuilder::new("S");
        let e = b.structured(b.root(), "E", ElementKind::XmlElement);
        let req = b.atomic(e, "Req", ElementKind::XmlAttribute, DataType::String);
        let opt = b.atomic(e, "Opt", ElementKind::XmlAttribute, DataType::String);
        b.set_optional(opt, true);
        let og = b.structured(b.root(), "OptGroup", ElementKind::XmlElement);
        b.set_optional(og, true);
        b.atomic(og, "Inner", ElementKind::XmlAttribute, DataType::String);
        let _ = req;
        let t = expand_plain(&b.build().unwrap());
        let root = t.root();
        assert_eq!(t.leaves(root).len(), 3);
        // Only "Req" is reachable all-required from the root.
        let req_paths: Vec<&str> =
            t.required_leaves(root).iter().map(|&l| t.path(t.leaf_node(l))).collect();
        assert_eq!(req_paths, ["S.E.Req"]);
        // From E's own perspective, Req is required, Opt is optional.
        let e_node = t.find_path("S.E").unwrap();
        assert_eq!(t.required_leaves(e_node).len(), 1);
        assert_eq!(t.leaves(e_node).len(), 2);
        // "Inner" is required *relative to OptGroup* (no optional node
        // strictly below OptGroup).
        let og_node = t.find_path("S.OptGroup").unwrap();
        assert_eq!(t.required_leaves(og_node).len(), 1);
    }

    #[test]
    fn post_order_children_before_parents() {
        let t = expand_plain(&shared_address_schema());
        let pos: std::collections::HashMap<NodeId, usize> =
            t.post_order().iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for (id, node) in t.iter() {
            for &c in &node.children {
                assert!(pos[&c] < pos[&id], "child {c} must precede parent {id}");
            }
        }
        assert_eq!(t.post_order().len(), t.len());
    }

    #[test]
    fn frontier_at_depth() {
        let mut b = SchemaBuilder::new("S");
        let a = b.structured(b.root(), "A", ElementKind::XmlElement);
        let bb = b.structured(a, "B", ElementKind::XmlElement);
        b.atomic(bb, "C", ElementKind::XmlAttribute, DataType::String);
        let t = expand_plain(&b.build().unwrap());
        let root = t.root();
        let f1 = t.frontier_at_depth(root, 1);
        assert_eq!(f1.len(), 1);
        assert_eq!(t.path(f1[0]), "S.A");
        let f9 = t.frontier_at_depth(root, 9);
        assert_eq!(t.path(f9[0]), "S.A.B.C");
    }

    #[test]
    fn depths() {
        let t = expand_plain(&shared_address_schema());
        assert_eq!(t.depth(t.root()), 0);
        let street = t.find_path("PurchaseOrder.DeliverTo.Street").unwrap();
        assert_eq!(t.depth(street), 2);
    }
}
