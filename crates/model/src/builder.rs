//! Fluent construction of schema graphs, with relational and XML helpers.

use crate::element::{DataType, Element, ElementId, ElementKind};
use crate::error::ModelError;
use crate::schema::{Edges, Schema};

/// Builder for [`Schema`]. The root element is created by
/// [`SchemaBuilder::new`]; all other elements are added relative to it.
///
/// ```
/// use cupid_model::{SchemaBuilder, ElementKind, DataType};
/// let mut b = SchemaBuilder::new("PO");
/// let lines = b.structured(b.root(), "POLines", ElementKind::XmlElement);
/// let item = b.structured(lines, "Item", ElementKind::XmlElement);
/// b.atomic(item, "Qty", ElementKind::XmlAttribute, DataType::Int);
/// let schema = b.build().unwrap();
/// assert_eq!(schema.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    name: String,
    elements: Vec<Element>,
    edges: Vec<Edges>,
    error: Option<ModelError>,
}

impl SchemaBuilder {
    /// Start a schema whose root element carries the schema name.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        SchemaBuilder {
            name: name.clone(),
            elements: vec![Element::structured(name, ElementKind::Schema)],
            edges: vec![Edges::default()],
            error: None,
        }
    }

    /// The root element id.
    pub fn root(&self) -> ElementId {
        ElementId::from_index(0)
    }

    /// Add a free-standing element (no containment yet). Most callers
    /// should use [`SchemaBuilder::structured`] / [`SchemaBuilder::atomic`].
    pub fn add(&mut self, element: Element) -> ElementId {
        let id = ElementId::from_index(self.elements.len());
        self.elements.push(element);
        self.edges.push(Edges::default());
        id
    }

    fn check(&mut self, id: ElementId) -> bool {
        if id.index() >= self.elements.len() {
            self.error.get_or_insert(ModelError::InvalidElement { id, len: self.elements.len() });
            return false;
        }
        true
    }

    /// Add a structured (non-leaf) element contained in `parent`.
    pub fn structured(
        &mut self,
        parent: ElementId,
        name: impl Into<String>,
        kind: ElementKind,
    ) -> ElementId {
        let id = self.add(Element::structured(name, kind));
        self.contain(parent, id);
        id
    }

    /// Add an atomic (leaf) element contained in `parent`.
    pub fn atomic(
        &mut self,
        parent: ElementId,
        name: impl Into<String>,
        kind: ElementKind,
        data_type: DataType,
    ) -> ElementId {
        let id = self.add(Element::atomic(name, kind, data_type));
        self.contain(parent, id);
        id
    }

    /// Record a containment edge. Each element may have only one
    /// containment parent (§8.1).
    pub fn contain(&mut self, parent: ElementId, child: ElementId) -> &mut Self {
        if !self.check(parent) || !self.check(child) {
            return self;
        }
        if parent == child {
            self.error.get_or_insert(ModelError::SelfRelationship { id: parent });
            return self;
        }
        if let Some(existing) = self.edges[child.index()].parent {
            self.error.get_or_insert(ModelError::DuplicateContainmentParent {
                child,
                existing,
                rejected: parent,
            });
            return self;
        }
        self.edges[child.index()].parent = Some(parent);
        self.edges[parent.index()].children.push(child);
        self
    }

    /// Record an IsDerivedFrom edge: `element` derives from (is typed by /
    /// is a) `type_elem`.
    pub fn derive_from(&mut self, element: ElementId, type_elem: ElementId) -> &mut Self {
        if !self.check(element) || !self.check(type_elem) {
            return self;
        }
        if element == type_elem {
            self.error.get_or_insert(ModelError::SelfRelationship { id: element });
            return self;
        }
        self.edges[element.index()].derived_from.push(type_elem);
        self
    }

    /// Record an aggregation edge (key/view membership).
    pub fn aggregate(&mut self, aggregator: ElementId, member: ElementId) -> &mut Self {
        if !self.check(aggregator) || !self.check(member) {
            return self;
        }
        if aggregator == member {
            self.error.get_or_insert(ModelError::SelfRelationship { id: aggregator });
            return self;
        }
        self.edges[aggregator.index()].aggregates.push(member);
        self
    }

    /// Record a reference edge (RefInt → target key/column).
    pub fn reference(&mut self, refint: ElementId, target: ElementId) -> &mut Self {
        if !self.check(refint) || !self.check(target) {
            return self;
        }
        if refint == target {
            self.error.get_or_insert(ModelError::SelfRelationship { id: refint });
            return self;
        }
        self.edges[refint.index()].references.push(target);
        self
    }

    /// Mark an element optional (§8.4 "Optionality").
    pub fn set_optional(&mut self, id: ElementId, optional: bool) -> &mut Self {
        if self.check(id) {
            self.elements[id.index()].optional = optional;
        }
        self
    }

    /// Mark an element `not_instantiated`; it will be skipped during
    /// schema-tree construction (keys, FK reifications).
    pub fn set_not_instantiated(&mut self, id: ElementId, v: bool) -> &mut Self {
        if self.check(id) {
            self.elements[id.index()].not_instantiated = v;
        }
        self
    }

    /// Mark an element as (part of) a key.
    pub fn set_key(&mut self, id: ElementId, v: bool) -> &mut Self {
        if self.check(id) {
            self.elements[id.index()].is_key = v;
        }
        self
    }

    /// Attach a free-text annotation.
    pub fn annotate(&mut self, id: ElementId, text: impl Into<String>) -> &mut Self {
        if self.check(id) {
            self.elements[id.index()].annotation = Some(text.into());
        }
        self
    }

    // ----- relational convenience layer -------------------------------

    /// Add a table under the schema root.
    pub fn table(&mut self, name: impl Into<String>) -> ElementId {
        self.structured(self.root(), name, ElementKind::Table)
    }

    /// Add a column to a table.
    pub fn column(
        &mut self,
        table: ElementId,
        name: impl Into<String>,
        data_type: DataType,
    ) -> ElementId {
        self.atomic(table, name, ElementKind::Column, data_type)
    }

    /// Declare a primary key over `columns`. Creates a `Key` element
    /// (contained in the table, `not_instantiated`) that aggregates the
    /// key columns, and marks the columns as keys.
    pub fn primary_key(&mut self, table: ElementId, columns: &[ElementId]) -> ElementId {
        let table_name = self.elements[table.index()].name.clone();
        let key = self.add(Element {
            name: format!("{table_name}-pk"),
            kind: ElementKind::Key,
            data_type: DataType::Unknown,
            optional: false,
            not_instantiated: true,
            is_key: true,
            annotation: None,
        });
        self.contain(table, key);
        for &c in columns {
            self.aggregate(key, c);
            self.set_key(c, true);
        }
        key
    }

    /// Declare a foreign key: `columns` of `table` reference `target`
    /// (usually the target table's primary-key element). Creates a
    /// `ForeignKey` RefInt element per Figure 5: it aggregates the source
    /// columns and references the target.
    pub fn foreign_key(
        &mut self,
        table: ElementId,
        name: impl Into<String>,
        columns: &[ElementId],
        target: ElementId,
    ) -> ElementId {
        let fk = self.add(Element {
            name: name.into(),
            kind: ElementKind::ForeignKey,
            data_type: DataType::Unknown,
            optional: false,
            not_instantiated: true,
            is_key: false,
            annotation: None,
        });
        self.contain(table, fk);
        for &c in columns {
            self.aggregate(fk, c);
        }
        self.reference(fk, target);
        fk
    }

    /// Declare a view exposing `members`. Creates a `View` element under
    /// the root (`not_instantiated`; reified during expansion, §8.4).
    pub fn view(&mut self, name: impl Into<String>, members: &[ElementId]) -> ElementId {
        let v = self.add(Element {
            name: name.into(),
            kind: ElementKind::View,
            data_type: DataType::Complex,
            optional: false,
            not_instantiated: true,
            is_key: false,
            annotation: None,
        });
        self.contain(self.root(), v);
        for &m in members {
            self.aggregate(v, m);
        }
        v
    }

    /// Add a shared type definition under the root (not instantiated on
    /// its own; participates via IsDerivedFrom).
    pub fn type_def(&mut self, name: impl Into<String>) -> ElementId {
        let t = self.add(Element {
            name: name.into(),
            kind: ElementKind::TypeDef,
            data_type: DataType::Complex,
            optional: false,
            not_instantiated: true,
            is_key: false,
            annotation: None,
        });
        self.contain(self.root(), t);
        t
    }

    /// Finish and validate.
    pub fn build(self) -> Result<Schema, ModelError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let schema = Schema { name: self.name, elements: self.elements, edges: self.edges };
        schema.validate()?;
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relational_helpers_wire_up_keys_and_fks() {
        let mut b = SchemaBuilder::new("RDB");
        let orders = b.table("Orders");
        let oid = b.column(orders, "OrderID", DataType::Int);
        let cid = b.column(orders, "CustomerID", DataType::Int);
        let customers = b.table("Customers");
        let ccid = b.column(customers, "CustomerID", DataType::Int);
        let cpk = b.primary_key(customers, &[ccid]);
        b.primary_key(orders, &[oid]);
        let fk = b.foreign_key(orders, "Orders-Customers-fk", &[cid], cpk);
        let s = b.build().unwrap();

        assert_eq!(s.element(fk).kind, ElementKind::ForeignKey);
        assert!(s.element(fk).not_instantiated);
        assert_eq!(s.aggregates(fk), &[cid]);
        assert_eq!(s.references(fk), &[cpk]);
        assert!(s.element(ccid).is_key);
        assert!(s.element(oid).is_key);
        assert_eq!(s.foreign_keys(), vec![fk]);
    }

    #[test]
    fn duplicate_containment_rejected() {
        let mut b = SchemaBuilder::new("S");
        let a = b.structured(b.root(), "A", ElementKind::XmlElement);
        let x = b.structured(a, "X", ElementKind::XmlElement);
        let bb = b.structured(b.root(), "B", ElementKind::XmlElement);
        b.contain(bb, x); // second parent
        let err = b.build().unwrap_err();
        assert!(matches!(err, ModelError::DuplicateContainmentParent { .. }));
    }

    #[test]
    fn self_relationship_rejected() {
        let mut b = SchemaBuilder::new("S");
        let a = b.structured(b.root(), "A", ElementKind::XmlElement);
        b.derive_from(a, a);
        assert!(matches!(b.build().unwrap_err(), ModelError::SelfRelationship { .. }));
    }

    #[test]
    fn invalid_id_rejected() {
        let mut b = SchemaBuilder::new("S");
        let bogus = ElementId::from_index(99);
        b.contain(b.root(), bogus);
        assert!(matches!(b.build().unwrap_err(), ModelError::InvalidElement { .. }));
    }

    #[test]
    fn view_and_type_def_are_not_instantiated() {
        let mut b = SchemaBuilder::new("S");
        let t = b.table("T");
        let c = b.column(t, "C", DataType::Int);
        let v = b.view("V", &[c]);
        let td = b.type_def("Address");
        let s = b.build().unwrap();
        assert!(s.element(v).not_instantiated);
        assert!(s.element(td).not_instantiated);
        assert_eq!(s.views(), vec![v]);
        assert_eq!(s.aggregates(v), &[c]);
    }

    #[test]
    fn builder_reports_first_error_only() {
        let mut b = SchemaBuilder::new("S");
        let a = b.structured(b.root(), "A", ElementKind::XmlElement);
        b.derive_from(a, a); // first error
        b.contain(b.root(), ElementId::from_index(50)); // second error
        assert!(matches!(b.build().unwrap_err(), ModelError::SelfRelationship { .. }));
    }
}
