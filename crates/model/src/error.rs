//! Errors for schema construction and expansion.

use std::fmt;

use crate::element::ElementId;

/// Errors raised while building a schema graph or expanding it into a
/// schema tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// An element id referenced an element outside this schema's arena.
    InvalidElement {
        /// The out-of-range id.
        id: ElementId,
        /// Number of elements in the arena.
        len: usize,
    },
    /// An element was given two containment parents. Containment *"models
    /// physical containment in the sense that each element (except the
    /// root) is contained by exactly one other element"* (§8.1).
    DuplicateContainmentParent {
        /// The element that already had a parent.
        child: ElementId,
        /// Its existing parent.
        existing: ElementId,
        /// The rejected second parent.
        rejected: ElementId,
    },
    /// The containment/IsDerivedFrom structure contains a cycle, i.e. a
    /// recursive type. *"Schema tree construction fails if a cycle of
    /// containment and IsDerivedFrom relationships is present"* (§8.2).
    CycleDetected {
        /// The element at which the cycle closed.
        at: ElementId,
        /// Element names along the offending expansion path.
        path: Vec<String>,
    },
    /// An element name was empty.
    EmptyName {
        /// Offending element.
        id: ElementId,
    },
    /// A relationship connected an element to itself.
    SelfRelationship {
        /// Offending element.
        id: ElementId,
    },
    /// The expanded tree would be empty (root `not_instantiated`).
    EmptyTree,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidElement { id, len } => {
                write!(f, "element id {id} out of range (schema has {len} elements)")
            }
            ModelError::DuplicateContainmentParent { child, existing, rejected } => write!(
                f,
                "element {child} already contained by {existing}; cannot also be contained by {rejected}"
            ),
            ModelError::CycleDetected { at, path } => {
                write!(f, "recursive type: cycle at {at} along path {}", path.join(" -> "))
            }
            ModelError::EmptyName { id } => write!(f, "element {id} has an empty name"),
            ModelError::SelfRelationship { id } => {
                write!(f, "element {id} is related to itself")
            }
            ModelError::EmptyTree => write!(f, "schema expands to an empty tree"),
        }
    }
}

impl std::error::Error for ModelError {}
