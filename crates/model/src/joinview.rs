//! Reification of referential constraints and views (§8.3, §8.4, Fig. 6).
//!
//! *"We interpret referential constraints as potential join views. For
//! each foreign key, we introduce a node that represents the join of the
//! participating tables. … Notice that the join view node has as its
//! children the columns from both the tables. The common ancestor of the
//! two tables is made the parent of the new join view node."*
//!
//! The children are the *existing* column nodes, shared between the table
//! node and the join node — this is what turns the schema tree into a DAG
//! of schema paths. Following the paper, we add one node per foreign key
//! (no combinations of multiple FKs) and we do not recursively expand
//! foreign keys inside join views.

use crate::element::ElementKind;
use crate::schema::Schema;
use crate::tree::{NodeId, SchemaTree, SyntheticKind, TreeNode};

/// Which reifications to apply during [`crate::tree::expand`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpandOptions {
    /// Add a join-view node per foreign key (Figure 6).
    pub join_views: bool,
    /// Add a node per view definition (§8.4 "Views").
    pub views: bool,
}

impl ExpandOptions {
    /// No reification: the plain schema tree of Figure 4.
    pub fn none() -> Self {
        ExpandOptions { join_views: false, views: false }
    }

    /// All reifications (the configuration used for the relational
    /// experiments of §9.2).
    pub fn all() -> Self {
        ExpandOptions { join_views: true, views: true }
    }
}

impl Default for ExpandOptions {
    fn default() -> Self {
        ExpandOptions::all()
    }
}

/// Apply the requested reifications to an already-expanded tree. The tree
/// must have been finalized (paths/depths available); the caller
/// re-finalizes afterwards.
pub(crate) fn reify(schema: &Schema, tree: &mut SchemaTree, opts: &ExpandOptions) {
    if opts.join_views {
        reify_join_views(schema, tree);
    }
    if opts.views {
        reify_views(schema, tree);
    }
}

fn lca(tree: &SchemaTree, a: NodeId, b: NodeId) -> NodeId {
    let (mut x, mut y) = (a, b);
    while tree.depth(x) > tree.depth(y) {
        x = tree.node(x).parents[0];
    }
    while tree.depth(y) > tree.depth(x) {
        y = tree.node(y).parents[0];
    }
    while x != y {
        x = tree.node(x).parents[0];
        y = tree.node(y).parents[0];
    }
    x
}

fn reify_join_views(schema: &Schema, tree: &mut SchemaTree) {
    for fk in schema.foreign_keys() {
        let Some(source_table) = schema.parent(fk) else { continue };
        let Some(&target_key) = schema.references(fk).first() else { continue };
        // The reference target is either a key element (whose containment
        // parent is the table) or a column directly.
        let Some(target_table) = schema.parent(target_key) else { continue };
        let source_nodes = tree.nodes_of_element(source_table);
        let target_nodes = tree.nodes_of_element(target_table);
        for &sa in &source_nodes {
            for &tb in &target_nodes {
                if sa == tb {
                    continue;
                }
                let parent = lca(tree, sa, tb);
                let join = tree.push_node(TreeNode {
                    element: fk,
                    name: schema.element(fk).name.clone(),
                    kind: ElementKind::ForeignKey,
                    data_type: crate::element::DataType::Complex,
                    optional: false,
                    synthetic: Some(SyntheticKind::JoinView),
                    parents: Vec::new(),
                    children: Vec::new(),
                });
                tree.link(parent, join);
                // children: the columns of both tables (shared nodes).
                let mut kids: Vec<NodeId> = Vec::new();
                for table_node in [sa, tb] {
                    for &c in &tree.node(table_node).children {
                        if tree.node(c).synthetic.is_none() {
                            kids.push(c);
                        }
                    }
                }
                for c in kids {
                    tree.link(join, c);
                }
            }
        }
    }
}

fn reify_views(schema: &Schema, tree: &mut SchemaTree) {
    for v in schema.views() {
        let members: Vec<NodeId> =
            schema.aggregates(v).iter().flat_map(|&m| tree.nodes_of_element(m)).collect();
        if members.is_empty() {
            continue;
        }
        let node = tree.push_node(TreeNode {
            element: v,
            name: schema.element(v).name.clone(),
            kind: ElementKind::View,
            data_type: crate::element::DataType::Complex,
            optional: false,
            synthetic: Some(SyntheticKind::View),
            parents: Vec::new(),
            children: Vec::new(),
        });
        let root = tree.root();
        tree.link(root, node);
        for m in members {
            tree.link(node, m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::element::DataType;
    use crate::tree::expand;

    /// Figure 6: PurchaseOrder(OrderID, ProductName, CustomerID→Customer),
    /// Customer(CustomerID, Name, Address).
    fn fig6_schema() -> Schema {
        let mut b = SchemaBuilder::new("DB");
        let po = b.table("PurchaseOrder");
        let oid = b.column(po, "OrderID", DataType::Int);
        b.column(po, "ProductName", DataType::String);
        let po_cid = b.column(po, "CustomerID", DataType::Int);
        b.primary_key(po, &[oid]);
        let cust = b.table("Customer");
        let cid = b.column(cust, "CustomerID", DataType::Int);
        b.column(cust, "Name", DataType::String);
        b.column(cust, "Address", DataType::String);
        let cpk = b.primary_key(cust, &[cid]);
        b.foreign_key(po, "Order-Customer-fk", &[po_cid], cpk);
        b.build().unwrap()
    }

    #[test]
    fn join_view_node_added_with_both_tables_columns() {
        let s = fig6_schema();
        let t = expand(&s, &ExpandOptions::all()).unwrap();
        let join = t.find_path("DB.Order-Customer-fk").expect("join view node");
        let node = t.node(join);
        assert_eq!(node.synthetic, Some(SyntheticKind::JoinView));
        // Children: 3 PurchaseOrder columns + 3 Customer columns.
        assert_eq!(node.children.len(), 6);
        // Children are shared with the table nodes (DAG).
        let po_cid = t.find_path("DB.PurchaseOrder.CustomerID").unwrap();
        assert!(node.children.contains(&po_cid));
        assert_eq!(t.node(po_cid).parents.len(), 2);
        // Parent of the join node is the common ancestor (the root).
        assert_eq!(node.parents[0], t.root());
    }

    #[test]
    fn leaf_sets_shared_through_join_views() {
        let s = fig6_schema();
        let t = expand(&s, &ExpandOptions::all()).unwrap();
        // Leaf count unchanged by reification: no leaves duplicated.
        assert_eq!(t.leaf_count(), 6);
        let join = t.find_path("DB.Order-Customer-fk").unwrap();
        assert_eq!(t.leaves(join).len(), 6);
        let root = t.root();
        assert_eq!(t.leaves(root).len(), 6);
    }

    #[test]
    fn no_join_views_without_option() {
        let s = fig6_schema();
        let t = expand(&s, &ExpandOptions::none()).unwrap();
        assert!(t.find_path("DB.Order-Customer-fk").is_none());
    }

    #[test]
    fn view_reification() {
        let mut b = SchemaBuilder::new("DB");
        let t1 = b.table("Orders");
        let c1 = b.column(t1, "OrderID", DataType::Int);
        let t2 = b.table("Items");
        let c2 = b.column(t2, "ItemID", DataType::Int);
        b.view("OrderItems", &[c1, c2]);
        let s = b.build().unwrap();
        let t = expand(&s, &ExpandOptions::all()).unwrap();
        let v = t.find_path("DB.OrderItems").expect("view node");
        assert_eq!(t.node(v).synthetic, Some(SyntheticKind::View));
        assert_eq!(t.node(v).children.len(), 2);
        assert_eq!(t.leaves(v).len(), 2);
    }

    #[test]
    fn multiple_fks_one_node_each() {
        // Sales(CustomerID→Customers, ProductID→Products)
        let mut b = SchemaBuilder::new("DB");
        let sales = b.table("Sales");
        let s_cid = b.column(sales, "CustomerID", DataType::Int);
        let s_pid = b.column(sales, "ProductID", DataType::Int);
        let cust = b.table("Customers");
        let cid = b.column(cust, "CustomerID", DataType::Int);
        let cpk = b.primary_key(cust, &[cid]);
        let prod = b.table("Products");
        let pid = b.column(prod, "ProductID", DataType::Int);
        let ppk = b.primary_key(prod, &[pid]);
        b.foreign_key(sales, "Sales-Customers-fk", &[s_cid], cpk);
        b.foreign_key(sales, "Sales-Products-fk", &[s_pid], ppk);
        let t = expand(&b.build().unwrap(), &ExpandOptions::all()).unwrap();
        assert!(t.find_path("DB.Sales-Customers-fk").is_some());
        assert!(t.find_path("DB.Sales-Products-fk").is_some());
        // No combination node for the pair of FKs (paper's choice).
        let synthetic: Vec<_> =
            t.iter().filter(|(_, n)| n.synthetic == Some(SyntheticKind::JoinView)).collect();
        assert_eq!(synthetic.len(), 2);
    }
}
