//! The schema graph: an arena of elements plus relationship edges.

use crate::element::{Element, ElementId, ElementKind};
use crate::error::ModelError;

/// Per-element adjacency. Kept private; [`Schema`] exposes accessor
/// methods so the representation can evolve.
#[derive(Debug, Clone, Default)]
pub(crate) struct Edges {
    /// Containment parent (exactly one, except the root).
    pub parent: Option<ElementId>,
    /// Ordered containment children.
    pub children: Vec<ElementId>,
    /// IsDerivedFrom targets (the types this element derives from).
    pub derived_from: Vec<ElementId>,
    /// Aggregation members (for keys, foreign keys, views).
    pub aggregates: Vec<ElementId>,
    /// Reference targets (RefInt → referenced key), 1:n.
    pub references: Vec<ElementId>,
}

/// A schema: a rooted graph of [`Element`]s (§8.1).
///
/// Construction goes through [`crate::SchemaBuilder`], which validates the
/// graph. Element 0 is always the root.
#[derive(Debug, Clone)]
pub struct Schema {
    pub(crate) name: String,
    pub(crate) elements: Vec<Element>,
    pub(crate) edges: Vec<Edges>,
}

impl Schema {
    /// Schema name (usually the root element's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root element id.
    pub fn root(&self) -> ElementId {
        ElementId(0)
    }

    /// Rename the schema — and its root element, which carries the
    /// schema name (paths and the repository key follow). Useful when
    /// registering the same schema shape under several names.
    pub fn rename(&mut self, name: impl Into<String>) {
        let name = name.into();
        self.elements[0].name.clone_from(&name);
        self.name = name;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if the schema has no elements. (Never true for built schemas;
    /// provided for API completeness.)
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Access an element.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.index()]
    }

    /// Iterate over `(id, element)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ElementId, &Element)> {
        self.elements.iter().enumerate().map(|(i, e)| (ElementId::from_index(i), e))
    }

    /// Containment parent, if any.
    pub fn parent(&self, id: ElementId) -> Option<ElementId> {
        self.edges[id.index()].parent
    }

    /// Ordered containment children.
    pub fn children(&self, id: ElementId) -> &[ElementId] {
        &self.edges[id.index()].children
    }

    /// IsDerivedFrom targets.
    pub fn derived_from(&self, id: ElementId) -> &[ElementId] {
        &self.edges[id.index()].derived_from
    }

    /// Aggregation members.
    pub fn aggregates(&self, id: ElementId) -> &[ElementId] {
        &self.edges[id.index()].aggregates
    }

    /// Reference targets.
    pub fn references(&self, id: ElementId) -> &[ElementId] {
        &self.edges[id.index()].references
    }

    /// All foreign-key (RefInt) elements, in id order.
    pub fn foreign_keys(&self) -> Vec<ElementId> {
        self.iter().filter(|(_, e)| e.kind == ElementKind::ForeignKey).map(|(id, _)| id).collect()
    }

    /// All view elements, in id order.
    pub fn views(&self) -> Vec<ElementId> {
        self.iter().filter(|(_, e)| e.kind == ElementKind::View).map(|(id, _)| id).collect()
    }

    /// Dotted containment path of an element from the root, e.g.
    /// `PO.POLines.Item.Qty`. Used for diagnostics and the path-name
    /// linguistic experiment of §9.3(3).
    pub fn containment_path(&self, id: ElementId) -> String {
        let mut parts: Vec<&str> = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            parts.push(&self.elements[c.index()].name);
            cur = self.edges[c.index()].parent;
        }
        parts.reverse();
        parts.join(".")
    }

    /// Find the first element with the given name (case-sensitive),
    /// searching in id order. Convenience for tests and examples.
    pub fn find(&self, name: &str) -> Option<ElementId> {
        self.iter().find(|(_, e)| e.name == name).map(|(id, _)| id)
    }

    /// Find an element by its dotted containment path.
    pub fn find_path(&self, path: &str) -> Option<ElementId> {
        self.iter().find(|(id, _)| self.containment_path(*id) == path).map(|(id, _)| id)
    }

    /// Validate internal invariants. Called by the builder; public so
    /// deserialized or hand-mutated schemas can be re-checked.
    pub fn validate(&self) -> Result<(), ModelError> {
        let len = self.elements.len();
        let check = |id: ElementId| -> Result<(), ModelError> {
            if id.index() >= len {
                Err(ModelError::InvalidElement { id, len })
            } else {
                Ok(())
            }
        };
        for (i, (e, edges)) in self.elements.iter().zip(&self.edges).enumerate() {
            let id = ElementId::from_index(i);
            if e.name.is_empty() {
                return Err(ModelError::EmptyName { id });
            }
            for &c in edges
                .children
                .iter()
                .chain(&edges.derived_from)
                .chain(&edges.aggregates)
                .chain(&edges.references)
            {
                check(c)?;
                if c == id {
                    return Err(ModelError::SelfRelationship { id });
                }
            }
            if let Some(p) = edges.parent {
                check(p)?;
                if p == id {
                    return Err(ModelError::SelfRelationship { id });
                }
            }
        }
        // parent/child symmetry
        for (i, edges) in self.edges.iter().enumerate() {
            let id = ElementId::from_index(i);
            for &c in &edges.children {
                if self.edges[c.index()].parent != Some(id) {
                    return Err(ModelError::DuplicateContainmentParent {
                        child: c,
                        existing: self.edges[c.index()].parent.unwrap_or(id),
                        rejected: id,
                    });
                }
            }
        }
        Ok(())
    }

    /// Containment descendants of `id` (excluding `id`), pre-order.
    pub fn descendants(&self, id: ElementId) -> Vec<ElementId> {
        let mut out = Vec::new();
        let mut stack: Vec<ElementId> = self.children(id).iter().rev().copied().collect();
        while let Some(top) = stack.pop() {
            out.push(top);
            for &c in self.children(top).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Lowest common containment ancestor of two elements.
    pub fn common_ancestor(&self, a: ElementId, b: ElementId) -> ElementId {
        let mut seen = vec![false; self.len()];
        let mut cur = Some(a);
        while let Some(c) = cur {
            seen[c.index()] = true;
            cur = self.parent(c);
        }
        let mut cur = Some(b);
        while let Some(c) = cur {
            if seen[c.index()] {
                return c;
            }
            cur = self.parent(c);
        }
        self.root()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::element::{DataType, ElementKind};

    fn tiny() -> Schema {
        let mut b = SchemaBuilder::new("PO");
        let lines = b.structured(b.root(), "Lines", ElementKind::XmlElement);
        let item = b.structured(lines, "Item", ElementKind::XmlElement);
        b.atomic(item, "Line", ElementKind::XmlAttribute, DataType::Int);
        b.atomic(item, "Qty", ElementKind::XmlAttribute, DataType::Int);
        b.build().unwrap()
    }

    #[test]
    fn paths() {
        let s = tiny();
        let qty = s.find("Qty").unwrap();
        assert_eq!(s.containment_path(qty), "PO.Lines.Item.Qty");
        assert_eq!(s.find_path("PO.Lines.Item.Qty"), Some(qty));
        assert_eq!(s.containment_path(s.root()), "PO");
    }

    #[test]
    fn descendants_preorder() {
        let s = tiny();
        let names: Vec<&str> =
            s.descendants(s.root()).into_iter().map(|id| s.element(id).name.as_str()).collect();
        assert_eq!(names, ["Lines", "Item", "Line", "Qty"]);
    }

    #[test]
    fn common_ancestor() {
        let s = tiny();
        let line = s.find("Line").unwrap();
        let qty = s.find("Qty").unwrap();
        let item = s.find("Item").unwrap();
        assert_eq!(s.common_ancestor(line, qty), item);
        assert_eq!(s.common_ancestor(line, s.root()), s.root());
        assert_eq!(s.common_ancestor(item, item), item);
    }

    #[test]
    fn validate_ok() {
        assert!(tiny().validate().is_ok());
    }
}
