//! Minimal plain-text table rendering for experiment reports.

/// A text table: header row plus data rows, rendered with aligned
/// columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    /// Optional caption printed above the table.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with a caption and headers.
    pub fn new<S: Into<String>>(caption: impl Into<String>, headers: Vec<S>) -> Self {
        TextTable {
            caption: caption.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are padded/truncated to the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len().max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        let measure = |row: &[String], widths: &mut [usize]| {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&self.headers, &mut widths);
        for r in &self.rows {
            measure(r, &mut widths);
        }
        let fmt_row = |row: &[String], widths: &[usize]| -> String {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            format!("| {} |", cells.join(" | "))
        };
        let sep =
            format!("+{}+", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+"));
        let mut out = String::new();
        if !self.caption.is_empty() {
            out.push_str(&self.caption);
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        if !self.headers.is_empty() {
            out.push_str(&fmt_row(&self.headers, &widths));
            out.push('\n');
            out.push_str(&sep);
            out.push('\n');
        }
        for r in &self.rows {
            let mut r = r.clone();
            r.resize(ncols, String::new());
            out.push_str(&fmt_row(&r, &widths));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new("Caption", vec!["a", "bee"]);
        t.row(vec!["xxxx", "y"]);
        t.row(vec!["z", "wwwww"]);
        let s = t.render();
        assert!(s.contains("Caption"));
        assert!(s.contains("| a    | bee   |"));
        assert!(s.contains("| xxxx | y     |"));
        // every line same width
        let widths: Vec<usize> = s.lines().skip(1).map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new("", vec!["a", "b", "c"]);
        t.row(vec!["only one"]);
        let s = t.render();
        assert!(s.contains("only one"));
    }
}
