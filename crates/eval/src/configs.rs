//! Per-experiment Cupid configurations.
//!
//! Table 1 gives typical values and, importantly, the tuning *rules*:
//! `cinc` is *"typically a function of maximum schema depth or depth to
//! which nodes are considered for structural similarity"*, and the
//! leaf-count pruning factor is a suggestion (*"say within a factor of
//! 2"*). The experiment harness applies those rules per corpus and
//! documents each choice here; everything else stays at the Table-1
//! defaults.

use cupid_core::CupidConfig;
use cupid_model::ExpandOptions;

/// Defaults straight from Table 1 (deep/medium schemas).
pub fn table1_defaults() -> CupidConfig {
    CupidConfig::default()
}

/// Configuration for the shallow XML corpora (Figures 1, 2, 7; canonical
/// examples): 3–4 levels deep, so each leaf pair sees at most ~3 ancestor
/// reinforcements. `cinc = 1.35` lets a type-compatible leaf whose whole
/// ancestor chain matches saturate to 1.0 and reach `thaccept` on
/// structure alone — the paper's `Line → ItemNumber` behaviour (§2,
/// §9.2) — while leaf pairs in *wrong* contexts (one ancestor boost
/// fewer) stay strictly below the cap, preserving the context
/// discrimination of §4. (1.5 would saturate both and erase it.)
pub fn shallow_xml() -> CupidConfig {
    CupidConfig { c_inc: 1.35, ..CupidConfig::default() }
}

/// Configuration for the relational warehouse experiment (Figure 8).
/// Join views make subtree sizes lopsided by construction (a join node
/// holds both tables' columns), so the leaf-count pruning factor is
/// raised from 2 to 4; everything else stays at Table-1 defaults. Flat
/// relational schemas are only 2 levels deep, so `cinc` follows the
/// shallow rule as well (1.35).
pub fn relational() -> CupidConfig {
    CupidConfig {
        c_inc: 1.35,
        leaf_ratio_prune: Some(4.0),
        expand: ExpandOptions::all(),
        ..CupidConfig::default()
    }
}

/// Synthetic scalability corpus: depth ~5, Table-1 defaults apply.
pub fn synthetic() -> CupidConfig {
    CupidConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configs_validate() {
        for c in [table1_defaults(), shallow_xml(), relational(), synthetic()] {
            assert!(c.validate().is_ok());
        }
    }

    #[test]
    fn shallow_has_larger_cinc() {
        assert!(shallow_xml().c_inc > table1_defaults().c_inc);
    }
}
