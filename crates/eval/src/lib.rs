//! # cupid-eval — the experiment harness of the Cupid reproduction
//!
//! Regenerates every table and figure of the paper's evaluation
//! (Section 9) plus the scalability/ablation studies its future work
//! calls for. Run `cargo run -p cupid-eval --bin experiments` for the
//! full suite, or pass an experiment id (`table2`, `table3`, `fig8`, …).
//!
//! * [`metrics`] — precision/recall/F1/overall against gold mappings;
//! * [`table`] — plain-text table rendering;
//! * [`configs`] — the per-experiment Cupid configurations with the
//!   tuning rationale from Table 1;
//! * [`adapters`] — LSPD and sense-dictionary builders for the baselines
//!   (the paper seeded DIKE's LSPD *"similar to the linguistic similarity
//!   coefficients computed by Cupid"*);
//! * [`experiments`] — one module per paper artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod configs;
pub mod experiments;
pub mod metrics;
pub mod table;

pub use metrics::MatchQuality;
pub use table::TextTable;

/// A rendered experiment report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment title.
    pub title: String,
    /// Rendered tables.
    pub tables: Vec<TextTable>,
    /// Free-form notes (paper-vs-measured commentary).
    pub notes: Vec<String>,
}

impl Report {
    /// New empty report.
    pub fn new(title: impl Into<String>) -> Self {
        Report { title: title.into(), ..Default::default() }
    }

    /// Render to a printable string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("\n==== {} ====\n", self.title));
        for t in &self.tables {
            out.push('\n');
            out.push_str(&t.render());
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("note: {n}\n"));
            }
        }
        out
    }
}
