//! Match-quality metrics against a gold standard.
//!
//! Precision/recall/F-measure are the standard schema-matching quality
//! measures (used throughout the follow-on literature the paper seeded);
//! *overall* is Melnik et al.'s post-match effort measure
//! `recall · (2 − 1/precision)`, included because later comparative
//! studies report it for Cupid.

use cupid_core::MappingElement;
use cupid_corpus::GoldMapping;

/// Quality of a computed mapping against a gold standard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchQuality {
    /// Correspondences produced by the matcher.
    pub found: usize,
    /// Correct correspondences among them.
    pub correct: usize,
    /// Gold correspondences that were *not* produced (counted over
    /// distinct gold targets, since the naïve generator is
    /// target-oriented).
    pub missed_targets: usize,
    /// Distinct gold target paths.
    pub gold_targets: usize,
    /// Incorrect correspondences (false positives).
    pub false_positives: usize,
}

impl MatchQuality {
    /// Score found `(source, target)` path pairs against a gold mapping.
    ///
    /// A found pair is *correct* if the gold set contains it. Recall is
    /// target-oriented: a gold target counts as hit when any acceptable
    /// source was found for it.
    pub fn score<'a, I>(found: I, gold: &GoldMapping) -> MatchQuality
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let mut n_found = 0usize;
        let mut correct = 0usize;
        let mut fp = 0usize;
        let mut hit_targets: std::collections::BTreeSet<&str> = Default::default();
        let mut gold_target_set: std::collections::BTreeSet<&str> = Default::default();
        for (_, t) in gold.pairs() {
            gold_target_set.insert(t);
        }
        let mut gold_targets_hit: std::collections::BTreeSet<String> = Default::default();
        for (s, t) in found {
            n_found += 1;
            if gold.contains(s, t) {
                correct += 1;
                gold_targets_hit.insert(t.to_string());
            } else {
                fp += 1;
            }
            hit_targets.insert("");
        }
        let gold_targets = gold_target_set.len();
        let missed = gold_targets - gold_targets_hit.len();
        MatchQuality {
            found: n_found,
            correct,
            missed_targets: missed,
            gold_targets,
            false_positives: fp,
        }
    }

    /// Score Cupid mapping elements directly.
    pub fn score_mappings(mappings: &[MappingElement], gold: &GoldMapping) -> MatchQuality {
        Self::score(mappings.iter().map(|m| (m.source_path.as_str(), m.target_path.as_str())), gold)
    }

    /// Precision = correct / found (1.0 when nothing was found and
    /// nothing should be).
    pub fn precision(&self) -> f64 {
        if self.found == 0 {
            if self.gold_targets == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.correct as f64 / self.found as f64
        }
    }

    /// Target-oriented recall.
    pub fn recall(&self) -> f64 {
        if self.gold_targets == 0 {
            1.0
        } else {
            (self.gold_targets - self.missed_targets) as f64 / self.gold_targets as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Melnik's overall measure `r·(2 − 1/p)`; negative when precision
    /// drops below 0.5 (cleanup costs more than it saves).
    pub fn overall(&self) -> f64 {
        let p = self.precision();
        if p == 0.0 {
            return if self.gold_targets == 0 { 1.0 } else { -1.0 };
        }
        self.recall() * (2.0 - 1.0 / p)
    }

    /// `p/r/f1` formatted for tables.
    pub fn summary(&self) -> String {
        format!("P {:.2} R {:.2} F1 {:.2}", self.precision(), self.recall(), self.f1())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gold() -> GoldMapping {
        GoldMapping::new([("a", "x"), ("b", "y"), ("c", "z")])
    }

    #[test]
    fn perfect_match() {
        let q = MatchQuality::score([("a", "x"), ("b", "y"), ("c", "z")], &gold());
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
        assert_eq!(q.f1(), 1.0);
        assert_eq!(q.overall(), 1.0);
    }

    #[test]
    fn partial_match_with_false_positive() {
        let q = MatchQuality::score([("a", "x"), ("b", "WRONG")], &gold());
        assert_eq!(q.correct, 1);
        assert_eq!(q.false_positives, 1);
        assert!((q.precision() - 0.5).abs() < 1e-12);
        assert!((q.recall() - 1.0 / 3.0).abs() < 1e-12);
        assert!(q.overall() <= 0.0 + 1e-12);
    }

    #[test]
    fn multiple_acceptable_sources_count_once() {
        let g = GoldMapping::new([("a", "x"), ("b", "x")]);
        let q = MatchQuality::score([("a", "x")], &g);
        assert_eq!(q.recall(), 1.0); // target x was hit
        assert_eq!(q.precision(), 1.0);
    }

    #[test]
    fn empty_cases() {
        let g = GoldMapping::default();
        let q = MatchQuality::score(std::iter::empty::<(&str, &str)>(), &g);
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
        let q = MatchQuality::score(std::iter::empty::<(&str, &str)>(), &gold());
        assert_eq!(q.recall(), 0.0);
        assert_eq!(q.precision(), 0.0);
    }
}
