//! Adapters feeding the baselines with the linguistic inputs the paper
//! describes.

use cupid_baselines::{Lspd, SenseDictionary};
use cupid_core::{linguistic, CupidConfig};
use cupid_lexical::Thesaurus;
use cupid_model::Schema;

/// Build a DIKE LSPD from Cupid's linguistic phase, as the paper did:
/// *"For DIKE, we added linguistic similarity entries (in the LSPD) that
/// were similar to the linguistic similarity coefficients computed by
/// Cupid."*
pub fn lspd_from_cupid(s1: &Schema, s2: &Schema, thesaurus: &Thesaurus, cfg: &CupidConfig) -> Lspd {
    let analysis = linguistic::analyze(s1, s2, thesaurus, cfg);
    let mut lspd = Lspd::default();
    for (e1, el1) in s1.iter() {
        for (e2, el2) in s2.iter() {
            let v = analysis.lsim.get(e1, e2);
            if v > 0.0 && el1.name != el2.name {
                lspd.insert(&el1.name, &el2.name, v);
            }
        }
    }
    lspd
}

/// The user's WordNet sense selections for the CIDX–Excel run (§9.2:
/// *"For MOMIS the best possible meanings were chosen for each of the
/// schema elements"*). Senses are chosen exactly once per element name;
/// the choices below reproduce the clustering Table 3 reports, including
/// its quirks (`Items` clustered with the `Item`s, the street family
/// collapsing, `itemCount` fused with `Quantity`).
pub fn momis_senses_cidx_excel() -> SenseDictionary {
    let mut d = SenseDictionary::default();
    // class-level senses
    d.choose_sense("PO", "purchase order");
    d.choose_sense("PurchaseOrder", "purchase order");
    d.choose_sense("POHeader", "header");
    d.choose_sense("Header", "header");
    d.choose_sense("Items", "item"); // the WordNet form of "Items" is "item"
    d.choose_sense("POLines", "line");
    for c in ["POShipTo", "POBillTo", "DeliverTo", "InvoiceTo", "Address"] {
        d.choose_sense(c, "address");
    }
    d.choose_sense("AddressType", "address");
    d.choose_sense("ContactType", "contact");
    d.choose_sense("Footer", "footer");
    // attribute-level senses
    d.choose_sense("PONumber", "order number");
    d.choose_sense("orderNum", "order number");
    d.choose_sense("PODate", "order date");
    d.choose_sense("orderDate", "order date");
    d.choose_sense("partno", "part number");
    d.choose_sense("partNumber", "part number");
    d.choose_sense("qty", "quantity");
    d.choose_sense("Quantity", "quantity");
    d.choose_sense("itemCount", "quantity"); // count := quantity — the Table 3 quirk
    d.choose_sense("uom", "unit of measure");
    d.choose_sense("unitOfMeasure", "unit of measure");
    d.choose_sense("ContactEmail", "email");
    d.choose_sense("e-mail", "email");
    d.choose_sense("ContactPhone", "telephone");
    d.choose_sense("telephone", "telephone");
    d.choose_sense("ContactName", "contact name");
    d.choose_sense("contactName", "contact name");
    // the Street family all share the WordNet form "street"
    for i in 1..=4 {
        d.choose_sense(&format!("Street{i}"), "street");
        d.choose_sense(&format!("street{i}"), "street");
    }
    d.choose_sense("StateProvince", "state");
    d.choose_sense("stateProvince", "state");
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_corpus::{cidx_excel, thesauri};

    #[test]
    fn lspd_mirrors_cupid_lsim() {
        let s1 = cidx_excel::cidx();
        let s2 = cidx_excel::excel();
        let t = thesauri::paper_thesaurus();
        let lspd = lspd_from_cupid(&s1, &s2, &t, &CupidConfig::default());
        assert!(!lspd.is_empty());
        // the synonym-driven pair must be present with Cupid's coefficient
        assert!(lspd.lookup("POBillTo", "InvoiceTo") > 0.4);
        assert!(lspd.lookup("POShipTo", "DeliverTo") > 0.4);
        // identical names are 1.0 with or without entries
        assert_eq!(lspd.lookup("unitPrice", "unitPrice"), 1.0);
    }

    #[test]
    fn momis_senses_cluster_street_family() {
        let d = momis_senses_cidx_excel();
        assert_eq!(d.name_affinity("Street1", "street2"), 1.0);
        assert_eq!(d.name_affinity("itemCount", "Quantity"), 1.0);
        assert_eq!(d.name_affinity("POHeader", "Header"), 1.0);
        assert_eq!(d.name_affinity("POLines", "Items"), 0.0);
    }
}
