//! The experiment runner: regenerates every table and figure of the
//! Cupid paper's evaluation.
//!
//! ```text
//! cargo run -p cupid-eval --bin experiments            # run everything
//! cargo run -p cupid-eval --bin experiments -- table2  # one experiment
//! cargo run -p cupid-eval --bin experiments -- --list  # list ids
//! ```

use cupid_eval::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        for id in experiments::ALL {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args.is_empty() {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for id in ids {
        match experiments::run(id) {
            Some(report) => print!("{}", report.render()),
            None => {
                eprintln!("unknown experiment `{id}` (use --list)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
