//! Daemon fidelity: wire responses vs in-process matching (DESIGN.md §9).
//!
//! The serving layer must be *invisible* in the results: a summary that
//! crossed the daemon's checksummed wire protocol — SDL in, match
//! summaries out — has to equal the in-process summary down to the
//! similarity bits, or the daemon is not a deployment of the matcher
//! but a different matcher. This experiment round-trips the paper's
//! schemas through a loopback daemon under two concurrent clients and
//! scores the agreement pair by pair.
//!
//! Schemas travel as SDL, so the comparison is scoped to the
//! SDL-expressible subset of the corpus (the expected side parses the
//! *same* SDL text the clients ship, making the comparison exact by
//! construction rather than up to export fidelity).

use cupid_core::MatchSession;
use cupid_corpus::thesauri;
use cupid_io::{parse_sdl, write_sdl};
use cupid_model::Schema;
use cupid_serve::{ServeClient, ServeOptions, Server};

use crate::configs;
use crate::experiments::discovery;
use crate::table::TextTable;
use crate::Report;

/// The SDL-expressible subset of the paper corpus, as (name, SDL) with
/// unique repository keys.
fn sdl_corpus() -> Vec<(String, String)> {
    discovery::corpus()
        .into_iter()
        .filter_map(|(label, mut schema)| {
            let key = label.replace('/', ".");
            schema.rename(&key);
            write_sdl(&schema).ok().map(|sdl| (key, sdl))
        })
        .collect()
}

/// Run the daemon fidelity experiment.
pub fn run() -> Report {
    let mut report = Report::new("daemon fidelity — wire responses vs in-process (DESIGN.md §9)");
    let config = configs::shallow_xml();
    let thesaurus = thesauri::paper_thesaurus();
    let corpus = sdl_corpus();

    // In-process ground truth over the exact SDL bytes the clients ship.
    let schemas: Vec<Schema> = corpus.iter().map(|(_, sdl)| parse_sdl(sdl).unwrap()).collect();
    let mut session = MatchSession::new(&config, &thesaurus);
    let ids = session.add_corpus(&schemas).expect("corpus prepares");
    let mut expected = Vec::new();
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            let summary = session.match_pair(ids[i], ids[j]);
            expected.push((corpus[i].0.clone(), corpus[j].0.clone(), summary));
        }
    }

    // The daemon, on a loopback port over a throwaway snapshot.
    let dir = std::env::temp_dir().join(format!("cupid-eval-daemon-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    // `autosave_every: 1` puts the daemon in its durable mode: every
    // mutation is fsynced into the write-ahead journal before its
    // response goes out (DESIGN.md §10.4), and the Stats frame carries
    // the durability counters this experiment reports.
    let options = ServeOptions { autosave_every: Some(1), ..ServeOptions::default() };
    let server =
        Server::bind("127.0.0.1:0", &dir, &config, &thesaurus, options).expect("bind daemon");
    let addr = server.local_addr();

    let mut rows: Vec<(String, bool)> = Vec::new();
    let mut requests_served = 0;
    let mut durability = None;
    std::thread::scope(|scope| {
        scope.spawn(move || server.run().expect("daemon run"));
        let mut setup = ServeClient::connect(addr).expect("connect");
        for (_, sdl) in &corpus {
            setup.add_sdl(sdl).expect("add schema");
        }
        // Two concurrent clients sweep the worklist from opposite ends.
        let handles: Vec<_> = (0..2)
            .map(|c| {
                let expected = &expected;
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    let mut agreements = Vec::new();
                    let mut order: Vec<usize> = (0..expected.len()).collect();
                    if c == 1 {
                        order.reverse();
                    }
                    for idx in order {
                        let (a, b, want) = &expected[idx];
                        let got = client.match_pair(a, b).expect("match");
                        agreements.push((idx, &got == want));
                    }
                    agreements
                })
            })
            .collect();
        let mut agree = vec![true; expected.len()];
        for h in handles {
            for (idx, ok) in h.join().expect("client thread") {
                agree[idx] &= ok;
            }
        }
        for ((a, b, _), ok) in expected.iter().zip(&agree) {
            rows.push((format!("{a} ~ {b}"), *ok));
        }
        let stats = setup.stats().expect("stats");
        requests_served = stats.requests_served;
        // Fold the journal with an explicit save, then read the
        // durability counters off the Stats frame.
        setup.save().expect("save");
        durability = Some(setup.stats().expect("stats after save"));
        setup.shutdown().expect("shutdown");
    });
    std::fs::remove_dir_all(&dir).ok();

    let agreed = rows.iter().filter(|(_, ok)| *ok).count();
    let mut t = TextTable::new(
        "Bit-identity of daemon responses (2 concurrent clients, every pair twice)",
        vec!["pair", "wire == in-process"],
    );
    for (pair, ok) in &rows {
        t.row(vec![pair.clone(), if *ok { "yes".into() } else { "NO".into() }]);
    }
    report.tables.push(t);
    report.notes.push(format!(
        "{agreed}/{} pairs bit-identical across the wire ({} SDL-expressible schemas of {}, \
         {requests_served} requests served)",
        rows.len(),
        corpus.len(),
        discovery::corpus().len(),
    ));
    if agreed != rows.len() {
        report.notes.push("DIVERGENCE: the daemon is not serving the matcher's results".into());
    }
    if let Some(d) = durability {
        let mut t = TextTable::new(
            "Durability under journal autosave (--autosave 1, DESIGN.md §10)",
            vec!["counter", "value"],
        );
        t.row(vec!["mutations journaled before their responses".into(), corpus.len().to_string()]);
        t.row(vec!["journal records after compacting save".into(), d.journal_records.to_string()]);
        t.row(vec!["journal bytes after compacting save".into(), d.journal_bytes.to_string()]);
        t.row(vec!["records replayed at open".into(), d.replayed_records.to_string()]);
        t.row(vec!["compactions".into(), d.compactions.to_string()]);
        t.row(vec![
            "last fsync error".into(),
            if d.last_fsync_error.is_empty() { "none".into() } else { d.last_fsync_error.clone() },
        ]);
        report.tables.push(t);
        if !d.last_fsync_error.is_empty() {
            report.notes.push(format!("DEGRADED: daemon reported `{}`", d.last_fsync_error));
        }
        if d.journal_records != 0 || d.compactions == 0 {
            report.notes.push("UNEXPECTED: the explicit save did not fold the journal".into());
        }
    }
    report
}
