//! Figure 1 / Section 2: the introductory PO ↔ POrder mapping, including
//! `Lines.Item.Line → Items.Item.ItemNumber`.

use cupid_core::Cupid;
use cupid_corpus::fig1;

use crate::configs;
use crate::metrics::MatchQuality;
use crate::table::TextTable;
use crate::Report;

/// Run the Figure 1 experiment.
pub fn run() -> Report {
    let mut report = Report::new("Figure 1 — PO vs POrder (introductory example)");
    let po = fig1::po();
    let porder = fig1::porder();
    let cupid = Cupid::with_config(configs::shallow_xml(), fig1::thesaurus());
    let out = cupid.match_schemas(&po, &porder).expect("fig1 schemas expand");

    let gold = fig1::gold();
    let mut t = TextTable::new(
        "Leaf mappings (paper: all three correspondences, Line -> ItemNumber \
         found structurally)",
        vec!["source", "target", "wsim", "in gold"],
    );
    for m in &out.leaf_mappings {
        t.row(vec![
            m.source_path.clone(),
            m.target_path.clone(),
            format!("{:.3}", m.wsim),
            if gold.contains(&m.source_path, &m.target_path) { "yes" } else { "NO" }.to_string(),
        ]);
    }
    report.tables.push(t);

    let q = MatchQuality::score_mappings(&out.leaf_mappings, &gold);
    let mut t = TextTable::new("Quality vs gold", vec!["metric", "value"]);
    t.row(vec!["precision".to_string(), format!("{:.3}", q.precision())]);
    t.row(vec!["recall".to_string(), format!("{:.3}", q.recall())]);
    t.row(vec!["f1".to_string(), format!("{:.3}", q.f1())]);
    report.tables.push(t);

    let nl = fig1::gold_nonleaf();
    let mut t = TextTable::new("Element-level mappings", vec!["source", "target", "in gold"]);
    for m in &out.nonleaf_mappings {
        t.row(vec![
            m.source_path.clone(),
            m.target_path.clone(),
            if nl.contains(&m.source_path, &m.target_path) { "yes" } else { "NO" }.to_string(),
        ]);
    }
    report.tables.push(t);

    report.notes.push(format!(
        "Line -> ItemNumber (no thesaurus support, pure structure+datatype): {}",
        if out.has_leaf_mapping("PO.Lines.Item.Line", "POrder.Items.Item.ItemNumber") {
            "FOUND (matches paper)"
        } else {
            "MISSING (paper found it)"
        }
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_paper_mapping() {
        let r = run();
        assert!(r.notes.iter().any(|n| n.contains("FOUND")), "{}", r.render());
    }
}
