//! Table 1: threshold parameters — reproduced as a sensitivity study.
//!
//! Table 1 lists the typical values and the rationale for each control
//! parameter. This experiment sweeps each parameter around its default
//! on the Figure-2 and Figure-7 corpora and reports leaf-mapping F1, so
//! the "typical value" column can be checked to sit in the operating
//! sweet spot.

use cupid_core::{Cupid, CupidConfig};
use cupid_corpus::{cidx_excel, fig2, thesauri, GoldMapping};
use cupid_model::Schema;

use crate::configs;
use crate::metrics::MatchQuality;
use crate::table::TextTable;
use crate::Report;

fn f1_with(cfg: CupidConfig, s1: &Schema, s2: &Schema, gold: &GoldMapping) -> f64 {
    let cupid = Cupid::with_config(cfg, thesauri::paper_thesaurus());
    match cupid.match_schemas(s1, s2) {
        Ok(out) => MatchQuality::score_mappings(&out.leaf_mappings, gold).f1(),
        Err(_) => 0.0,
    }
}

struct Sweep {
    name: &'static str,
    default_text: &'static str,
    values: Vec<f64>,
    apply: fn(&mut CupidConfig, f64),
}

fn sweeps() -> Vec<Sweep> {
    vec![
        Sweep {
            name: "th_accept",
            default_text: "0.5",
            values: vec![0.3, 0.4, 0.5, 0.6, 0.7],
            apply: |c, v| c.th_accept = v,
        },
        Sweep {
            name: "th_high",
            default_text: "0.6",
            values: vec![0.5, 0.6, 0.7, 0.8],
            apply: |c, v| c.th_high = v,
        },
        Sweep {
            name: "th_low",
            default_text: "0.35",
            values: vec![0.15, 0.25, 0.35, 0.45],
            apply: |c, v| c.th_low = v,
        },
        Sweep {
            name: "c_inc",
            default_text: "1.2 (shallow corpora: 1.5)",
            values: vec![1.0, 1.2, 1.35, 1.5, 1.8],
            apply: |c, v| c.c_inc = v,
        },
        Sweep {
            name: "c_dec",
            default_text: "0.9",
            values: vec![0.7, 0.8, 0.9, 1.0],
            apply: |c, v| c.c_dec = v,
        },
        Sweep {
            name: "w_struct",
            default_text: "0.6",
            values: vec![0.4, 0.5, 0.6, 0.7],
            apply: |c, v| c.w_struct = v,
        },
        Sweep {
            name: "th_ns",
            default_text: "0.5 (pruning only)",
            values: vec![0.3, 0.5, 0.7],
            apply: |c, v| c.th_ns = v,
        },
    ]
}

/// Run the Table-1 sensitivity study.
pub fn run() -> Report {
    let mut report = Report::new("Table 1 — parameter sensitivity around the typical values");
    let fig2_s1 = fig2::po();
    let fig2_s2 = fig2::purchase_order();
    let fig2_gold = fig2::gold();
    let cidx = cidx_excel::cidx();
    let excel = cidx_excel::excel();
    let cidx_gold = cidx_excel::gold();

    let mut t = TextTable::new(
        "Leaf F1 while sweeping one parameter (others at Table-1 values)",
        vec!["parameter", "value", "F1 fig2", "F1 CIDX-Excel", "Table-1 typical"],
    );
    for sweep in sweeps() {
        for &v in &sweep.values {
            let mut cfg = configs::shallow_xml();
            (sweep.apply)(&mut cfg, v);
            if cfg.validate().is_err() {
                continue;
            }
            let f_fig2 = f1_with(cfg.clone(), &fig2_s1, &fig2_s2, &fig2_gold);
            let f_cidx = f1_with(cfg, &cidx, &excel, &cidx_gold);
            t.row(vec![
                sweep.name.to_string(),
                format!("{v}"),
                format!("{f_fig2:.3}"),
                format!("{f_cidx:.3}"),
                sweep.default_text.to_string(),
            ]);
        }
    }
    report.tables.push(t);
    report.notes.push(
        "th_ns only prunes comparisons (Table 1: 'the choice of value is not \
         critical'); the structural thresholds move F1 — matching the \
         descriptions in Table 1."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_competitive() {
        // The Table-1 typical values should be at least as good as the
        // extreme settings on the fig2 corpus.
        let s1 = fig2::po();
        let s2 = fig2::purchase_order();
        let gold = fig2::gold();
        let default_f1 = f1_with(configs::shallow_xml(), &s1, &s2, &gold);
        let mut strict = configs::shallow_xml();
        strict.th_accept = 0.9;
        let strict_f1 = f1_with(strict, &s1, &s2, &gold);
        assert!(default_f1 >= strict_f1, "default {default_f1} < strict {strict_f1}");
        assert!(default_f1 > 0.8, "default config should do well on fig2: {default_f1}");
    }

    #[test]
    fn th_ns_is_not_critical() {
        let s1 = fig2::po();
        let s2 = fig2::purchase_order();
        let gold = fig2::gold();
        let mut lo = configs::shallow_xml();
        lo.th_ns = 0.3;
        let mut hi = configs::shallow_xml();
        hi.th_ns = 0.7;
        let f_lo = f1_with(lo, &s1, &s2, &gold);
        let f_hi = f1_with(hi, &s1, &s2, &gold);
        assert!((f_lo - f_hi).abs() < 0.25, "th_ns should mostly prune: {f_lo} vs {f_hi}");
    }
}
