//! All-pairs corpus discovery (beyond the paper; DESIGN.md §7).
//!
//! Modern matcher evaluations — Valentine's dataset-discovery benchmark
//! being the canonical one — run a matcher over *every* pair of a
//! schema collection and rank the pairs, instead of scoring one curated
//! pair. This experiment runs the paper's eight schemas through one
//! `MatchSession` and checks the discovery signal: pairs the paper
//! matches against each other (CIDX–Excel, RDB–Star, the Figure 1/2
//! purchase orders) must outrank cross-domain pairs, and the session's
//! cache statistics must show the batch reuse actually happened (one
//! shared vocabulary, far fewer memoized token pairs than 28 isolated
//! matches would compute).

use cupid_core::{Cupid, MatchSummary, SchemaId, SessionStats};
use cupid_corpus::{cidx_excel, fig1, fig2, star_rdb, thesauri};
use cupid_model::Schema;

use crate::configs;
use crate::table::TextTable;
use crate::Report;

/// The corpus: every schema the paper's experiments use, labeled.
pub fn corpus() -> Vec<(&'static str, Schema)> {
    vec![
        ("fig1/PO", fig1::po()),
        ("fig1/POrder", fig1::porder()),
        ("fig2/PO", fig2::po()),
        ("fig2/PurchaseOrder", fig2::purchase_order()),
        ("CIDX", cidx_excel::cidx()),
        ("Excel", cidx_excel::excel()),
        ("RDB", star_rdb::rdb()),
        ("Star", star_rdb::star()),
    ]
}

/// Rank all pairs of the corpus by best leaf similarity (descending),
/// returning the summaries in rank order plus the session's cache
/// statistics. Exposed for tests.
pub fn ranked_pairs() -> (Vec<&'static str>, Vec<MatchSummary>, SessionStats) {
    let labeled = corpus();
    let names: Vec<&'static str> = labeled.iter().map(|(n, _)| *n).collect();
    let schemas: Vec<Schema> = labeled.into_iter().map(|(_, s)| s).collect();
    let cupid = Cupid::with_config(configs::shallow_xml(), thesauri::paper_thesaurus());
    let result = cupid.match_corpus(&schemas).expect("corpus expands");
    let mut ranked = result.summaries;
    ranked.sort_by(|a, b| {
        b.best_wsim()
            .partial_cmp(&a.best_wsim())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.leaf_mappings.len().cmp(&a.leaf_mappings.len()))
    });
    (names, ranked, result.stats)
}

/// Run the discovery experiment.
pub fn run() -> Report {
    let mut report = Report::new("corpus discovery — all-pairs batch matching (DESIGN.md §7)");
    let (names, ranked, stats) = ranked_pairs();
    let name = |id: SchemaId| names[id.index()];

    let mut t = TextTable::new(
        "All 28 pairs of the paper's 8 schemas, ranked by best leaf wsim",
        vec!["rank", "pair", "best wsim", "accepted mappings"],
    );
    for (rank, s) in ranked.iter().enumerate() {
        t.row(vec![
            (rank + 1).to_string(),
            format!("{} ~ {}", name(s.source), name(s.target)),
            format!("{:.3}", s.best_wsim()),
            s.leaf_mappings.len().to_string(),
        ]);
    }
    report.tables.push(t);

    let mut t = TextTable::new("Session cache statistics", vec!["stat", "value"]);
    t.row(vec!["schemas prepared (once each)".into(), stats.schemas.to_string()]);
    t.row(vec!["pairs matched".into(), stats.pairs_matched.to_string()]);
    t.row(vec!["corpus vocabulary |V|".into(), stats.vocab_size.to_string()]);
    t.row(vec!["distinct token pairs memoized".into(), stats.distinct_pairs_computed.to_string()]);
    report.tables.push(t);
    report.notes.push(
        "same-domain pairs (CIDX~Excel, the fig1/fig2 purchase orders, RDB~Star) \
         outrank cross-domain pairs; each distinct token pair was computed once \
         for the whole corpus instead of once per match."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_domain_pairs_outrank_cross_domain() {
        let (names, ranked, _) = ranked_pairs();
        let rank_of = |a: &str, b: &str| {
            ranked
                .iter()
                .position(|s| {
                    let (x, y) = (names[s.source.index()], names[s.target.index()]);
                    (x == a && y == b) || (x == b && y == a)
                })
                .expect("pair present")
        };
        // The paper's curated pairs sit in the top half of the ranking…
        let half = ranked.len() / 2;
        assert!(rank_of("CIDX", "Excel") < half);
        assert!(rank_of("fig1/PO", "fig1/POrder") < half);
        assert!(rank_of("fig2/PO", "fig2/PurchaseOrder") < half);
        // …and the purchase-order flagship outranks the weakest
        // cross-domain pairings.
        assert!(rank_of("CIDX", "Excel") < rank_of("fig2/PurchaseOrder", "Star"));
        assert!(rank_of("RDB", "Star") < rank_of("fig2/PO", "Star"));
    }

    #[test]
    fn session_reuse_is_visible_in_stats() {
        let labeled = corpus();
        let schemas: Vec<Schema> = labeled.into_iter().map(|(_, s)| s).collect();
        let cupid = Cupid::with_config(configs::shallow_xml(), thesauri::paper_thesaurus());
        let stats = cupid.match_corpus(&schemas).unwrap().stats;
        assert_eq!(stats.schemas, 8);
        assert_eq!(stats.pairs_matched, 28);
        // One shared vocabulary; the memo holds at most |V|(|V|+1)/2
        // pairs for the whole corpus — not per match.
        let v = stats.vocab_size;
        assert!(v > 0 && stats.distinct_pairs_computed <= v * (v + 1) / 2);
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert_eq!(r.tables[0].rows.len(), 28, "{}", r.render());
        assert!(!r.notes.is_empty());
    }
}
