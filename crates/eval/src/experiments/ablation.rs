//! Ablations of the design choices the paper argues for:
//!
//! * **leaves vs immediate children** (§6: leaf sets make matching robust
//!   to nesting differences) — realized with `leaf_depth_limit = 1`;
//! * **leaf-count pruning on/off** (§6);
//! * **optionality on/off** (§8.4);
//! * **eager vs lazy expansion** (§8.4) — result equivalence plus the
//!   skipped-work counter.

use std::time::Instant;

use cupid_core::{lazy, linguistic, treematch, Cupid};
use cupid_corpus::{cidx_excel, fig2, thesauri, GoldMapping};
use cupid_model::{expand, ExpandOptions, Schema};

use crate::configs;
use crate::metrics::MatchQuality;
use crate::table::TextTable;
use crate::Report;

fn leaf_f1(cfg: cupid_core::CupidConfig, s1: &Schema, s2: &Schema, gold: &GoldMapping) -> f64 {
    let cupid = Cupid::with_config(cfg, thesauri::paper_thesaurus());
    match cupid.match_schemas(s1, s2) {
        Ok(out) => MatchQuality::score_mappings(&out.leaf_mappings, gold).f1(),
        Err(_) => 0.0,
    }
}

/// Run the ablation suite.
pub fn run() -> Report {
    let mut report = Report::new("Ablations — the design choices of §6/§8.4");
    let s1 = fig2::po();
    let s2 = fig2::purchase_order();
    let fig2_gold = fig2::gold();
    let c1 = cidx_excel::cidx();
    let c2 = cidx_excel::excel();
    let cidx_gold = cidx_excel::gold();

    let mut t = TextTable::new(
        "Leaf F1 per ablation (fig2 / CIDX-Excel)",
        vec!["variant", "fig2", "CIDX-Excel", "paper's argument"],
    );
    let base = configs::shallow_xml();
    t.row(vec![
        "full Cupid".to_string(),
        format!("{:.3}", leaf_f1(base.clone(), &s1, &s2, &fig2_gold)),
        format!("{:.3}", leaf_f1(base.clone(), &c1, &c2, &cidx_gold)),
        "-".to_string(),
    ]);

    let mut children_only = base.clone();
    children_only.leaf_depth_limit = Some(1);
    t.row(vec![
        "immediate children instead of leaves".to_string(),
        format!("{:.3}", leaf_f1(children_only.clone(), &s1, &s2, &fig2_gold)),
        format!("{:.3}", leaf_f1(children_only, &c1, &c2, &cidx_gold)),
        "leaves tolerate nesting variation (§6)".to_string(),
    ]);

    let mut no_prune = base.clone();
    no_prune.leaf_ratio_prune = None;
    t.row(vec![
        "no leaf-count pruning".to_string(),
        format!("{:.3}", leaf_f1(no_prune.clone(), &s1, &s2, &fig2_gold)),
        format!("{:.3}", leaf_f1(no_prune, &c1, &c2, &cidx_gold)),
        "pruning mainly saves work (§6)".to_string(),
    ]);

    let mut no_opt = base.clone();
    no_opt.use_optionality = false;
    t.row(vec![
        "no optionality handling".to_string(),
        format!("{:.3}", leaf_f1(no_opt.clone(), &s1, &s2, &fig2_gold)),
        format!("{:.3}", leaf_f1(no_opt, &c1, &c2, &cidx_gold)),
        "optional leaves penalized less (§8.4)".to_string(),
    ]);
    report.tables.push(t);

    // eager vs lazy expansion on the shared-type corpus. Lazy
    // block-copying applies to the source side, so the Excel schema
    // (whose Address/Contact types are shared) goes first.
    let cfg = configs::shallow_xml();
    let t1 = expand(&c2, &ExpandOptions::none()).expect("expand");
    let t2 = expand(&c1, &ExpandOptions::none()).expect("expand");
    let la = linguistic::analyze(&c2, &c1, &thesauri::paper_thesaurus(), &cfg);
    let start = Instant::now();
    let eager = treematch::tree_match(&t1, &t2, &la.lsim, &cfg);
    let eager_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let lazy_res = lazy::tree_match_lazy(&t1, &t2, &la.lsim, &cfg);
    let lazy_ms = start.elapsed().as_secs_f64() * 1e3;
    let max_diff = eager.wsim.max_abs_diff(&lazy_res.wsim);

    let mut t = TextTable::new(
        "Eager vs lazy expansion (CIDX-Excel; Excel shares Address/Contact)",
        vec!["variant", "time (ms)", "node pairs skipped", "max |Δwsim|"],
    );
    t.row(vec!["eager".to_string(), format!("{eager_ms:.2}"), "0".to_string(), "-".to_string()]);
    t.row(vec![
        "lazy".to_string(),
        format!("{lazy_ms:.2}"),
        lazy_res.stats.lazy_copied_pairs.to_string(),
        format!("{max_diff:.1e}"),
    ]);
    report.tables.push(t);
    report.notes.push(format!(
        "lazy expansion skipped {} node-pair computations with bit-identical \
         results (paper: 'the computed similarity values will remain the \
         same')",
        lazy_res.stats.lazy_copied_pairs
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves_beat_immediate_children_on_nesting_variation() {
        // fig2 has nesting variation (extra Address level in the target);
        // full-leaf ssim should be at least as good as children-only.
        let base = configs::shallow_xml();
        let mut children_only = base.clone();
        children_only.leaf_depth_limit = Some(1);
        let s1 = fig2::po();
        let s2 = fig2::purchase_order();
        let gold = fig2::gold();
        let full = leaf_f1(base, &s1, &s2, &gold);
        let limited = leaf_f1(children_only, &s1, &s2, &gold);
        assert!(full >= limited, "leaves {full} vs children {limited}");
    }

    #[test]
    fn lazy_is_equivalent_on_the_real_corpus() {
        let c1 = cidx_excel::excel(); // shared types on the source side
        let c2 = cidx_excel::cidx();
        let cfg = configs::shallow_xml();
        let t1 = expand(&c1, &ExpandOptions::none()).unwrap();
        let t2 = expand(&c2, &ExpandOptions::none()).unwrap();
        let la = linguistic::analyze(&c1, &c2, &thesauri::paper_thesaurus(), &cfg);
        let eager = treematch::tree_match(&t1, &t2, &la.lsim, &cfg);
        let lazy_res = lazy::tree_match_lazy(&t1, &t2, &la.lsim, &cfg);
        assert_eq!(eager.wsim.max_abs_diff(&lazy_res.wsim), 0.0);
        assert_eq!(eager.leaf_ssim.max_abs_diff(&lazy_res.leaf_ssim), 0.0);
        assert!(lazy_res.stats.lazy_copied_pairs > 0);
    }
}
