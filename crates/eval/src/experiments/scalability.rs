//! Scalability analysis (§10 future work: *"Scalability analysis and
//! testing are necessary to study the performance on large-sized
//! schemas"*).
//!
//! Runs the full pipeline over synthetic schema pairs of doubling size
//! and reports wall time, node-pair counts, pruning effectiveness and
//! mapping quality. Criterion benches (`crates/bench`) measure the same
//! sweep with statistical rigor; this experiment prints the series.

use std::time::Instant;

use cupid_core::Cupid;
use cupid_corpus::synthetic::{generate, SyntheticConfig};

use crate::configs;
use crate::metrics::MatchQuality;
use crate::table::TextTable;
use crate::Report;

/// Sizes (approximate leaf counts) used for the sweep.
pub const SIZES: [usize; 6] = [16, 32, 64, 128, 256, 512];

/// Run the scalability sweep.
pub fn run() -> Report {
    let mut report = Report::new("Scalability — synthetic schema pairs (seeded)");
    let mut t = TextTable::new(
        "Full pipeline (linguistic + TreeMatch + mapping) per pair size",
        vec!["~leaves", "nodes LxR", "time (ms)", "compared pairs", "pruned pairs", "leaf F1"],
    );
    for (i, &size) in SIZES.iter().enumerate() {
        let pair = generate(&SyntheticConfig::sized(size, 1000 + i as u64));
        let cupid = Cupid::with_config(configs::synthetic(), pair.thesaurus.clone());
        let start = Instant::now();
        let out = cupid.match_schemas(&pair.source, &pair.target).expect("synthetic expands");
        let elapsed = start.elapsed();
        let q = MatchQuality::score_mappings(&out.leaf_mappings, &pair.gold);
        t.row(vec![
            size.to_string(),
            format!("{}x{}", out.source_tree.len(), out.target_tree.len()),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            out.structural.stats.compared_pairs.to_string(),
            out.structural.stats.pruned_pairs.to_string(),
            format!("{:.3}", q.f1()),
        ]);
    }
    report.tables.push(t);
    report.notes.push(
        "TreeMatch is quadratic in node pairs with a leaf-product inner term; \
         the leaf-count pruning keeps the compared-pair count subquadratic on \
         heterogeneous trees."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_stays_reasonable_with_size() {
        // quality should not collapse as schemas grow
        for (i, &size) in SIZES.iter().take(3).enumerate() {
            let pair = generate(&SyntheticConfig::sized(size, 1000 + i as u64));
            let cupid = Cupid::with_config(configs::synthetic(), pair.thesaurus.clone());
            let out = cupid.match_schemas(&pair.source, &pair.target).unwrap();
            let q = MatchQuality::score_mappings(&out.leaf_mappings, &pair.gold);
            assert!(q.recall() > 0.5, "size {size}: recall collapsed to {:.2}", q.recall());
        }
    }
}
