//! Table 2: the six canonical examples compared across Cupid, DIKE and
//! MOMIS-ARTEMIS.
//!
//! Verdict rule (uniform across systems): **Y** iff every gold leaf
//! correspondence of the case is produced by the system, under the
//! system's own correspondence notion — Cupid leaf mappings, DIKE merged
//! attributes (graph paths: shared types have a single node, so
//! context-qualified gold paths are unreachable — the test-6 failure),
//! ARTEMIS 1:1 attribute fusion inside clusters.

use cupid_baselines::{Artemis, Dike, Lspd, SenseDictionary};
use cupid_core::Cupid;
use cupid_corpus::canonical::{all_cases, CanonicalCase};
use cupid_lexical::Thesaurus;

use crate::configs;
use crate::table::TextTable;
use crate::Report;

fn yn(b: bool) -> &'static str {
    if b {
        "Y"
    } else {
        "N"
    }
}

/// Per-case auxiliary input for DIKE: the paper's footnote *a* — LSPD
/// entries were added for the renamed-attribute case.
fn dike_lspd(case: &CanonicalCase) -> Lspd {
    match case.id {
        3 => Lspd::from_pairs([
            ("CustomerNumber", "CustomerNumberId", 1.0),
            ("Name", "CustomerName", 1.0),
            ("Address", "StreetAddress", 1.0),
        ]),
        _ => Lspd::default(),
    }
}

/// Per-case user senses for MOMIS: footnote *b* — the matching WordNet
/// entry was chosen per name (synonyms for case 3, the Customer⊂Person
/// hypernym for case 4).
fn momis_senses(case: &CanonicalCase) -> SenseDictionary {
    let mut d = SenseDictionary::default();
    match case.id {
        3 => {
            d.choose_sense("CustomerNumberId", "customernumber");
            d.choose_sense("CustomerName", "name");
            d.choose_sense("StreetAddress", "address");
        }
        4 => {
            d.relate("customer", "person", 0.8);
        }
        _ => {}
    }
    d
}

/// Measured verdict for Cupid on a case.
pub fn cupid_verdict(case: &CanonicalCase) -> bool {
    let cupid = Cupid::with_config(configs::shallow_xml(), Thesaurus::with_default_stopwords());
    let out = match cupid.match_schemas(&case.schema1, &case.schema2) {
        Ok(o) => o,
        Err(_) => return false,
    };
    case.gold.pairs().all(|(s, t)| out.has_leaf_mapping(s, t))
}

/// Measured verdict for DIKE on a case.
pub fn dike_verdict(case: &CanonicalCase) -> bool {
    let r = Dike::new().run(&case.schema1, &case.schema2, &dike_lspd(case));
    case.gold.pairs().all(|(s, t)| r.has_attribute(s, t))
}

/// Measured verdict for MOMIS-ARTEMIS on a case.
pub fn artemis_verdict(case: &CanonicalCase) -> bool {
    let r = Artemis::new().run(&case.schema1, &case.schema2, &momis_senses(case));
    case.gold.pairs().all(|(s, t)| r.fused_one_to_one(s, t))
}

/// Run the Table 2 experiment.
pub fn run() -> Report {
    let mut report = Report::new("Table 2 — comparison on the canonical examples (§9.1)");
    let mut t = TextTable::new(
        "Y = all gold correspondences found (paper verdicts in parentheses)",
        vec!["#", "description", "Cupid", "DIKE", "MOMIS-ARTEMIS"],
    );
    let mut mismatches = 0usize;
    for case in all_cases() {
        let c = cupid_verdict(&case);
        let d = dike_verdict(&case);
        let a = artemis_verdict(&case);
        let (pc, pd, pa) = case.paper_verdicts;
        if (c, d, a) != (pc, pd, pa) {
            mismatches += 1;
        }
        t.row(vec![
            case.id.to_string(),
            case.description.to_string(),
            format!("{} ({})", yn(c), yn(pc)),
            format!("{} ({})", yn(d), yn(pd)),
            format!("{} ({})", yn(a), yn(pa)),
        ]);
    }
    report.tables.push(t);
    report.notes.push(if mismatches == 0 {
        "all 18 verdicts match Table 2".to_string()
    } else {
        format!("{mismatches} case(s) deviate from Table 2")
    });
    report.notes.push(
        "DIKE ran with LSPD entries for case 3 (paper footnote a); MOMIS with \
         user-chosen WordNet senses for cases 3 and 4 (footnote b)."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_match_table_2() {
        for case in all_cases() {
            let measured = (cupid_verdict(&case), dike_verdict(&case), artemis_verdict(&case));
            assert_eq!(
                measured, case.paper_verdicts,
                "case {} ({}) deviates from Table 2",
                case.id, case.description
            );
        }
    }
}
