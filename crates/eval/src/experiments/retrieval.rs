//! Top-k candidate retrieval vs exhaustive discovery (DESIGN.md §8.4).
//!
//! The discovery index prunes the all-pairs worklist by cheap leaf-
//! token overlap before any full tree match runs — the staged
//! retrieve-then-refine shape of modern dataset-discovery systems
//! (Valentine's benchmark; Schemora's retrieval tier). Pruning is only
//! admissible if it keeps the answers: this experiment measures, on the
//! paper's eight schemas, how much of the exhaustive ranking each `k`
//! preserves and how many of the 28 full pair executions it avoids.
//!
//! Two measurements per `k`:
//!
//! * **curated recall** — the four pairs the paper actually studies
//!   (Figure 1, Figure 2, CIDX–Excel, RDB–Star) must be retrieved;
//! * **preserved prefix** — the longest prefix of the exhaustive
//!   best-`wsim` ranking fully contained in the pruned set. Executed
//!   pairs are bit-identical to the exhaustive run's, so a contained
//!   prefix is reproduced *in the same order*.

use cupid_core::{MatchSession, MatchSummary};
use cupid_corpus::thesauri;
use cupid_repo::DiscoveryIndex;

use crate::configs;
use crate::experiments::discovery;
use crate::table::TextTable;
use crate::Report;

/// The four same-domain pairs the paper's experiments study, by corpus
/// label (order-insensitive).
pub const CURATED: &[(&str, &str)] = &[
    ("fig1/PO", "fig1/POrder"),
    ("fig2/PO", "fig2/PurchaseOrder"),
    ("CIDX", "Excel"),
    ("RDB", "Star"),
];

/// Rank summaries the way the `discovery` experiment does: best leaf
/// wsim descending, mapping count as tie-break.
fn rank(mut summaries: Vec<MatchSummary>) -> Vec<MatchSummary> {
    summaries.sort_by(|a, b| {
        b.best_wsim()
            .partial_cmp(&a.best_wsim())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.leaf_mappings.len().cmp(&a.leaf_mappings.len()))
    });
    summaries
}

/// One retrieval measurement at a fixed `k`.
#[derive(Debug, Clone)]
pub struct RetrievalPoint {
    /// Candidates kept per schema.
    pub k: usize,
    /// Full pairs executed (out of the exhaustive 28).
    pub pairs_executed: usize,
    /// Curated pairs retrieved (of [`CURATED`]'s 4).
    pub curated_hits: usize,
    /// Longest exhaustive-ranking prefix fully contained in (and hence
    /// reproduced by) the pruned ranking.
    pub preserved_prefix: usize,
}

/// Run the sweep `k = 1..=max_k`. Exposed for tests.
pub fn sweep(max_k: usize) -> (Vec<RetrievalPoint>, usize) {
    let labeled = discovery::corpus();
    let names: Vec<&'static str> = labeled.iter().map(|(n, _)| *n).collect();
    let schemas: Vec<_> = labeled.into_iter().map(|(_, s)| s).collect();
    let cfg = configs::shallow_xml();
    let thesaurus = thesauri::paper_thesaurus();

    let mut session = MatchSession::new(&cfg, &thesaurus);
    session.add_corpus(&schemas).expect("corpus expands");
    let exhaustive = rank(session.match_all_pairs());
    let total_pairs = schemas.len() * (schemas.len() - 1) / 2;
    let index = DiscoveryIndex::build(session.prepared());

    let label = |s: &MatchSummary| -> (usize, usize) { (s.source.index(), s.target.index()) };
    let curated_indices: Vec<(usize, usize)> = CURATED
        .iter()
        .map(|(a, b)| {
            let i = names.iter().position(|n| n == a).expect("label");
            let j = names.iter().position(|n| n == b).expect("label");
            (i.min(j), i.max(j))
        })
        .collect();

    let mut points = Vec::new();
    for k in 1..=max_k {
        let pruned = index.top_k_pairs(k);
        let contains = |p: &(usize, usize)| pruned.binary_search(p).is_ok();
        let curated_hits = curated_indices.iter().filter(|p| contains(p)).count();
        let preserved_prefix = exhaustive.iter().take_while(|s| contains(&label(s))).count();
        points.push(RetrievalPoint {
            k,
            pairs_executed: pruned.len(),
            curated_hits,
            preserved_prefix,
        });
    }
    (points, total_pairs)
}

/// Run the retrieval experiment.
pub fn run() -> Report {
    let mut report =
        Report::new("top-k retrieval — discovery index vs exhaustive all-pairs (DESIGN.md §8.4)");
    let (points, total) = sweep(4);
    let mut t = TextTable::new(
        "Index-pruned discovery on the paper's 8 schemas (28 exhaustive pairs)",
        vec!["k", "pairs executed", "curated pairs retrieved", "exhaustive prefix preserved"],
    );
    for p in &points {
        t.row(vec![
            p.k.to_string(),
            format!("{}/{total}", p.pairs_executed),
            format!("{}/{}", p.curated_hits, CURATED.len()),
            p.preserved_prefix.to_string(),
        ]);
    }
    report.tables.push(t);
    report.notes.push(
        "executed pairs are bit-identical to the exhaustive run, so a preserved prefix \
         is reproduced in the exact same order; the index retrieves by leaf-token \
         overlap only (no thesaurus, no tree traversal), which is why small k already \
         recovers every curated pair at a fraction of the full worklist."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_k_reproduces_the_exhaustive_ranking_with_fewer_pairs() {
        let (points, total) = sweep(3);
        assert_eq!(total, 28);
        let p3 = &points[2];
        assert_eq!(p3.k, 3);
        assert!(p3.pairs_executed < total, "pruning must drop pairs: {p3:?}");
        assert_eq!(p3.curated_hits, CURATED.len(), "every curated pair retrieved: {p3:?}");
        assert!(
            p3.preserved_prefix >= 4,
            "the top of the exhaustive ranking must survive pruning: {p3:?}"
        );
    }

    #[test]
    fn recall_is_monotone_in_k() {
        let (points, _) = sweep(4);
        for w in points.windows(2) {
            assert!(w[1].pairs_executed >= w[0].pairs_executed);
            assert!(w[1].curated_hits >= w[0].curated_hits);
            assert!(w[1].preserved_prefix >= w[0].preserved_prefix);
        }
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert_eq!(r.tables[0].rows.len(), 4, "{}", r.render());
        assert!(!r.notes.is_empty());
    }
}
