//! One module per paper artifact. Each experiment returns a [`Report`]
//! comparing the paper's claim with the measured result.

use crate::Report;

pub mod ablation;
pub mod daemon;
pub mod discovery;
pub mod explain;
pub mod fig1;
pub mod fig2;
pub mod fig8;
pub mod ling_only;
pub mod retrieval;
pub mod scalability;
pub mod table1;
pub mod table2;
pub mod table3;

/// All experiment ids, in presentation order.
pub const ALL: &[&str] = &[
    "fig1",
    "fig2",
    "table1",
    "table2",
    "table3",
    "fig7-leaves",
    "fig8",
    "ling-only",
    "no-thesaurus",
    "scalability",
    "ablation",
    "discovery",
    "retrieval",
    "daemon",
    "explain",
];

/// Run an experiment by id.
pub fn run(id: &str) -> Option<Report> {
    match id {
        "fig1" => Some(fig1::run()),
        "fig2" => Some(fig2::run()),
        "table1" => Some(table1::run()),
        "table2" => Some(table2::run()),
        "table3" => Some(table3::run()),
        "fig7-leaves" => Some(table3::run_leaves()),
        "fig8" => Some(fig8::run()),
        "ling-only" => Some(ling_only::run()),
        "no-thesaurus" => Some(ling_only::run_no_thesaurus()),
        "scalability" => Some(scalability::run()),
        "ablation" => Some(ablation::run()),
        "discovery" => Some(discovery::run()),
        "retrieval" => Some(retrieval::run()),
        "daemon" => Some(daemon::run()),
        "explain" => Some(explain::run()),
        _ => None,
    }
}
