//! Figure 2 / Section 4: the running example, exercising abbreviation
//! expansion (Qty, UoM), synonyms (Bill≈Invoice, Ship≈Deliver) and
//! context-dependent binding of the shared `Address` type.

use cupid_core::Cupid;
use cupid_corpus::{fig2, thesauri};

use crate::configs;
use crate::metrics::MatchQuality;
use crate::table::TextTable;
use crate::Report;

/// Run the Figure 2 experiment.
pub fn run() -> Report {
    let mut report = Report::new("Figure 2 — PO vs PurchaseOrder (running example)");
    let po = fig2::po();
    let purchase = fig2::purchase_order();
    let cupid = Cupid::with_config(configs::shallow_xml(), thesauri::paper_thesaurus());
    let out = cupid.match_schemas(&po, &purchase).expect("fig2 schemas expand");

    let gold = fig2::gold();
    let mut t = TextTable::new(
        "Leaf mappings (paper: City/Street bind to the synonym-matched \
         context; Line -> ItemNumber structural)",
        vec!["source", "target", "wsim", "in gold"],
    );
    for m in &out.leaf_mappings {
        t.row(vec![
            m.source_path.clone(),
            m.target_path.clone(),
            format!("{:.3}", m.wsim),
            if gold.contains(&m.source_path, &m.target_path) { "yes" } else { "NO" }.to_string(),
        ]);
    }
    report.tables.push(t);

    let q = MatchQuality::score_mappings(&out.leaf_mappings, &gold);
    report.notes.push(format!("leaf quality: {}", q.summary()));

    // The §4 claim: POBillTo's City binds to InvoiceTo's, not DeliverTo's.
    let w_right = out.wsim_of_paths("PO.POBillTo.City", "PurchaseOrder.InvoiceTo.City");
    let w_wrong = out.wsim_of_paths("PO.POBillTo.City", "PurchaseOrder.DeliverTo.City");
    report.notes.push(format!(
        "context binding: wsim(POBillTo.City, InvoiceTo.City) = {w_right:.3} vs \
         wsim(POBillTo.City, DeliverTo.City) = {w_wrong:.3} -> {}",
        if w_right > w_wrong { "bound to the synonym context (matches paper)" } else { "WRONG" }
    ));

    let nl_gold = fig2::gold_nonleaf();
    let nl_q = MatchQuality::score_mappings(&out.nonleaf_mappings, &nl_gold);
    report.notes.push(format!("element-level quality: {}", nl_q.summary()));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_context_binding_holds() {
        let r = run();
        assert!(r.notes.iter().any(|n| n.contains("matches paper")), "{}", r.render());
    }

    #[test]
    fn fig2_full_recall() {
        let po = fig2::po();
        let purchase = fig2::purchase_order();
        let cupid = Cupid::with_config(configs::shallow_xml(), thesauri::paper_thesaurus());
        let out = cupid.match_schemas(&po, &purchase).unwrap();
        let q = MatchQuality::score_mappings(&out.leaf_mappings, &fig2::gold());
        assert!(q.recall() >= 0.99, "recall {} — mappings: {:#?}", q.recall(), out.leaf_mappings);
    }
}
