//! Figure 8 / §9.2: mapping the RDB operational schema to the Star
//! warehouse schema — the join-view experiment.
//!
//! Paper claims for Cupid: the join of Orders and OrderDetails matches
//! the Sales table (the paper itself accepts *"Orders or OrderDetails
//! (or a join of the two)"* as the good mapping); Products and Customers
//! columns match; Geography's columns come from Region/Territories and
//! their join; the three Star PostalCode columns all map to RDB
//! Customers.PostalCode; CustomerName is *not* matched to
//! ContactFirst/LastName without a Customer:Contact thesaurus entry.

use cupid_core::Cupid;
use cupid_corpus::{star_rdb, thesauri};

use crate::configs;
use crate::metrics::MatchQuality;
use crate::table::TextTable;
use crate::Report;

/// Run the Figure 8 experiment.
pub fn run() -> Report {
    let mut report = Report::new("Figure 8 — RDB -> Star warehouse (referential constraints)");
    let rdb = star_rdb::rdb();
    let star = star_rdb::star();
    let cupid = Cupid::with_config(configs::relational(), thesauri::empty_thesaurus());
    let out = cupid.match_schemas(&rdb, &star).expect("fig8 schemas expand");

    // Table-level: best source per Star table from the final wsim.
    let gold_tables = star_rdb::gold_tables();
    let mut t = TextTable::new(
        "Star table -> best RDB source (element-level 1:1)",
        vec!["Star table", "mapped RDB source", "paper-sanctioned"],
    );
    for table in ["Star.Geography", "Star.Customers", "Star.Time", "Star.Products", "Star.Sales"] {
        let found = out
            .nonleaf_mappings
            .iter()
            .find(|m| m.target_path == table)
            .map(|m| m.source_path.clone())
            .unwrap_or_else(|| "(none)".to_string());
        let ok = gold_tables.contains(&found, table);
        t.row(vec![table.to_string(), found, if ok { "yes" } else { "-" }.to_string()]);
    }
    report.tables.push(t);

    // The three PostalCode columns.
    let mut t = TextTable::new(
        "The three Star PostalCode columns (paper: all map to RDB \
         Customers.PostalCode)",
        vec!["Star column", "mapped source"],
    );
    let mut postal_ok = 0;
    for target in
        ["Star.Geography.PostalCode", "Star.Customers.PostalCode", "Star.Sales.PostalCode"]
    {
        let found = out
            .leaf_mappings
            .iter()
            .find(|m| m.target_path == target)
            .map(|m| m.source_path.clone())
            .unwrap_or_else(|| "(none)".to_string());
        if found == "RDB.Customers.PostalCode" {
            postal_ok += 1;
        }
        t.row(vec![target.to_string(), found]);
    }
    report.tables.push(t);
    report.notes.push(format!(
        "PostalCode fan-out: {postal_ok}/3 map to Customers.PostalCode (paper: 3/3)"
    ));

    // Column-level quality.
    let q = MatchQuality::score_mappings(&out.leaf_mappings, &star_rdb::gold_columns());
    report.notes.push(format!("column-level quality vs §9.2 gold: {}", q.summary()));

    // CustomerName: missed without the Customer:Contact entry, found with.
    let name_mapped_without = out.leaf_mappings.iter().any(|m| {
        m.target_path == "Star.Customers.CustomerName"
            && (m.source_path.contains("ContactFirstName")
                || m.source_path.contains("ContactLastName"))
    });
    let cupid2 =
        Cupid::with_config(configs::relational(), thesauri::star_rdb_customer_contact_thesaurus());
    let out2 = cupid2.match_schemas(&rdb, &star).expect("fig8 schemas expand");
    let name_mapped_with = out2.leaf_mappings.iter().any(|m| {
        m.target_path == "Star.Customers.CustomerName"
            && (m.source_path.contains("ContactFirstName")
                || m.source_path.contains("ContactLastName")
                || m.source_path.contains("CompanyName"))
    });
    report.notes.push(format!(
        "CustomerName <- Contact names without thesaurus entry: {} (paper: missed); \
         with (Customer:Contact) entry: {} (paper: would become possible)",
        if name_mapped_without { "mapped" } else { "missed" },
        if name_mapped_with { "mapped" } else { "missed" },
    ));

    // Join view involvement for Sales.
    let sales_src = out
        .nonleaf_mappings
        .iter()
        .find(|m| m.target_path == "Star.Sales")
        .map(|m| m.source_path.clone())
        .unwrap_or_default();
    report.notes.push(format!(
        "Sales best source: `{sales_src}` (paper: the Orders⋈OrderDetails join; \
         the paper accepts Orders or OrderDetails too)"
    ));
    report.notes.push(
        "Geography: no table-level match is expected — the paper reports \
         Geography's *columns* mapping to Region/Territories and their join \
         (a single 3-way join view is deliberately not built, §8.3)."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> cupid_core::MatchOutcome {
        Cupid::with_config(configs::relational(), thesauri::empty_thesaurus())
            .match_schemas(&star_rdb::rdb(), &star_rdb::star())
            .unwrap()
    }

    #[test]
    fn products_and_customers_columns_match() {
        let out = outcome();
        for c in ["ProductID", "ProductName", "BrandID"] {
            assert!(
                out.has_leaf_mapping(&format!("RDB.Products.{c}"), &format!("Star.Products.{c}")),
                "Products.{c} missing"
            );
        }
        // Figure 8's RDB denormalizes BrandDescription into Products;
        // either that copy or Brands' canonical column is acceptable.
        assert!(
            out.has_leaf_mapping("RDB.Products.BrandDescription", "Star.Products.BrandDescription")
                || out.has_leaf_mapping(
                    "RDB.Brands.BrandDescription",
                    "Star.Products.BrandDescription"
                ),
            "BrandDescription missing"
        );
        assert!(out.has_leaf_mapping("RDB.Customers.CustomerID", "Star.Customers.CustomerID"));
        assert!(
            out.has_leaf_mapping("RDB.Customers.StateOrProvince", "Star.Customers.State"),
            "State <- StateOrProvince expected"
        );
    }

    #[test]
    fn postal_codes_fan_out_from_customers() {
        let out = outcome();
        let mut hits = 0;
        for t in ["Star.Geography.PostalCode", "Star.Customers.PostalCode", "Star.Sales.PostalCode"]
        {
            if out.has_leaf_mapping("RDB.Customers.PostalCode", t) {
                hits += 1;
            }
        }
        assert!(hits >= 2, "paper: all three PostalCodes from Customers.PostalCode ({hits}/3)");
    }

    #[test]
    fn sales_maps_to_orders_family() {
        let out = outcome();
        let src = out
            .nonleaf_mappings
            .iter()
            .find(|m| m.target_path == "Star.Sales")
            .map(|m| m.source_path.clone());
        let src = src.expect("Sales should be mapped");
        assert!(
            src == "RDB.OrderDetails-Orders-fk" || src == "RDB.Orders" || src == "RDB.OrderDetails",
            "Sales mapped to {src}, expected the Orders/OrderDetails family"
        );
    }

    #[test]
    fn geography_from_territory_region_family() {
        let out = outcome();
        // TerritoryID / RegionID columns come from Territories/Region (or
        // the TerritoryRegion join columns).
        let gold = star_rdb::gold_columns();
        for target in ["Star.Geography.TerritoryID", "Star.Geography.RegionID"] {
            let m = out.leaf_mappings.iter().find(|m| m.target_path == target);
            if let Some(m) = m {
                assert!(
                    gold.contains(&m.source_path, target),
                    "{target} <- {} not sanctioned",
                    m.source_path
                );
            }
        }
    }

    #[test]
    fn customer_name_needs_thesaurus_entry() {
        let out = outcome();
        assert!(
            !out.leaf_mappings.iter().any(|m| m.target_path == "Star.Customers.CustomerName"
                && (m.source_path.contains("ContactFirstName")
                    || m.source_path.contains("ContactLastName"))),
            "paper: CustomerName not matched to contact names without thesaurus"
        );
    }
}
