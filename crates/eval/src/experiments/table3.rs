//! Table 3 and the §9.2 leaf-level narrative: the CIDX ↔ Excel purchase
//! orders, compared across Cupid, DIKE and MOMIS-ARTEMIS.

use cupid_baselines::{artemis::Side, Artemis, Dike};
use cupid_core::Cupid;
use cupid_corpus::{cidx_excel, thesauri};

use crate::adapters;
use crate::configs;
use crate::metrics::MatchQuality;
use crate::table::TextTable;
use crate::Report;

/// Table 3's paper verdicts per row, per system, for the summary note.
const PAPER: [(&str, &str, &str); 7] = [
    ("POHeader -> Header", "Yes", "Yes"),
    ("Item -> Item", "Yes", "cluster w/ Items"),
    ("POLines -> Items", "Yes", "own cluster"),
    ("POBillTo -> InvoiceTo", "No", "cluster w/ Address"),
    ("POShipTo -> DeliverTo", "No", "cluster w/ Address"),
    ("Contact -> Contact", "Yes", "Yes"),
    ("PO -> PurchaseOrder", "Yes", "clustered, elems unmapped"),
];

/// Run the Table 3 experiment (element-level comparison).
pub fn run() -> Report {
    let mut report =
        Report::new("Table 3 — CIDX -> Excel element mappings (Cupid vs DIKE vs MOMIS)");
    let s1 = cidx_excel::cidx();
    let s2 = cidx_excel::excel();
    let thesaurus = thesauri::paper_thesaurus();
    let cfg = configs::shallow_xml();

    // Cupid
    let cupid = Cupid::with_config(cfg.clone(), thesaurus.clone());
    let out = cupid.match_schemas(&s1, &s2).expect("fig7 schemas expand");

    // DIKE: LSPD from Cupid's linguistic coefficients, per the paper.
    let lspd = adapters::lspd_from_cupid(&s1, &s2, &thesaurus, &cfg);
    let dike = Dike::new().run(&s1, &s2, &lspd);

    // MOMIS: the user's best-possible WordNet senses.
    let senses = adapters::momis_senses_cidx_excel();
    let artemis = Artemis::new().run(&s1, &s2, &senses);

    let mut t = TextTable::new(
        "Element mappings (paper verdicts: Cupid all Yes except the two \
         address contexts for DIKE; see notes)",
        vec!["mapping", "Cupid", "DIKE", "MOMIS-ARTEMIS"],
    );
    for (label, src, targets) in cidx_excel::table3_rows() {
        let cupid_found = targets.iter().any(|t| out.has_nonleaf_mapping(src, t));
        // DIKE reports merges over graph paths; the shared Contact type
        // appears as the ContactType entity.
        let dike_found = targets.iter().any(|t| dike.has_entity(src, t))
            || (label.starts_with("Contact")
                && dike.has_entity("PO.Contact", "PurchaseOrder.ContactType"));
        let artemis_cell = {
            let together = targets.iter().any(|t| artemis.clustered_together(src, t))
                || (label.starts_with("Contact")
                    && artemis.clustered_together("PO.Contact", "PurchaseOrder.ContactType"));
            if !together {
                "own cluster".to_string()
            } else {
                let size = artemis.cluster_of(Side::Left, src).map(|c| c.len()).unwrap_or(0);
                if size == 2 {
                    "Yes".to_string()
                } else {
                    format!("cluster of {size}")
                }
            }
        };
        t.row(vec![
            label.to_string(),
            if cupid_found { "Yes" } else { "No" }.to_string(),
            if dike_found { "Yes" } else { "No" }.to_string(),
            artemis_cell,
        ]);
    }
    report.tables.push(t);

    let mut t =
        TextTable::new("Paper's Table 3 (for comparison)", vec!["mapping", "DIKE", "MOMIS"]);
    for (label, d, m) in PAPER {
        t.row(vec![label.to_string(), d.to_string(), m.to_string()]);
    }
    report.tables.push(t);

    report.notes.push(
        "Cupid column expected all Yes; DIKE expected No for the two address \
         contexts (POBillTo/POShipTo); MOMIS expected the Item/Items and \
         address-family clusters."
            .to_string(),
    );
    report
}

/// The §9.2 leaf-level narrative: *"Cupid identifies all the correct
/// XML-attribute matching pairs … Cupid is the only one to identify
/// CIDX.line to correspond to Excel.itemNumber … In addition, there are
/// two false positives (e.g. CIDX.contactName is mapped to both
/// Excel.contactName and Excel.companyName)"*.
pub fn run_leaves() -> Report {
    let mut report = Report::new("§9.2 — CIDX -> Excel leaf (XML-attribute) mappings");
    let s1 = cidx_excel::cidx();
    let s2 = cidx_excel::excel();
    let cupid = Cupid::with_config(configs::shallow_xml(), thesauri::paper_thesaurus());
    let out = cupid.match_schemas(&s1, &s2).expect("fig7 schemas expand");
    let gold = cidx_excel::gold();
    let q = MatchQuality::score_mappings(&out.leaf_mappings, &gold);

    let mut t = TextTable::new(
        "Quality of the naive 1:n leaf generator",
        vec!["metric", "measured", "paper"],
    );
    t.row(vec![
        "correct pairs found".to_string(),
        format!("{}/{} targets", q.gold_targets - q.missed_targets, q.gold_targets),
        "all correct pairs".to_string(),
    ]);
    t.row(vec![
        "false positives".to_string(),
        q.false_positives.to_string(),
        "2 (naive generator)".to_string(),
    ]);
    t.row(vec!["precision".to_string(), format!("{:.2}", q.precision()), "-".to_string()]);
    t.row(vec!["recall".to_string(), format!("{:.2}", q.recall()), "1.00".to_string()]);
    report.tables.push(t);

    let mut t = TextTable::new("False positives (not in gold)", vec!["source", "target", "wsim"]);
    for m in &out.leaf_mappings {
        if !gold.contains(&m.source_path, &m.target_path) {
            t.row(vec![m.source_path.clone(), m.target_path.clone(), format!("{:.3}", m.wsim)]);
        }
    }
    report.tables.push(t);

    let line_found =
        out.has_leaf_mapping("PO.POLines.Item.line", "PurchaseOrder.Items.Item.itemNumber");
    report.notes.push(format!(
        "line -> itemNumber (structural, no thesaurus support): {}",
        if line_found { "FOUND (matches paper)" } else { "MISSING" }
    ));
    let fp_company = out.leaf_mappings.iter().any(|m| {
        m.source_path == "PO.Contact.ContactName" && m.target_path.ends_with("companyName")
    });
    report.notes.push(format!(
        "contactName also mapped to companyName (the paper's false-positive example): {}",
        if fp_company { "reproduced" } else { "not reproduced" }
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> cupid_core::MatchOutcome {
        let s1 = cidx_excel::cidx();
        let s2 = cidx_excel::excel();
        Cupid::with_config(configs::shallow_xml(), thesauri::paper_thesaurus())
            .match_schemas(&s1, &s2)
            .unwrap()
    }

    #[test]
    fn cupid_finds_all_table3_rows() {
        let out = outcome();
        for (label, src, targets) in cidx_excel::table3_rows() {
            assert!(
                targets.iter().any(|t| out.has_nonleaf_mapping(src, t)),
                "Cupid misses Table 3 row {label}; nonleaf mappings: {:#?}",
                out.nonleaf_mappings
            );
        }
    }

    #[test]
    fn cupid_leaf_recall_is_full() {
        let out = outcome();
        let q = MatchQuality::score_mappings(&out.leaf_mappings, &cidx_excel::gold());
        assert!(q.recall() >= 0.99, "recall {}: {:#?}", q.recall(), out.leaf_mappings);
    }

    #[test]
    fn line_to_item_number_found_structurally() {
        let out = outcome();
        assert!(out.has_leaf_mapping("PO.POLines.Item.line", "PurchaseOrder.Items.Item.itemNumber"));
    }

    #[test]
    fn dike_fails_on_address_contexts() {
        let s1 = cidx_excel::cidx();
        let s2 = cidx_excel::excel();
        let thesaurus = thesauri::paper_thesaurus();
        let cfg = configs::shallow_xml();
        let lspd = adapters::lspd_from_cupid(&s1, &s2, &thesaurus, &cfg);
        let r = Dike::new().run(&s1, &s2, &lspd);
        assert!(!r.has_entity("PO.POBillTo", "PurchaseOrder.InvoiceTo"));
        assert!(!r.has_entity("PO.POShipTo", "PurchaseOrder.DeliverTo"));
        assert!(r.has_entity("PO.POHeader", "PurchaseOrder.Header"), "{r:#?}");
        assert!(r.has_entity("PO", "PurchaseOrder"));
    }

    #[test]
    fn artemis_builds_the_address_family_cluster() {
        let s1 = cidx_excel::cidx();
        let s2 = cidx_excel::excel();
        let r = Artemis::new().run(&s1, &s2, &adapters::momis_senses_cidx_excel());
        assert!(r.clustered_together("PO.POBillTo", "PurchaseOrder.InvoiceTo"));
        assert!(r.clustered_together("PO.POShipTo", "PurchaseOrder.DeliverTo"));
        // ... but the cluster is the whole address family, not a pair.
        let c = r.cluster_of(Side::Left, "PO.POBillTo").unwrap();
        assert!(c.len() > 2, "address family expected: {c:?}");
        // POLines stays alone (paper: "POLines is in its own cluster").
        assert!(!r.clustered_together("PO.POLines", "PurchaseOrder.Items"));
        // POHeader -> Header is a clean pair.
        assert!(r.clustered_together("PO.POHeader", "PurchaseOrder.Header"));
    }
}
