//! Explainability audit (DESIGN.md §14): score provenance over the
//! whole paper corpus.
//!
//! The explain path re-executes a prepared pair with instrumentation,
//! so its value rests on one invariant: the decomposition it reports
//! must be the *actual* arithmetic of the match, not a story about it.
//! This experiment explains every pair of the paper corpus and checks
//! the invariant two ways, both bitwise:
//!
//! 1. **Recomposition** — for every explained mapping,
//!    `w·ssim + (1−w)·lsim` reproduces the reported `wsim` bit-exactly
//!    ([`cupid_core::Explanation::recomposes_exactly`]).
//! 2. **Agreement** — the explained mappings are exactly the mappings
//!    [`MatchSession::match_pair`] reports for the same pair, path for
//!    path, with `wsim` equal down to the float bits.
//!
//! A breakdown table for the paper's introductory pair (Figure 1,
//! PO ↔ POrder) shows what the provenance looks like: per-mapping
//! wsim/ssim/lsim at the final weight, the top contributing token pair
//! with its provenance, and the structural context TreeMatch saw.

use cupid_core::{Explanation, MatchSession, TokenPairScore};
use cupid_corpus::thesauri;
use cupid_lexical::TokenSimProvenance;

use crate::configs;
use crate::experiments::discovery;
use crate::table::TextTable;
use crate::Report;

/// Render the provenance of a mapping's strongest token pair.
fn token_note(pairs: &[TokenPairScore]) -> String {
    match pairs.first() {
        None => "-".to_string(),
        Some(p) => format!(
            "{}~{} {:.2} ({})",
            p.source_token,
            p.target_token,
            p.sim,
            match &p.provenance {
                TokenSimProvenance::ExactSymbol => "exact".to_string(),
                TokenSimProvenance::Thesaurus => "thesaurus".to_string(),
                TokenSimProvenance::Affix { prefix_len, suffix_len, .. } => {
                    format!("affix {prefix_len}+{suffix_len}")
                }
                TokenSimProvenance::NoMatch => "no match".to_string(),
            }
        ),
    }
}

/// Label for which TreeMatch passes touched a pair.
fn passes_label(e: &Explanation) -> &'static str {
    match (e.structure.pruned, e.structure.increased, e.structure.decreased) {
        (true, _, _) => "pruned",
        (_, true, false) => "increased",
        (_, false, true) => "decreased",
        (_, true, true) => "both",
        _ => "unchanged",
    }
}

/// Run the explainability audit.
pub fn run() -> Report {
    let mut report = Report::new("explain — score provenance audit (DESIGN.md §14)");
    let config = configs::shallow_xml();
    let thesaurus = thesauri::paper_thesaurus();
    let corpus = discovery::corpus();
    let schemas: Vec<_> = corpus.iter().map(|(_, s)| s.clone()).collect();
    let mut session = MatchSession::new(&config, &thesaurus);
    let ids = session.add_corpus(&schemas).expect("corpus prepares");

    let mut mappings_checked = 0usize;
    let mut recompose_failures = 0usize;
    let mut agreement_failures = 0usize;
    let mut pairs_explained = 0usize;
    let mut audit = TextTable::new(
        "Per-pair audit (recomposition and match agreement are bitwise)",
        vec!["pair", "mappings", "recomposes", "agrees with match"],
    );
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            let summary = session.match_pair(ids[i], ids[j]);
            let ex = session.explain_pair(ids[i], ids[j]);
            pairs_explained += 1;
            mappings_checked += ex.mappings.len();

            let bad = ex.mappings.iter().filter(|m| !m.recomposes_exactly()).count();
            recompose_failures += bad;

            // The explained mappings must be the match's mappings:
            // same order (leaf generator first, then non-leaf), same
            // paths, same wsim bits.
            let reported: Vec<_> =
                summary.leaf_mappings.iter().chain(&summary.nonleaf_mappings).collect();
            let agrees = reported.len() == ex.mappings.len()
                && reported.iter().zip(&ex.mappings).all(|(m, e)| {
                    m.source_path == e.source_path
                        && m.target_path == e.target_path
                        && m.wsim.to_bits() == e.wsim.to_bits()
                });
            agreement_failures += usize::from(!agrees);

            audit.row(vec![
                format!("{} ~ {}", corpus[i].0, corpus[j].0),
                ex.mappings.len().to_string(),
                if bad == 0 { "yes".to_string() } else { format!("NO ({bad} off)") },
                if agrees { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    report.tables.push(audit);

    // The introductory pair in full: what an explanation carries.
    let ex = session.explain_pair(ids[0], ids[1]);
    let mut t = TextTable::new(
        format!(
            "Figure 1 breakdown — {} ~ {} ({} of {} element pairs compared)",
            ex.source_name, ex.target_name, ex.compared_pairs, ex.total_pairs
        ),
        vec!["mapping", "wsim", "ssim", "lsim", "w", "top token pair", "links", "passes"],
    );
    for m in &ex.mappings {
        t.row(vec![
            format!("{} -> {}", m.source_path, m.target_path),
            format!("{:.3}", m.wsim),
            format!("{:.3}", m.ssim),
            format!("{:.3}", m.lsim),
            format!("{:.2}", m.w_struct),
            token_note(&m.token_pairs),
            format!(
                "{}/{} {}/{}",
                m.structure.source_strong_links,
                m.structure.source_leaves,
                m.structure.target_strong_links,
                m.structure.target_leaves
            ),
            passes_label(m).to_string(),
        ]);
    }
    report.tables.push(t);

    report.notes.push(format!(
        "recomposition wsim = w*ssim + (1-w)*lsim bit-exact: {} ({} mappings across {} pairs)",
        if recompose_failures == 0 {
            "HOLDS".to_string()
        } else {
            format!("VIOLATED for {recompose_failures}")
        },
        mappings_checked,
        pairs_explained,
    ));
    report.notes.push(format!(
        "explanations agree with match_pair (paths + wsim bits): {}",
        if agreement_failures == 0 {
            "HOLDS".to_string()
        } else {
            format!("VIOLATED for {agreement_failures} pairs")
        },
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_invariants_hold_over_the_corpus() {
        let r = run();
        assert!(r.notes.iter().filter(|n| n.contains("HOLDS")).count() == 2, "{}", r.render());
    }
}
