//! §9.3(3): linguistic similarity alone, on complete path names.
//!
//! *"to make a fair evaluation of the utility of just the linguistic
//! similarity, we compared elements in the two schemas using just their
//! complete path names (from the root) in their schema trees. While in
//! the CIDX-Excel example only 2 of the correct matching XML attribute
//! pairs went undetected, there were as many as 7 false positive
//! mappings. In the RDB-Star example only 68% of the correct mappings
//! were detected."*
//!
//! Also covers §9.3(2): dropping the thesaurus hurts CIDX–Excel but
//! leaves RDB–Star unchanged.

use cupid_core::linguistic::{ns_elements_ids, TypedIds};
use cupid_core::{Cupid, CupidConfig};
use cupid_corpus::{cidx_excel, star_rdb, thesauri, GoldMapping};
use cupid_lexical::{Normalizer, Thesaurus, TokenSimCache, TokenTable};
use cupid_model::{expand, Schema, SchemaTree};

use crate::configs;
use crate::metrics::MatchQuality;
use crate::table::TextTable;
use crate::Report;

/// Best-match leaf mapping using only linguistic similarity of complete
/// path names. Path-name token sets are long and highly repetitive
/// (every leaf under `PO.Items` shares the `po items` prefix tokens), so
/// this comparison runs on the interned engine: one [`TokenTable`] for
/// both trees, one [`TokenSimCache`] for all `n1 × n2` comparisons.
pub fn path_name_mapping(
    s1: &Schema,
    s2: &Schema,
    thesaurus: &Thesaurus,
    cfg: &CupidConfig,
) -> Vec<(String, String, f64)> {
    let t1 = expand(s1, &cupid_model::ExpandOptions::none()).expect("expand");
    let t2 = expand(s2, &cupid_model::ExpandOptions::none()).expect("expand");
    let normalizer = Normalizer::default();
    let mut table = TokenTable::new();
    let mut names = |t: &SchemaTree| -> Vec<(String, TypedIds)> {
        t.iter()
            .filter(|(_, n)| n.is_leaf())
            .map(|(id, _)| {
                let p = t.path(id).to_string();
                let mut normalized = normalizer.normalize(&p.replace('.', " "), thesaurus);
                table.intern_name(&mut normalized);
                (p, TypedIds::of(&normalized))
            })
            .collect()
    };
    let n1 = names(&t1);
    let n2 = names(&t2);
    let mut cache = TokenSimCache::new(&table, thesaurus, &cfg.affix);
    let mut out = Vec::new();
    for (tp, tn) in &n2 {
        let mut best: Option<(&str, f64)> = None;
        for (sp, sn) in &n1 {
            let v = ns_elements_ids(sn, tn, &cfg.token_weights, &mut cache);
            match best {
                Some((_, bv)) if bv >= v => {}
                _ => best = Some((sp, v)),
            }
        }
        if let Some((sp, v)) = best {
            if v >= cfg.th_accept {
                out.push((sp.to_string(), tp.clone(), v));
            }
        }
    }
    out
}

fn quality(found: &[(String, String, f64)], gold: &GoldMapping) -> MatchQuality {
    MatchQuality::score(found.iter().map(|(s, t, _)| (s.as_str(), t.as_str())), gold)
}

/// Run the linguistic-only experiment.
pub fn run() -> Report {
    let mut report = Report::new("§9.3(3) — linguistic similarity only, on complete path names");
    let cfg = configs::shallow_xml();

    let cidx = cidx_excel::cidx();
    let excel = cidx_excel::excel();
    let found = path_name_mapping(&cidx, &excel, &thesauri::paper_thesaurus(), &cfg);
    let q = quality(&found, &cidx_excel::gold());
    let mut t =
        TextTable::new("CIDX -> Excel, path names only", vec!["metric", "measured", "paper"]);
    t.row(vec!["undetected correct targets".into(), q.missed_targets.to_string(), "2".into()]);
    t.row(vec!["false positives".into(), q.false_positives.to_string(), "7".into()]);
    t.row(vec!["recall".into(), format!("{:.2}", q.recall()), "-".into()]);
    report.tables.push(t);

    let rdb = star_rdb::rdb();
    let star = star_rdb::star();
    let found = path_name_mapping(&rdb, &star, &thesauri::empty_thesaurus(), &cfg);
    let q = quality(&found, &star_rdb::gold_columns());
    let mut t = TextTable::new("RDB -> Star, path names only", vec!["metric", "measured", "paper"]);
    t.row(vec![
        "correct mappings detected".into(),
        format!("{:.0}%", q.recall() * 100.0),
        "68%".into(),
    ]);
    report.tables.push(t);
    report.notes.push(
        "structure matching recovers what path-name linguistics misses — the \
         point of §9.3(3)."
            .to_string(),
    );
    report
}

/// §9.3(2): the thesaurus ablation.
pub fn run_no_thesaurus() -> Report {
    let mut report = Report::new("§9.3(2) — dropping the thesaurus");
    let cfg = configs::shallow_xml();

    let cidx = cidx_excel::cidx();
    let excel = cidx_excel::excel();
    let gold = cidx_excel::gold();
    let with = Cupid::with_config(cfg.clone(), thesauri::paper_thesaurus())
        .match_schemas(&cidx, &excel)
        .expect("expand");
    let without = Cupid::with_config(cfg, thesauri::empty_thesaurus())
        .match_schemas(&cidx, &excel)
        .expect("expand");
    let qw = MatchQuality::score_mappings(&with.leaf_mappings, &gold);
    let qo = MatchQuality::score_mappings(&without.leaf_mappings, &gold);

    let rdb = star_rdb::rdb();
    let star = star_rdb::star();
    let sgold = star_rdb::gold_columns();
    let s_with = Cupid::with_config(configs::relational(), thesauri::paper_thesaurus())
        .match_schemas(&rdb, &star)
        .expect("expand");
    let s_without = Cupid::with_config(configs::relational(), thesauri::empty_thesaurus())
        .match_schemas(&rdb, &star)
        .expect("expand");
    let sqw = MatchQuality::score_mappings(&s_with.leaf_mappings, &sgold);
    let sqo = MatchQuality::score_mappings(&s_without.leaf_mappings, &sgold);

    let mut t = TextTable::new(
        "Leaf mapping quality with/without the thesaurus",
        vec!["corpus", "with thesaurus", "without", "paper"],
    );
    t.row(vec![
        "CIDX-Excel".to_string(),
        qw.summary(),
        qo.summary(),
        "comparatively poor without".to_string(),
    ]);
    t.row(vec!["RDB-Star".to_string(), sqw.summary(), sqo.summary(), "unchanged".to_string()]);
    report.tables.push(t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_only_misses_some_and_false_positives_appear() {
        let cfg = configs::shallow_xml();
        let found = path_name_mapping(
            &cidx_excel::cidx(),
            &cidx_excel::excel(),
            &thesauri::paper_thesaurus(),
            &cfg,
        );
        let q = quality(&found, &cidx_excel::gold());
        // the paper's shape: a couple of misses, several false positives
        assert!(q.false_positives >= 2, "expected false positives, got {q:?}");
        assert!(q.recall() < 1.0, "path-only matching should not be perfect");
    }

    #[test]
    fn rdb_star_recall_drops_without_structure() {
        let cfg = configs::relational();
        let found = path_name_mapping(
            &star_rdb::rdb(),
            &star_rdb::star(),
            &thesauri::empty_thesaurus(),
            &cfg,
        );
        let q = quality(&found, &star_rdb::gold_columns());
        assert!(
            q.recall() < 0.9,
            "paper reports only 68% of correct mappings detected, got {:.2}",
            q.recall()
        );
    }

    #[test]
    fn thesaurus_matters_for_cidx_not_star() {
        let r = run_no_thesaurus();
        assert_eq!(r.tables[0].rows.len(), 2, "{}", r.render());
    }
}
