//! The single-writer advisory lock (DESIGN.md §9.4).
//!
//! Two processes holding handles to the same snapshot path used to race
//! at [`crate::Repository::save`]: both write-temp-then-rename, last
//! rename wins, and one process's matches silently vanish from disk.
//! The fix is a lock *file* next to the snapshot (`<snapshot>.lock`)
//! acquired for the whole lifetime of a [`crate::Repository`] handle:
//! the holder's pid is written to a private temp file and published by
//! an atomic `hard_link` (create-if-absent on every platform the
//! workspace targets), so the lock exists with its pid inside from the
//! first observable instant, and the file is removed when the handle
//! drops.
//!
//! The lock is advisory — nothing stops a process from ignoring it and
//! opening the file directly — but every path through this crate goes
//! through [`RepoLock::acquire`], which is what "single-writer
//! protocol" means here. A lock left behind by a crashed process (its
//! pid no longer runs) is reclaimed automatically rather than wedging
//! the repository forever.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::RepoError;

/// A held advisory lock: the sibling `<snapshot>.lock` file, removed on
/// drop. Owned by [`crate::Repository`]; exposed so a daemon can report
/// the lock path it is holding.
#[derive(Debug)]
pub struct RepoLock {
    path: PathBuf,
}

impl RepoLock {
    /// The lock file guarding a snapshot path.
    pub fn lock_path(snapshot: &Path) -> PathBuf {
        let name = snapshot
            .file_name()
            .map_or_else(|| "cupid.repo".to_string(), |n| n.to_string_lossy().into_owned());
        snapshot.with_file_name(format!("{name}.lock"))
    }

    /// Acquire the single-writer lock for `snapshot`, writing this
    /// process's pid into the lock file. Fails with
    /// [`RepoError::Locked`] — naming the holder's pid — if another
    /// live process (or another handle in this one) already holds it; a
    /// lock whose recorded pid is no longer running is reclaimed.
    ///
    /// Two properties keep concurrent acquires sound:
    ///
    /// 1. **Locks are born with their pid inside.** The pid is written
    ///    to a private temp file first and published with an atomic
    ///    `hard_link` (create-if-absent), so no contender can ever
    ///    observe an empty lock file and misread a live acquire as a
    ///    crash artifact.
    /// 2. **Reclaims are serialized.** Removing a dead lock happens
    ///    only while holding a sibling reclaim mutex (acquired the
    ///    same atomic way), and the lock is re-read *under* that mutex
    ///    before removal — so a reclaim can never delete a fresh live
    ///    lock that another contender installed in between.
    pub fn acquire(snapshot: &Path) -> Result<RepoLock, RepoError> {
        let path = Self::lock_path(snapshot);
        let io_err =
            |e: std::io::Error| RepoError::Io { path: path.clone(), message: e.to_string() };
        loop {
            if try_create_with_pid(&path).map_err(io_err)? {
                return Ok(RepoLock { path });
            }
            match read_pid(&path) {
                // Raced with the holder's drop between create and read:
                // just try again.
                None => continue,
                Some(holder) => {
                    if holder.pid == std::process::id() || pid_alive(holder.pid) {
                        return Err(RepoError::Locked { path, pid: holder.pid });
                    }
                    // Dead holder: reclaim under the reclaim mutex,
                    // then retry the create. Losing a reclaim race just
                    // means another contender is doing the same work.
                    reclaim_dead_lock(&path, holder.pid).map_err(io_err)?;
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
        }
    }

    /// The held lock file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for RepoLock {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// A pid read from a lock file. Garbled content (manual tampering, or
/// an artifact of a pre-atomic-create era) maps to pid 0, which is
/// never alive — i.e. a dead holder.
struct Holder {
    pid: u32,
}

/// Read the holder recorded in a lock file. `None` if the file is gone
/// (or unreadable); garbled content maps to pid 0, which is never
/// alive.
fn read_pid(path: &Path) -> Option<Holder> {
    let text = std::fs::read_to_string(path).ok()?;
    Some(Holder { pid: text.trim().parse::<u32>().unwrap_or(0) })
}

/// Atomically create `path` with this process's pid as content: write a
/// private temp file, publish it with `hard_link` (fails if `path`
/// exists), remove the temp. Returns whether we created it. The temp
/// name carries a process-wide sequence number on top of the pid —
/// threads of one process acquiring concurrently must not share (and
/// delete) each other's temp file.
fn try_create_with_pid(path: &Path) -> std::io::Result<bool> {
    static TEMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = TEMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let temp = sibling(path, &format!("tmp.{}.{seq}", std::process::id()));
    {
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&temp)?;
        f.write_all(std::process::id().to_string().as_bytes())?;
        f.sync_all().ok();
    }
    let linked = match std::fs::hard_link(&temp, path) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(false),
        Err(e) => Err(e),
    };
    std::fs::remove_file(&temp).ok();
    linked
}

/// Remove a lock file whose recorded holder `dead_pid` is no longer
/// running. Serialized through a sibling reclaim mutex so that no
/// contender can remove a *fresh, live* lock installed between our
/// staleness check and our removal: the lock is re-read while the
/// mutex is held, and new locks only ever appear while the path is
/// absent. Returns without reclaiming if another contender holds the
/// mutex (they are doing the same job); a reclaim mutex whose own
/// holder died is discarded the same way.
fn reclaim_dead_lock(path: &Path, dead_pid: u32) -> std::io::Result<()> {
    let mutex = sibling(path, "reclaim");
    if !try_create_with_pid(&mutex)? {
        match read_pid(&mutex) {
            Some(h) if h.pid != std::process::id() && !pid_alive(h.pid) => {
                // The previous reclaimer died inside this (tiny)
                // critical section; clear its mutex and let the caller
                // retry the whole acquire loop.
                std::fs::remove_file(&mutex).ok();
            }
            _ => {}
        }
        return Ok(());
    }
    // Critical section: only we may remove the lock file. Re-verify it
    // still names the dead holder — a fresh live lock may have been
    // created since the caller's check.
    if let Some(h) = read_pid(path) {
        if h.pid == dead_pid && !pid_alive(h.pid) {
            std::fs::remove_file(path).ok();
        }
    }
    std::fs::remove_file(&mutex).ok();
    Ok(())
}

/// A sibling file of `path` with a dotted suffix appended to its name.
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let name = path.file_name().map_or_else(String::new, |n| n.to_string_lossy().into_owned());
    path.with_file_name(format!("{name}.{suffix}"))
}

/// Best-effort liveness check for a recorded pid. On Linux, a pid runs
/// iff `/proc/<pid>` exists; elsewhere we cannot tell without platform
/// calls, so a recorded pid is conservatively treated as alive (the
/// lock must then be removed by hand after a crash). Pid 0 (garbled
/// lock content) is never alive.
fn pid_alive(pid: u32) -> bool {
    if pid == 0 {
        return false;
    }
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_snapshot(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cupid-lock-test-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("cupid.repo")
    }

    #[test]
    fn second_acquire_names_the_holder() {
        let snap = temp_snapshot("second");
        let lock = RepoLock::acquire(&snap).unwrap();
        match RepoLock::acquire(&snap) {
            Err(RepoError::Locked { pid, path }) => {
                assert_eq!(pid, std::process::id());
                assert_eq!(path, lock.path());
            }
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(lock);
        // Released on drop: a fresh acquire succeeds.
        let again = RepoLock::acquire(&snap).unwrap();
        drop(again);
        std::fs::remove_dir_all(snap.parent().unwrap()).ok();
    }

    #[test]
    fn stale_and_garbled_locks_are_reclaimed() {
        let snap = temp_snapshot("stale");
        let lock_path = RepoLock::lock_path(&snap);
        // A pid that cannot be running (pid_max is < 2^22 by default on
        // Linux, and 4_000_000_000 exceeds any configurable maximum).
        std::fs::write(&lock_path, "4000000000").unwrap();
        if cfg!(target_os = "linux") {
            let lock = RepoLock::acquire(&snap).expect("stale lock reclaimed");
            drop(lock);
        }
        // A garbled lock file (crash mid-write) is reclaimed everywhere.
        std::fs::write(&lock_path, "not a pid").unwrap();
        let lock = RepoLock::acquire(&snap).expect("garbled lock reclaimed");
        drop(lock);
        assert!(!lock_path.exists(), "drop removes the lock file");
        std::fs::remove_dir_all(snap.parent().unwrap()).ok();
    }
}
