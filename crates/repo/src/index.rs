//! The top-k discovery index (DESIGN.md §8.4).
//!
//! All-pairs discovery over `N` schemas executes `N·(N−1)/2` full tree
//! matches, and corpus studies (Valentine; Schemora's retrieve-then-
//! refine staging) show most of those pairs are poor candidates that a
//! cheap retrieval tier could have skipped. This module is that tier:
//! an inverted index over each schema's interned *leaf* name tokens.
//! For a query schema it scores every other schema by exact-token
//! overlap (Dice coefficient over the deduplicated leaf token sets) in
//! one posting-list sweep — no thesaurus lookups, no tree traversal,
//! no per-pair normalization — and only the top-k candidates per
//! schema go on to full TreeMatch execution.
//!
//! The overlap score is a *retrieval heuristic*, not a bound on `wsim`:
//! a thesaurus synonym pair ("Bill"/"Invoice") contributes `wsim` but
//! no token overlap. The eval harness's `retrieval` experiment
//! therefore measures recall of the index's top-k against the
//! exhaustive all-pairs ranking, exactly like a Valentine-style
//! benchmark would, instead of asserting an analytic guarantee.

use std::collections::BTreeMap;

use cupid_core::PreparedSchema;
use cupid_lexical::TokenId;

/// Inverted token index over a corpus of prepared schemas, frozen at
/// build time. Indices into the corpus are positional (`0..n`), matching
/// the order of the slice the index was built from — for a
/// [`crate::Repository`] that is the repository's schema order.
#[derive(Debug, Clone)]
pub struct DiscoveryIndex {
    /// Per schema: sorted, deduplicated interned leaf token ids.
    tokens: Vec<Vec<TokenId>>,
    /// token → sorted schema indices whose leaf token set contains it.
    postings: BTreeMap<TokenId, Vec<u32>>,
}

/// One retrieval candidate: schema index plus its overlap score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Index of the candidate schema in the corpus the index was built
    /// over.
    pub schema: usize,
    /// Dice overlap of the two leaf token sets, in `[0, 1]`.
    pub score: f64,
}

impl DiscoveryIndex {
    /// Build the index over a corpus of prepared schemas.
    ///
    /// A schema's entry is the set of interned ids of the comparison-
    /// relevant (non-stop-word) tokens of its *leaf* names — the tokens
    /// that dominate `wsim` because Cupid's structural phase is
    /// leaf-biased (§6 of the paper).
    pub fn build(schemas: &[PreparedSchema]) -> Self {
        let mut tokens: Vec<Vec<TokenId>> = Vec::with_capacity(schemas.len());
        for p in schemas {
            let mut set: Vec<TokenId> = Vec::new();
            for (id, node) in p.tree.iter() {
                if !p.tree.is_leaf(id) {
                    continue;
                }
                let name = &p.ling.names[node.element.index()];
                debug_assert_eq!(name.ids.len(), name.tokens.len(), "schema must be interned");
                for (t, &tid) in name.tokens.iter().zip(&name.ids) {
                    if !t.is_ignored() {
                        set.push(tid);
                    }
                }
            }
            set.sort_unstable();
            set.dedup();
            tokens.push(set);
        }
        let mut postings: BTreeMap<TokenId, Vec<u32>> = BTreeMap::new();
        for (i, set) in tokens.iter().enumerate() {
            for &t in set {
                postings.entry(t).or_default().push(i as u32);
            }
        }
        DiscoveryIndex { tokens, postings }
    }

    /// Number of schemas indexed.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True if the index covers no schemas.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Number of distinct tokens in the index.
    pub fn distinct_tokens(&self) -> usize {
        self.postings.len()
    }

    /// Dice overlap of two schemas' leaf token sets:
    /// `2·|A ∩ B| / (|A| + |B|)` (0 when both are empty).
    pub fn overlap(&self, a: usize, b: usize) -> f64 {
        let (ta, tb) = (&self.tokens[a], &self.tokens[b]);
        let denom = ta.len() + tb.len();
        if denom == 0 {
            return 0.0;
        }
        2.0 * intersection(ta, tb) as f64 / denom as f64
    }

    /// The top-k candidate schemas for a query schema, scored by
    /// overlap, descending (ties broken by ascending schema index so
    /// retrieval is deterministic). The query itself is excluded.
    /// One sweep over the query's posting lists — `O(Σ posting length)`,
    /// independent of the number of non-overlapping schemas.
    ///
    /// Overlap counts accumulate into a dense `Vec<u32>` indexed by
    /// schema: the posting sweep becomes a plain increment (no tree
    /// walk, no per-hit query check — the query's own slot is zeroed
    /// once afterwards), and scanning the dense array in ascending
    /// index order visits candidates exactly as the old
    /// `BTreeMap<u32, usize>` iteration did, so scores and tie order
    /// are unchanged.
    pub fn candidates(&self, query: usize, k: usize) -> Vec<Candidate> {
        let mut counts: Vec<u32> = vec![0; self.len()];
        for t in &self.tokens[query] {
            if let Some(list) = self.postings.get(t) {
                for &s in list {
                    counts[s as usize] += 1;
                }
            }
        }
        counts[query] = 0;
        let qlen = self.tokens[query].len();
        let mut out: Vec<Candidate> = counts
            .iter()
            .enumerate()
            .filter(|(_, &inter)| inter > 0)
            .map(|(s, &inter)| {
                let denom = qlen + self.tokens[s].len();
                Candidate { schema: s, score: 2.0 * inter as f64 / denom as f64 }
            })
            .collect();
        out.sort_by(|x, y| {
            y.score
                .partial_cmp(&x.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.schema.cmp(&y.schema))
        });
        out.truncate(k);
        out
    }

    /// The pruned all-pairs worklist: the union, over every schema, of
    /// its top-k candidate pairs, as unordered `(i, j)` pairs with
    /// `i < j` in lexicographic order. This is what replaces the full
    /// `N·(N−1)/2` worklist in index-assisted discovery.
    pub fn top_k_pairs(&self, k: usize) -> Vec<(usize, usize)> {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for q in 0..self.len() {
            for c in self.candidates(q, k) {
                let (i, j) = if q < c.schema { (q, c.schema) } else { (c.schema, q) };
                pairs.push((i, j));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

/// `|A ∩ B|` of two sorted, deduplicated id slices. The classic
/// three-way-`match` merge is a pipeline of unpredictable branches; on
/// sets with interleaved ids every step mispredicts. This form advances
/// each cursor by a comparison *flag* and counts equality the same way
/// — three flag computations per step, no branch on the comparison
/// outcome (the loop bound is the only branch), which the optimizer
/// lowers to straight-line flag arithmetic. Equivalence to the scalar
/// merge is proven in the test module.
fn intersection(a: &[TokenId], b: &[TokenId]) -> usize {
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        inter += usize::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    inter
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_core::{CupidConfig, MatchSession};
    use cupid_lexical::Thesaurus;
    use cupid_model::{DataType, ElementKind, Schema, SchemaBuilder};

    fn schema(name: &str, fields: &[&str]) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let c = b.structured(b.root(), "Rec", ElementKind::XmlElement);
        for f in fields {
            b.atomic(c, *f, ElementKind::XmlElement, DataType::String);
        }
        b.build().unwrap()
    }

    fn index_of(schemas: &[Schema]) -> DiscoveryIndex {
        let cfg = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        session.add_corpus(schemas).unwrap();
        let (_, _, prepared) = session.into_parts();
        DiscoveryIndex::build(&prepared)
    }

    #[test]
    fn overlap_ranks_token_sharing_schemas_first() {
        let corpus = [
            schema("A", &["CustomerName", "CustomerPhone", "Street"]),
            schema("B", &["CustomerName", "CustomerPhone", "Road"]),
            schema("C", &["Voltage", "Amperage", "Wattage"]),
        ];
        let idx = index_of(&corpus);
        assert_eq!(idx.len(), 3);
        assert!(idx.overlap(0, 1) > 0.5, "A and B share most tokens");
        assert_eq!(idx.overlap(0, 2), 0.0, "A and C share nothing");
        assert_eq!(idx.overlap(0, 1), idx.overlap(1, 0), "overlap is symmetric");
        let cands = idx.candidates(0, 2);
        assert_eq!(cands[0].schema, 1);
        assert_eq!(cands.len(), 1, "zero-overlap schemas are never candidates");
    }

    #[test]
    fn top_k_pairs_prunes_the_worklist() {
        let corpus = [
            schema("A", &["CustomerName", "CustomerPhone"]),
            schema("B", &["CustomerName", "CustomerCode"]),
            schema("C", &["OrderDate", "OrderTotal"]),
            schema("D", &["OrderDate", "OrderStatus"]),
        ];
        let idx = index_of(&corpus);
        let pairs = idx.top_k_pairs(1);
        // A~B and C~D dominate; the full worklist would be 6 pairs.
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(2, 3)));
        assert!(pairs.len() < 6, "pruned worklist {pairs:?} must beat all-pairs");
        // pairs are normalized and deduplicated
        for w in pairs.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn branchless_intersection_matches_scalar_merge() {
        use cupid_lexical::{SimClass, TokenTable};
        // The pre-restructuring three-way-`match` merge.
        fn reference(a: &[TokenId], b: &[TokenId]) -> usize {
            let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        inter += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            inter
        }
        let mut table = TokenTable::new();
        let ids: Vec<TokenId> =
            (0..64).map(|n| table.intern(SimClass::Word, &format!("tok{n}"))).collect();
        let mut state = 0x243f6a8885a308d3u64;
        let subset = |state: &mut u64| -> Vec<TokenId> {
            ids.iter()
                .copied()
                .filter(|_| {
                    *state ^= *state << 13;
                    *state ^= *state >> 7;
                    *state ^= *state << 17;
                    *state % 3 == 0
                })
                .collect() // interned in ascending order, so already sorted
        };
        for _ in 0..50 {
            let a = subset(&mut state);
            let b = subset(&mut state);
            assert_eq!(intersection(&a, &b), reference(&a, &b), "{a:?} ∩ {b:?}");
        }
        assert_eq!(intersection(&[], &ids), 0);
        assert_eq!(intersection(&ids, &ids), ids.len());
    }

    #[test]
    fn empty_and_singleton_corpora() {
        let idx = index_of(&[]);
        assert!(idx.is_empty());
        assert!(idx.top_k_pairs(3).is_empty());
        let idx = index_of(&[schema("A", &["X"])]);
        assert_eq!(idx.len(), 1);
        assert!(idx.candidates(0, 5).is_empty());
        assert!(idx.top_k_pairs(5).is_empty());
    }
}
