//! The versioned snapshot container (DESIGN.md §8.2).
//!
//! Layout (all integers little-endian, strings length-prefixed UTF-8 —
//! see `cupid_model::wire`):
//!
//! ```text
//! magic        8 bytes   b"CUPIDREP"
//! version      u32       currently 1
//! config_fp    u64       CupidConfig::fingerprint()
//! thesaurus_fp u64       Thesaurus::fingerprint()
//! token table            TokenTable wire (entries in id order)
//! sim store              SimStore wire (allocated chunks, f64 bits)
//! schema count u32
//!   per schema: name, content hash u64, Schema wire, PreparedSchema wire
//! cache count  u32
//!   per entry: source hash u64, target hash u64, MatchSummary wire
//! checksum     u64       fnv1a of every preceding byte
//! ```
//!
//! Decoding is strict: bad magic, an unknown version, a checksum
//! mismatch or any structural inconsistency is
//! [`RepoError::Corrupt`]; fingerprints that do not match the opening
//! config/thesaurus are [`RepoError::Stale`] (the snapshot is valid,
//! just computed under a different matcher — `open_or_create`
//! discards it and starts fresh rather than serving wrong results).

use std::collections::BTreeMap;

use cupid_core::{MatchSummary, PreparedSchema};
use cupid_lexical::{SimStore, TokenTable};
use cupid_model::{fnv1a, Schema, WireReader, WireWriter};

use crate::RepoError;

/// Leading magic bytes of every snapshot file.
pub const MAGIC: &[u8; 8] = b"CUPIDREP";
/// Current container version.
pub const VERSION: u32 = 1;

/// Everything a repository persists, decoded and fingerprint-checked.
#[derive(Debug)]
pub(crate) struct SnapshotState {
    /// Schema names, in repository order.
    pub names: Vec<String>,
    /// Content hashes, parallel to `names`.
    pub hashes: Vec<u64>,
    /// Source schema graphs, parallel to `names`.
    pub sources: Vec<Schema>,
    /// Prepared per-schema precompute, parallel to `names`.
    pub prepared: Vec<PreparedSchema>,
    /// The session token table (vocabulary in id order).
    pub table: TokenTable,
    /// The session similarity memo.
    pub store: SimStore,
    /// Per-pair summary cache, keyed by (source hash, target hash).
    pub cache: BTreeMap<(u64, u64), MatchSummary>,
}

/// Borrowed view of everything a repository persists (the encode-side
/// twin of [`SnapshotState`], so saving never clones the session).
pub(crate) struct SnapshotRefs<'a> {
    /// Schema names, in repository order.
    pub names: &'a [String],
    /// Content hashes, parallel to `names`.
    pub hashes: &'a [u64],
    /// Source schema graphs, parallel to `names`.
    pub sources: &'a [Schema],
    /// Prepared per-schema precompute, parallel to `names`.
    pub prepared: &'a [PreparedSchema],
    /// The session token table.
    pub table: &'a TokenTable,
    /// The session similarity memo.
    pub store: &'a SimStore,
    /// Per-pair summary cache.
    pub cache: &'a BTreeMap<(u64, u64), MatchSummary>,
}

/// Encode a snapshot, appending the trailing checksum.
pub(crate) fn encode(state: &SnapshotRefs<'_>, config_fp: u64, thesaurus_fp: u64) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_bytes(MAGIC);
    w.put_u32(VERSION);
    w.put_u64(config_fp);
    w.put_u64(thesaurus_fp);
    state.table.write_wire(&mut w);
    state.store.write_wire(&mut w);
    w.put_len(state.names.len());
    for i in 0..state.names.len() {
        w.put_str(&state.names[i]);
        w.put_u64(state.hashes[i]);
        state.sources[i].write_wire(&mut w);
        state.prepared[i].write_wire(&mut w);
    }
    w.put_len(state.cache.len());
    for (&(ha, hb), summary) in state.cache {
        w.put_u64(ha);
        w.put_u64(hb);
        summary.write_wire(&mut w);
    }
    let checksum = fnv1a(w.bytes());
    w.put_u64(checksum);
    w.into_bytes()
}

/// Decode and validate a snapshot against the opening config/thesaurus
/// fingerprints.
pub(crate) fn decode(
    bytes: &[u8],
    config_fp: u64,
    thesaurus_fp: u64,
) -> Result<SnapshotState, RepoError> {
    let corrupt = |message: String| RepoError::Corrupt { message };
    if bytes.len() < MAGIC.len() + 4 + 8 + 8 + 8 {
        return Err(corrupt(format!("{} bytes is too short for a snapshot", bytes.len())));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    let actual = fnv1a(body);
    if stored != actual {
        return Err(corrupt(format!("checksum mismatch: stored {stored:#x}, actual {actual:#x}")));
    }
    let mut r = WireReader::new(body);
    let magic = r.get_bytes(MAGIC.len()).map_err(|e| corrupt(e.to_string()))?;
    if magic != MAGIC {
        return Err(corrupt("bad magic: not a cupid repository snapshot".to_string()));
    }
    let version = r.get_u32().map_err(|e| corrupt(e.to_string()))?;
    if version != VERSION {
        return Err(RepoError::Stale {
            reason: format!("snapshot version {version}, this build reads {VERSION}"),
        });
    }
    let snap_config_fp = r.get_u64().map_err(|e| corrupt(e.to_string()))?;
    let snap_thesaurus_fp = r.get_u64().map_err(|e| corrupt(e.to_string()))?;
    if snap_config_fp != config_fp {
        return Err(RepoError::Stale {
            reason: format!(
                "config fingerprint {snap_config_fp:#x} differs from the opening config \
                 ({config_fp:#x}); persisted similarities would not match"
            ),
        });
    }
    if snap_thesaurus_fp != thesaurus_fp {
        return Err(RepoError::Stale {
            reason: format!(
                "thesaurus fingerprint {snap_thesaurus_fp:#x} differs from the opening \
                 thesaurus ({thesaurus_fp:#x}); persisted similarities would not match"
            ),
        });
    }

    let mut parse = || -> Result<SnapshotState, cupid_model::WireError> {
        let table = TokenTable::read_wire(&mut r)?;
        let store = SimStore::read_wire(&mut r)?;
        let vocab = table.len();
        let n = r.get_len()?;
        let mut names = Vec::with_capacity(n);
        let mut hashes = Vec::with_capacity(n);
        let mut sources = Vec::with_capacity(n);
        let mut prepared = Vec::with_capacity(n);
        for _ in 0..n {
            names.push(r.get_str()?);
            hashes.push(r.get_u64()?);
            sources.push(Schema::read_wire(&mut r)?);
            prepared.push(PreparedSchema::read_wire(&mut r, vocab)?);
        }
        let nc = r.get_len()?;
        let mut cache = BTreeMap::new();
        for _ in 0..nc {
            let ha = r.get_u64()?;
            let hb = r.get_u64()?;
            cache.insert((ha, hb), MatchSummary::read_wire(&mut r)?);
        }
        r.finish()?;
        Ok(SnapshotState { names, hashes, sources, prepared, table, store, cache })
    };
    let state = parse().map_err(|e| corrupt(e.to_string()))?;

    // Cross-checks the wire decoders cannot do locally.
    for (i, (schema, &hash)) in state.sources.iter().zip(&state.hashes).enumerate() {
        if schema.content_hash() != hash {
            return Err(corrupt(format!(
                "schema #{i} ({}) hashes to {:#x} but the snapshot recorded {hash:#x}",
                state.names[i],
                schema.content_hash()
            )));
        }
    }
    let mut seen = state.names.clone();
    seen.sort();
    seen.dedup();
    if seen.len() != state.names.len() {
        return Err(corrupt("duplicate schema names".to_string()));
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_bytes() -> Vec<u8> {
        let (table, store, cache) = (TokenTable::new(), SimStore::new(), BTreeMap::new());
        let refs = SnapshotRefs {
            names: &[],
            hashes: &[],
            sources: &[],
            prepared: &[],
            table: &table,
            store: &store,
            cache: &cache,
        };
        encode(&refs, 1, 2)
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let state = decode(&empty_bytes(), 1, 2).unwrap();
        assert!(state.names.is_empty());
        assert!(state.cache.is_empty());
    }

    #[test]
    fn fingerprint_mismatch_is_stale_not_corrupt() {
        let bytes = empty_bytes();
        assert!(matches!(decode(&bytes, 99, 2), Err(RepoError::Stale { .. })));
        assert!(matches!(decode(&bytes, 1, 99), Err(RepoError::Stale { .. })));
    }

    #[test]
    fn every_flipped_byte_is_caught() {
        let bytes = empty_bytes();
        for i in 0..bytes.len() {
            let mut broken = bytes.clone();
            broken[i] ^= 0x01;
            assert!(decode(&broken, 1, 2).is_err(), "flipping byte {i} must not decode silently");
        }
    }

    #[test]
    fn truncation_is_caught() {
        let bytes = empty_bytes();
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut], 1, 2).is_err(), "cut at {cut}");
        }
    }
}
